"""repro — reproduction of Dobos et al., "Array Requirements for
Scientific Applications and an Implementation for Microsoft SQL Server"
(EDBT 2011).

Subpackages:

* :mod:`repro.core` — the array library: blob format, ``SqlArray``,
  operations, aggregates, partial reads.
* :mod:`repro.tsql` — the T-SQL-style function schemas
  (``FloatArray.Vector_5`` etc.) and the array-notation pre-parser.
* :mod:`repro.engine` — a paged storage-engine simulator standing in for
  Microsoft SQL Server (8 kB pages, clustered B+trees, on-page vs
  out-of-page blobs, buffer pool, IO/CPU cost model).
* :mod:`repro.sqlbind` — the same array functions registered as real
  SQLite UDFs.
* :mod:`repro.mathlib` — LAPACK/FFTW-style wrappers (SVD, FFT, least
  squares, NNLS, PCA).
* :mod:`repro.spatial` — Morton codes, kd-tree, octree.
* :mod:`repro.science` — the paper's three scientific use cases end to
  end (turbulence, spectra, N-body).
"""

from .core import SqlArray

__version__ = "1.0.0"

__all__ = ["SqlArray", "__version__"]
