"""repro.shard — a sharded multi-process backend for the array engine.

A cluster is N logical shards, each owning a partitioned slice of
every table and each backed by one or more replica
:class:`~repro.server.server.ArrayServer` processes
(:class:`ShardFleet`, ``ShardConfig(replicas=...)``), fronted by a
coordinator (:class:`ShardRouter` inside a :class:`ShardServer`) that
plans each statement once, routes it — point statements to one shard,
key ranges to the owning shards, scans to all — and merges replies.
Aggregates travel as unreduced mergeable partial states
(``pquery``/``presult`` frames) and are folded in shard order, so
float SUM/AVG under range partitioning are bit-identical to
single-node execution.

Replicas make shard loss survivable: writes apply to every replica of
the owning shard, reads round-robin across the live replicas, and a
replica that dies mid-read is replaced by a sibling replaying the
identical request — client-invisibly, down to the bytes of a streamed
``bquery``.  ``SHARD_UNAVAILABLE`` is reserved for a fully dead
replica set, and cross-shard writes that die halfway report their
partial progress (and CREATE rolls itself back) instead of leaving
the cluster silently inconsistent.

Quick start::

    from repro.shard import ShardConfig, ShardClient, start_cluster
    from repro.server.server import ServerThread

    fleet, router = start_cluster(ShardConfig(shards=4))
    with ServerThread(server=ShardServer(router)) as coord:
        with ShardClient("127.0.0.1", coord.port) as client:
            client.query("CREATE TABLE a (pk INT, v FLOAT)")
            ...
    fleet.stop()

or ``repro shard-serve --shards 4 --replicas 2`` from the command
line.  See ``docs/SHARDING.md``.
"""

from .client import ShardClient, ShardLink
from .config import ShardConfig
from .partitioner import HashPartitioner, Partitioner, RangePartitioner
from .process import ShardFleet
from .router import ShardRouter, ShardServer, start_cluster

__all__ = [
    "ShardClient",
    "ShardConfig",
    "ShardFleet",
    "ShardLink",
    "ShardRouter",
    "ShardServer",
    "Partitioner",
    "RangePartitioner",
    "HashPartitioner",
    "start_cluster",
]
