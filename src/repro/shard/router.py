"""The shard coordinator: plan once, route, scatter-gather, merge.

:class:`ShardRouter` fronts N per-shard
:class:`~repro.server.server.ArrayServer` processes, each owning a
partitioned slice of every sharded table.  A statement is planned
*once* against the coordinator's catalog mirror
(:meth:`SqlSession.plan_select` — the same plan object local execution
uses) and then routed:

* point SELECT / point DELETE — the one shard owning the key;
* key-range SELECT (``pk >= a AND pk < b``) — the shards whose slices
  intersect ``[a, b)`` (range partitioning);
* everything else — scatter to all shards, gather, merge.

Aggregation is distributed through the engine's mergeable-aggregate
protocol: shards answer ``pquery`` frames with unreduced partial
states, and the coordinator folds them in shard order
(:mod:`repro.shard.merge`), so float SUM/AVG match single-node
execution bit for bit under range partitioning.

Fault handling is typed, never hanging: each shard exchange is bounded
by the link's request timeout and a :class:`RetryPolicy`; a shard that
stays dead or saturated surfaces as a
``WireError(SHARD_UNAVAILABLE)``, which :class:`ShardServer` answers
as an error frame with that code.

The coordinator itself never touches storage — no ``BufferPool``, no
latched scans; it parses, routes and merges (replint RS401 keeps it
honest).  Its catalog mirror holds schemas only.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Callable

from ..engine.executor import Database
from ..engine.sqlfront import SelectPlan, SqlSession, SqlSyntaxError, \
    _tokenize
from ..server import protocol
from ..server.client import RetryPolicy
from ..server.server import ArrayServer, ServerConfig, _error
from .client import ShardLink
from .config import ShardConfig
from .merge import (
    finalize_grouped,
    finalize_scalar,
    merge_grouped_states,
    merge_metrics,
    merge_scalar_states,
)
from .partitioner import Partitioner

__all__ = ["ShardRouter", "ShardServer", "start_cluster"]


class ShardRouter:
    """Routes statements to a fleet of shard servers and merges replies.

    Thread-safe: statements may run concurrently from many coordinator
    worker threads; each thread keeps its own set of shard links.

    Args:
        addresses: One ``(host, port)`` per shard, in shard order.
        partitioner: Key placement (must agree with how the data was
            loaded).
        retry: Per-shard bounded retry for link failures and
            ``SERVER_BUSY`` (the default allows 2 retries).
        connect_timeout / request_timeout: Socket budgets per shard
            call; the request timeout is the no-hang guarantee.
        session_setup: Applied to the catalog-mirror session (register
            the same UDFs here as on the shards so planning resolves
            them).
    """

    def __init__(self, addresses, partitioner: Partitioner,
                 retry: RetryPolicy | None = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float | None = 30.0,
                 max_frame: int = protocol.MAX_FRAME_BYTES,
                 session_setup: Callable[[SqlSession], None] | None = None):
        addresses = [tuple(addr) for addr in addresses]
        if partitioner.shards != len(addresses):
            raise ValueError(
                f"partitioner expects {partitioner.shards} shards, "
                f"got {len(addresses)} addresses")
        self.addresses = addresses
        self.partitioner = partitioner
        self.retry = retry if retry is not None else \
            RetryPolicy(max_retries=2, backoff_base=0.05,
                        backoff_cap=1.0)
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_frame = max_frame
        self.catalog = Database()
        self.session = SqlSession(self.catalog)
        if session_setup is not None:
            session_setup(self.session)
        self._local = threading.local()
        # Coordinator-side plan cache: SELECTs are planned once per
        # statement text against the catalog mirror and the plan
        # (routing key, pk range, aggregates) is reused by every
        # worker thread.  DDL invalidates it (see _create); data-only
        # writes leave plans valid — a plan captures structure, never
        # row contents.
        self._plan_cache: dict[str, SelectPlan] = {}
        self._plan_lock = threading.Lock()

    # -- statement entry point ----------------------------------------------

    def execute(self, sql: str, cold: bool = True,
                engine: str | None = None,
                workers: int | None = None) -> dict:
        """Route and execute one statement; returns the normalized
        result dict (:meth:`ArrayServer._execute_sync` shape): keys
        ``kind``, ``rows``, ``rowcount``, ``metrics``.

        ``engine``/``workers`` are forwarded to the shards — each
        shard may run its slice on its parallel engine; the merged
        metrics report ``engine="sharded"``.
        """
        tokens = _tokenize(sql)
        head = tokens[0]
        if head == ("kw", "SELECT"):
            return self._select(sql, cold, engine, workers)
        if head == ("kw", "CREATE"):
            return self._create(sql)
        if head == ("kw", "INSERT"):
            return self._insert(sql)
        if head == ("kw", "DELETE"):
            return self._delete(sql, tokens)
        raise SqlSyntaxError(
            f"unsupported statement starting with {head[1]!r}")

    def insert_rows(self, table_name: str, rows) -> int:
        """Bulk-load rows: partition by primary key, ship one binary
        ``insert`` frame per owning shard (all sends first, then
        replies — shards load concurrently), and land on each shard's
        :meth:`Table.insert_many` fast path.  Returns rows inserted.
        """
        buckets: dict[int, list] = {}
        for row in rows:
            key = row[0]
            if isinstance(key, bool) or not isinstance(key, int):
                raise SqlSyntaxError(
                    "sharded tables need an integer primary key, got "
                    f"{key!r}")
            buckets.setdefault(self.partitioner.shard_of(key),
                               []).append(tuple(row))
        requests = []
        for shard_id in sorted(buckets):
            packed, blobs = protocol.pack_rows(buckets[shard_id])
            requests.append((shard_id,
                             {"type": "insert", "table": table_name,
                              "rows": packed,
                              "timeout": protocol.NO_TIMEOUT},
                             blobs))
        replies = self._scatter(requests)
        return sum(reply.get("rowcount", 0) for _sid, reply, _b in replies)

    def close(self) -> None:
        """Close the calling thread's shard links (each worker thread
        owns its own set; fleet shutdown severs the rest)."""
        links = getattr(self._local, "links", None)
        if links:
            for link in links.values():
                link.close()
            links.clear()

    # -- SELECT: scatter pquery, merge partials ------------------------------

    def prepare(self, sql: str) -> SelectPlan:
        """Plan one SELECT through the coordinator's plan cache.

        Planning is not free at coordinator scale — every scatter pays
        it before a single shard is contacted — so hot statements
        (point SELECTs in a pipelined stream, mainly) hit the cache
        instead.  Thread-safe; a cache miss may plan the same text
        twice concurrently, which is merely redundant, never wrong.
        """
        with self._plan_lock:
            plan = self._plan_cache.get(sql)
        if plan is None:
            plan = self.session.plan_select(sql)
            with self._plan_lock:
                self._plan_cache[sql] = plan
        return plan

    def _invalidate_plans(self) -> None:
        with self._plan_lock:
            self._plan_cache.clear()

    def _select(self, sql: str, cold: bool, engine: str | None,
                workers: int | None) -> dict:
        plan = self.prepare(sql)
        targets = self._route(plan)
        header: dict = {"type": "pquery", "sql": sql,
                        "cold": bool(cold),
                        "timeout": protocol.NO_TIMEOUT}
        if engine is not None:
            header["engine"] = engine
        if workers is not None:
            header["workers"] = workers
        replies = self._scatter(
            [(shard_id, header, ()) for shard_id in targets])
        rows_total = sum(reply.get("rows", 0)
                         for _sid, reply, _b in replies)
        metrics = merge_metrics(
            [reply.get("metrics") or {} for _sid, reply, _b in replies],
            plan.label, self.partitioner.shards)
        if plan.kind == "grouped":
            shard_groups = []
            for shard_id, reply, blobs in replies:
                raw = reply.get("groups") or []
                shard_groups.append([
                    (protocol.unpack_cell(group, blobs),
                     [protocol.unpack_partial(part, blobs)
                      for part in parts])
                    for group, parts in raw])
            groups = merge_grouped_states(plan.aggregates,
                                          shard_groups)
            rows = finalize_grouped(plan.aggregates, groups,
                                    rows_total)
        else:
            shard_states = []
            for shard_id, reply, blobs in replies:
                raw = reply.get("states")
                if not isinstance(raw, list) or \
                        len(raw) != len(plan.aggregates):
                    raise protocol.WireError(
                        protocol.INTERNAL,
                        f"shard {shard_id} returned "
                        f"{len(raw) if isinstance(raw, list) else raw!r}"
                        f" partial states for {len(plan.aggregates)} "
                        f"aggregates")
                shard_states.append([
                    protocol.unpack_partial(part, blobs)
                    for part in raw])
            states = merge_scalar_states(plan.aggregates, shard_states)
            rows = [finalize_scalar(plan.aggregates, states,
                                    rows_total)]
        return {"kind": "rows", "rows": rows, "rowcount": len(rows),
                "metrics": metrics.to_dict()}

    def _route(self, plan: SelectPlan) -> list[int]:
        """Shards a SELECT must touch: the key's owner for a point
        seek, the owners of the pk interval for a key-range predicate,
        every shard otherwise."""
        if plan.key is not None:
            return [self.partitioner.shard_of(plan.key)]
        if plan.pk_range is not None:
            return self.partitioner.shards_for_range(*plan.pk_range)
        return list(range(self.partitioner.shards))

    # -- writes --------------------------------------------------------------

    def _create(self, sql: str) -> dict:
        # Mirror into the catalog first — this both validates the DDL
        # and lets later SELECTs plan against the schema — then
        # broadcast so every shard owns an (empty) slice.  Cached
        # plans hold pre-DDL Table objects, so they go.
        self.session.execute(sql)
        self._invalidate_plans()
        header = {"type": "query", "sql": sql, "cold": False,
                  "timeout": protocol.NO_TIMEOUT}
        self._scatter([(shard_id, header, ())
                       for shard_id in range(self.partitioner.shards)])
        return {"kind": "ok", "rows": [], "rowcount": 0,
                "metrics": None}

    def _insert(self, sql: str) -> dict:
        table, rows = self.session.parse_insert(sql)
        inserted = self.insert_rows(table.name, rows)
        return {"kind": "ok", "rows": [], "rowcount": inserted,
                "metrics": None}

    def _delete(self, sql: str, tokens) -> dict:
        key = self._point_delete_key(tokens)
        if key is not None:
            targets = [self.partitioner.shard_of(key)]
        else:
            targets = list(range(self.partitioner.shards))
        header = {"type": "query", "sql": sql, "cold": False,
                  "timeout": protocol.NO_TIMEOUT}
        replies = self._scatter(
            [(shard_id, header, ()) for shard_id in targets])
        deleted = sum(reply.get("rowcount", 0)
                      for _sid, reply, _b in replies)
        return {"kind": "ok", "rows": [], "rowcount": deleted,
                "metrics": None}

    def _point_delete_key(self, tokens) -> int | None:
        """Key of a ``DELETE FROM t WHERE pk = <int>`` statement (the
        single-shard fast path), or None for any other shape."""
        if len(tokens) != 8:
            return None
        kinds = [tok[0] for tok in tokens]
        if kinds != ["kw", "kw", "name", "kw", "name", "op", "number",
                     "eof"]:
            return None
        if (tokens[0][1], tokens[1][1], tokens[3][1],
                tokens[5][1]) != ("DELETE", "FROM", "WHERE", "="):
            return None
        try:
            table = self.session._resolve_table(tokens[2][1])
        except SqlSyntaxError:
            return None
        pk = table.columns[0].name
        if tokens[4][1].lower() != pk.lower():
            return None
        text = tokens[6][1]
        if "." in text or "e" in text.lower():
            return None
        return int(text)

    # -- the wire ------------------------------------------------------------

    def _links(self) -> dict[int, ShardLink]:
        links = getattr(self._local, "links", None)
        if links is None:
            links = {}
            self._local.links = links
        return links

    def _link(self, shard_id: int) -> ShardLink:
        links = self._links()
        link = links.get(shard_id)
        if link is None:
            host, port = self.addresses[shard_id]
            link = ShardLink(shard_id, host, port,
                             connect_timeout=self.connect_timeout,
                             request_timeout=self.request_timeout,
                             max_frame=self.max_frame)
            links[shard_id] = link
        return link

    def _scatter(self, requests) -> list[tuple[int, dict, list[bytes]]]:
        """Split-phase fan-out: send every request, then gather replies
        in shard order.

        Shards execute concurrently while the coordinator blocks on at
        most one reply at a time; gathering in shard order keeps the
        merge fold deterministic.  A failed send, failed receive or
        ``SERVER_BUSY`` reply falls back to :meth:`_exchange`'s bounded
        reconnect-and-retry; a shard error frame with any other code is
        the statement's own failure and propagates typed.  If anything
        raises mid-gather, every link of this thread is closed so no
        connection is left holding an unread reply.
        """
        try:
            sent: dict[int, bool] = {}
            for shard_id, header, blobs in requests:
                link = self._link(shard_id)
                try:
                    link.send(header, blobs)
                    sent[shard_id] = True
                except (OSError, protocol.ProtocolError):
                    link.close()
                    sent[shard_id] = False
            replies = []
            for shard_id, header, blobs in requests:
                reply_pair = None
                if sent[shard_id]:
                    link = self._link(shard_id)
                    try:
                        reply_pair = link.recv()
                    except (OSError, protocol.ProtocolError):
                        link.close()
                if reply_pair is not None:
                    reply, rblobs = reply_pair
                    if reply.get("type") != "error":
                        replies.append((shard_id, reply, rblobs))
                        continue
                    code = reply.get("code")
                    if code != protocol.SERVER_BUSY:
                        raise protocol.WireError(
                            code or protocol.INTERNAL,
                            f"shard {shard_id}: "
                            f"{reply.get('message', '')}")
                    # Busy: fall through to the bounded retry.
                reply, rblobs = self._exchange(shard_id, header, blobs)
                replies.append((shard_id, reply, rblobs))
            return replies
        except BaseException:
            self.close()
            raise

    def _exchange(self, shard_id: int, header: dict,
                  blobs) -> tuple[dict, list[bytes]]:
        """One request/reply against one shard with bounded retry.

        Retries reconnectable failures (refused, reset, closed link,
        timed-out reply) and ``SERVER_BUSY`` rejections with
        exponential backoff.  After the cap the shard is declared
        unavailable: ``WireError(SHARD_UNAVAILABLE)``, which the
        serving layer answers as a typed error frame — the client's
        connection survives and nothing hangs.
        """
        last = "no attempt made"
        for attempt in range(self.retry.max_retries + 1):
            if attempt:
                time.sleep(self.retry.delay(attempt - 1))
            link = self._link(shard_id)
            try:
                link.send(header, blobs)
                reply, rblobs = link.recv()
            except (OSError, protocol.ProtocolError) as exc:
                link.close()
                last = f"{type(exc).__name__}: {exc}"
                continue
            if reply.get("type") == "error":
                code = reply.get("code")
                if code == protocol.SERVER_BUSY:
                    last = reply.get("message", "shard busy")
                    continue
                raise protocol.WireError(
                    code or protocol.INTERNAL,
                    f"shard {shard_id}: {reply.get('message', '')}")
            return reply, rblobs
        host, port = self.addresses[shard_id]
        raise protocol.WireError(
            protocol.SHARD_UNAVAILABLE,
            f"shard {shard_id} ({host}:{port}) unavailable after "
            f"{self.retry.max_retries + 1} attempts: {last}")


class ShardServer(ArrayServer):
    """The coordinator process: an :class:`ArrayServer` whose
    statements execute through a :class:`ShardRouter` instead of local
    storage.

    Clients connect with the unchanged wire protocol
    (:class:`~repro.shard.client.ShardClient` or plain
    :class:`ArrayClient`); admission control, per-query timeouts and
    stats work exactly as on a single node.  A dead or saturated shard
    surfaces as a ``SHARD_UNAVAILABLE`` error frame — typed, bounded,
    never a hang — and the client connection survives.
    """

    def __init__(self, router: ShardRouter,
                 config: ServerConfig | None = None,
                 session_setup: Callable[[SqlSession], None] | None = None):
        super().__init__(router.catalog, config, session_setup)
        self.router = router

    def _execute_sync(self, session: SqlSession, sql: str,
                      cold: bool, engine: str | None = None,
                      workers: int | None = None) -> dict:
        return self.router.execute(sql, cold=cold, engine=engine,
                                   workers=workers)

    def _execute_partial_sync(self, session: SqlSession, sql: str,
                              cold: bool, engine: str | None = None,
                              workers: int | None = None) -> dict:
        raise protocol.WireError(
            protocol.BAD_FRAME,
            "the coordinator does not serve pquery frames; they are "
            "shard-internal")

    def _prepare_sync(self, session: SqlSession,
                      sql: str) -> tuple[str, str]:
        # Prepare against the router's shared plan cache, not the
        # connection session: every coordinator worker thread reuses
        # the same plan for routing.
        plan = self.router.prepare(sql)
        return plan.kind, plan.table.name

    def _execute_prepared_sync(self, session: SqlSession, sql: str,
                               cold: bool, engine: str | None = None,
                               workers: int | None = None) -> dict:
        # router.execute plans through the coordinator cache (see
        # ShardRouter.prepare), so pexec skips re-planning here too.
        return self.router.execute(sql, cold=cold, engine=engine,
                                   workers=workers)

    async def _run_bquery(self, writer, session: SqlSession,
                          session_id: int, header: dict) -> bool:
        """Serve a ``bquery`` by *relaying*: route to the one shard
        owning the key and forward each ``bchunk`` frame to the client
        as it arrives — the slice is never re-buffered whole on the
        coordinator.

        Returns True (close the connection) only when the stream dies
        after chunk 0 is already on the wire; the framing contract
        promises a started stream runs to eof, so a mid-stream shard
        failure cannot be answered with an error frame.
        """
        sql = header.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            await protocol.write_frame(writer, _error(
                protocol.SQL_ERROR,
                "bquery frame needs a non-empty 'sql'"))
            return False
        try:
            timeout = self._resolve_timeout(header.get("timeout"))
        except ValueError as exc:
            await protocol.write_frame(writer, _error(
                protocol.BAD_FRAME, str(exc)))
            return False
        loop = asyncio.get_running_loop()
        relayed: list[int] = []
        outcome, error = await self._admit_and_run(
            session_id, timeout,
            lambda: self._relay_bquery(loop, writer, header, sql,
                                       relayed))
        if error is not None:
            if relayed:
                return True  # stream already started: hang up
            await protocol.write_frame(writer, error)
            return False
        result, latency = outcome
        self.stats.record_query(session_id, latency,
                                result["metrics"])
        self.stats.record_bquery(result["chunks"], result["bytes"])
        return False

    def _relay_bquery(self, loop, writer, header: dict, sql: str,
                      relayed: list[int]) -> dict:
        """Worker-thread body of the coordinator ``bquery`` path: one
        shard exchange, chunk frames forwarded one at a time through
        the connection's event loop (``relayed`` records each chunk's
        payload size so the async side knows whether the stream
        started)."""
        plan = self.router.prepare(sql)
        if plan.key is None:
            raise protocol.WireError(
                protocol.BAD_FRAME,
                "a sharded bquery needs a point predicate on the "
                "primary key (exactly one owning shard)")
        shard_id = self.router.partitioner.shard_of(plan.key)
        forward = dict(header, timeout=protocol.NO_TIMEOUT)
        link = self.router._link(shard_id)
        try:
            link.send(forward)
            chunks = 0
            total = 0
            while True:
                reply, blobs = link.recv()
                if reply.get("type") == "error":
                    raise protocol.WireError(
                        reply.get("code") or protocol.INTERNAL,
                        f"shard {shard_id}: "
                        f"{reply.get('message', '')}")
                asyncio.run_coroutine_threadsafe(
                    protocol.write_frame(writer, reply, blobs,
                                         self.config.max_frame),
                    loop).result()
                size = len(blobs[0]) if blobs else 0
                relayed.append(size)
                chunks += 1
                total += size
                if reply.get("eof"):
                    return {"chunks": chunks, "bytes": total,
                            "metrics": reply.get("metrics")}
        except (OSError, protocol.ProtocolError) as exc:
            link.close()
            raise protocol.WireError(
                protocol.SHARD_UNAVAILABLE,
                f"shard {shard_id} failed mid-bquery: "
                f"{type(exc).__name__}: {exc}") from exc

    def _stats_frame(self) -> dict:
        frame = super()._stats_frame()
        frame["shards"] = {
            "count": self.router.partitioner.shards,
            "partitioning": self.router.partitioner.describe(),
            "addresses": [f"{host}:{port}"
                          for host, port in self.router.addresses],
        }
        return frame


def start_cluster(config: ShardConfig,
                  retry: RetryPolicy | None = None,
                  session_setup: Callable[[SqlSession], None] | None = None):
    """Spawn a shard fleet and build the router fronting it.

    Returns ``(fleet, router)``; the caller owns the fleet's lifetime
    (``fleet.stop()`` or use it as a context manager).  ``session_setup``
    is applied on every shard's sessions *and* the router's catalog
    mirror, so UDF registrations agree cluster-wide.
    """
    from .process import ShardFleet

    fleet = ShardFleet(config, session_setup=session_setup)
    fleet.start()
    router = ShardRouter(fleet.addresses, config.make_partitioner(),
                         retry=retry, max_frame=config.max_frame,
                         session_setup=session_setup)
    return fleet, router
