"""The shard coordinator: plan once, route, scatter-gather, merge.

:class:`ShardRouter` fronts N logical shards, each backed by one or
more replica :class:`~repro.server.server.ArrayServer` processes
holding the same partitioned key slice.  A statement is planned *once*
against the coordinator's catalog mirror
(:meth:`SqlSession.plan_select` — the same plan object local execution
uses) and then routed:

* point SELECT / point DELETE — the one shard owning the key;
* key-range SELECT (``pk >= a AND pk < b``) — the shards whose slices
  intersect ``[a, b)`` (range partitioning);
* everything else — scatter to all shards, gather, merge.

Replication splits the two traffic classes:

* **Reads** (``pquery`` scatter, relayed ``bquery`` streams, prepared
  ``pexec`` SELECTs) go to *one* replica per target shard, chosen
  round-robin over the live ones for throughput.  A link failure or an
  exhausted ``SERVER_BUSY`` budget marks that replica **suspect** and
  replays the identical request on a sibling — client-invisibly,
  bit-identically (replicas hold the same rows, and the merge still
  folds in shard order).  ``SHARD_UNAVAILABLE`` surfaces only when an
  entire replica set is dead.  A background reprobe thread pings
  suspect replicas and returns the recovered ones to rotation.
* **Writes** (``insert`` frames, broadcast DDL and DELETE) fan out to
  *every* in-rotation replica of the owning shard, so siblings never
  diverge.  A replica that fails a write while a sibling commits it
  has missed data and is marked **stale** — permanently out of
  rotation (reprobe never revives it), because serving reads from it
  would be silently wrong.

Aggregation is distributed through the engine's mergeable-aggregate
protocol: shards answer ``pquery`` frames with unreduced partial
states, and the coordinator folds them in shard order
(:mod:`repro.shard.merge`), so float SUM/AVG match single-node
execution bit for bit under range partitioning.

Fault handling is typed, never hanging: each replica exchange is
bounded by the link's request timeout and a :class:`RetryPolicy`; a
replica set that stays dead or saturated surfaces as a
``WireError(SHARD_UNAVAILABLE)``, which :class:`ShardServer` answers
as an error frame with that code.  Cross-shard writes that die halfway
report their partial progress in the error frame's ``detail`` key, and
a partially-broadcast CREATE is rolled back (catalog mirror dropped,
compensating ``DROP TABLE`` sent to the shards that succeeded) so the
cluster never plans against a table some shards don't have.

The coordinator itself never touches storage — no ``BufferPool``, no
latched scans; it parses, routes and merges (replint RS401 keeps it
honest, and additionally proves the failover/reprobe paths never
re-plan against the catalog mirror mid-statement).  Its catalog mirror
holds schemas only.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Callable, Sequence

from ..engine.executor import Database
from ..engine.sqlfront import SelectPlan, SqlSession, SqlSyntaxError, \
    _statement_table, _tokenize
from ..server import protocol
from ..server.client import RetryPolicy
from ..server.server import ArrayServer, ServerConfig, _error
from .client import ShardLink
from .config import ShardConfig
from .merge import (
    finalize_grouped,
    finalize_scalar,
    merge_grouped_states,
    merge_metrics,
    merge_scalar_states,
)
from .partitioner import Partitioner

__all__ = ["Replica", "ShardRouter", "ShardServer", "start_cluster"]

#: Replica health states.  ``live`` replicas serve reads and writes;
#: ``suspect`` replicas failed a read-side exchange and sit out the
#: read rotation until a reprobe revives them (they still receive
#: writes, so they never silently miss data); ``stale`` replicas
#: failed a write a sibling committed and are out for good.
LIVE = "live"
SUSPECT = "suspect"
STALE = "stale"


class Replica:
    """One addressable shard server process and its health state."""

    __slots__ = ("shard_id", "replica_id", "host", "port", "state")

    def __init__(self, shard_id: int, replica_id: int, host: str,
                 port: int):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.host = host
        self.port = port
        self.state = LIVE

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:
        return (f"Replica(shard={self.shard_id}, "
                f"replica={self.replica_id}, {self.address}, "
                f"{self.state})")


class _ReplicaUnavailable(Exception):
    """One replica stayed dead or saturated through its retry budget
    (internal to the router; the failover loop catches it)."""


def _normalize_addresses(addresses) -> list[list[tuple[str, int]]]:
    """Accept both address shapes: one ``(host, port)`` per shard
    (unreplicated, the pre-replica API) or one *list* of replica
    addresses per shard (what :class:`ShardFleet` produces)."""
    sets: list[list[tuple[str, int]]] = []
    for entry in addresses:
        entry = list(entry)
        if entry and isinstance(entry[0], (list, tuple)):
            replica_set = [(str(h), int(p)) for h, p in entry]
        else:
            host, port = entry
            replica_set = [(str(host), int(port))]
        if not replica_set:
            raise ValueError("a shard needs at least one replica "
                             "address")
        sets.append(replica_set)
    return sets


class ShardRouter:
    """Routes statements to a fleet of shard servers and merges replies.

    Thread-safe: statements may run concurrently from many coordinator
    worker threads; each thread keeps its own set of replica links,
    while replica health (live/suspect/stale), the read round-robin
    and the failover counters are shared under one mutex.

    Args:
        addresses: Per shard, either one ``(host, port)`` or a list of
            replica ``(host, port)`` addresses, in shard order.
        partitioner: Key placement (must agree with how the data was
            loaded).
        retry: Per-replica bounded retry for link failures and
            ``SERVER_BUSY`` (the default allows 2 retries).
        connect_timeout / request_timeout: Socket budgets per replica
            call; the request timeout is the no-hang guarantee.
        reprobe_interval: Seconds between background liveness probes
            of suspect replicas (the thread starts lazily on the first
            suspect and stops with :meth:`shutdown`).
        session_setup: Applied to the catalog-mirror session (register
            the same UDFs here as on the shards so planning resolves
            them).
    """

    def __init__(self, addresses, partitioner: Partitioner,
                 retry: RetryPolicy | None = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float | None = 30.0,
                 max_frame: int = protocol.MAX_FRAME_BYTES,
                 reprobe_interval: float = 0.25,
                 session_setup: Callable[[SqlSession], None] | None = None):
        address_sets = _normalize_addresses(addresses)
        if partitioner.shards != len(address_sets):
            raise ValueError(
                f"partitioner expects {partitioner.shards} shards, "
                f"got {len(address_sets)} address sets")
        self.addresses = address_sets
        self.replica_sets: list[list[Replica]] = [
            [Replica(shard_id, replica_id, host, port)
             for replica_id, (host, port) in enumerate(replica_set)]
            for shard_id, replica_set in enumerate(address_sets)]
        self.partitioner = partitioner
        self.retry = retry if retry is not None else \
            RetryPolicy(max_retries=2, backoff_base=0.05,
                        backoff_cap=1.0)
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_frame = max_frame
        self.reprobe_interval = reprobe_interval
        self.catalog = Database()
        self.session = SqlSession(self.catalog)
        if session_setup is not None:
            session_setup(self.session)
        self._local = threading.local()
        # Coordinator-side plan cache: SELECTs are planned once per
        # statement text against the catalog mirror and the plan
        # (routing key, pk range, aggregates) is reused by every
        # worker thread.  DDL invalidates it (see _create); data-only
        # writes leave plans valid — a plan captures structure, never
        # row contents.
        self._plan_cache: dict[str, SelectPlan] = {}
        self._plan_lock = threading.Lock()
        # Replica health: guards every Replica.state transition, the
        # per-shard read round-robin and the failover counters.  Leaf
        # lock — nothing else is ever acquired under it.
        self._health_lock = threading.Lock()
        self._rr = [0] * partitioner.shards
        self._failovers = 0
        self._reprobed = 0
        self._reprobe_thread: threading.Thread | None = None
        self._reprobe_stop = threading.Event()

    # -- statement entry point ----------------------------------------------

    def execute(self, sql: str, cold: bool = True,
                engine: str | None = None,
                workers: int | None = None) -> dict:
        """Route and execute one statement; returns the normalized
        result dict (:meth:`ArrayServer._execute_sync` shape): keys
        ``kind``, ``rows``, ``rowcount``, ``metrics``.

        ``engine``/``workers`` are forwarded to the shards — each
        shard may run its slice on its parallel engine; the merged
        metrics report ``engine="sharded"``.
        """
        tokens = _tokenize(sql)
        head = tokens[0]
        if head == ("kw", "SELECT"):
            return self._select(sql, cold, engine, workers)
        if head == ("kw", "CREATE"):
            return self._create(sql, tokens)
        if head == ("kw", "DROP"):
            return self._drop(sql)
        if head == ("kw", "INSERT"):
            return self._insert(sql)
        if head == ("kw", "DELETE"):
            return self._delete(sql, tokens)
        raise SqlSyntaxError(
            f"unsupported statement starting with {head[1]!r}")

    def insert_rows(self, table_name: str, rows) -> int:
        """Bulk-load rows: partition by primary key, ship one binary
        ``insert`` frame per owning shard to *every* replica of that
        shard (all sends first, then replies — replicas load
        concurrently), and land on each replica's
        :meth:`Table.insert_many` fast path.  Returns rows inserted.

        When a whole replica set is dead the raised
        ``WireError(SHARD_UNAVAILABLE)`` carries the partial-commit
        report in ``detail``: rows actually applied per shard
        (``applied``), the shard ids that committed
        (``applied_shards``), the dead ones (``failed_shards``) and
        the total ``partial_rowcount`` — a failed bulk load never
        leaves the caller guessing which shards took their slice.
        """
        buckets: dict[int, list] = {}
        for row in rows:
            key = row[0]
            if isinstance(key, bool) or not isinstance(key, int):
                raise SqlSyntaxError(
                    "sharded tables need an integer primary key, got "
                    f"{key!r}")
            buckets.setdefault(self.partitioner.shard_of(key),
                               []).append(tuple(row))
        requests = []
        for shard_id in sorted(buckets):
            packed, blobs = protocol.pack_rows(buckets[shard_id])
            requests.append((shard_id,
                             {"type": "insert", "table": table_name,
                              "rows": packed,
                              "timeout": protocol.NO_TIMEOUT},
                             blobs))
        replies, dead = self._scatter_write(requests)
        if dead:
            applied = {str(sid): reply.get("rowcount", 0)
                       for sid, (reply, _b) in sorted(replies.items())}
            partial = sum(applied.values())
            raise protocol.WireError(
                protocol.SHARD_UNAVAILABLE,
                f"bulk insert into {table_name!r} lost shard(s) "
                f"{sorted(dead)}: {partial} row(s) committed on "
                f"shard(s) {sorted(replies)} before the failure",
                detail={"applied": applied,
                        "applied_shards": sorted(replies),
                        "failed_shards": sorted(dead),
                        "partial_rowcount": partial})
        return sum(reply.get("rowcount", 0)
                   for reply, _b in replies.values())

    def close(self) -> None:
        """Close the calling thread's replica links (each worker
        thread owns its own set; fleet shutdown severs the rest)."""
        links = getattr(self._local, "links", None)
        if links:
            for link in links.values():
                link.close()
            links.clear()

    def shutdown(self) -> None:
        """Stop the background reprobe thread and close this thread's
        links.  Idempotent; other threads' links die with their
        threads (or with the fleet)."""
        self._reprobe_stop.set()
        thread = self._reprobe_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self.close()

    # -- replica health -------------------------------------------------------

    def health(self) -> dict:
        """Health gauges for the stats frame: per-shard replica
        counts, cumulative ``failovers`` (reads replayed on a sibling
        after a replica failure), current ``suspects``/``stale``
        replica counts, and cumulative ``reprobed`` revivals."""
        with self._health_lock:
            states = [replica.state
                      for replica_set in self.replica_sets
                      for replica in replica_set]
            return {
                "replicas": [len(replica_set)
                             for replica_set in self.replica_sets],
                "failovers": self._failovers,
                "suspects": states.count(SUSPECT),
                "stale": states.count(STALE),
                "reprobed": self._reprobed,
            }

    def _mark_suspect(self, replica: Replica) -> None:
        """Take a replica out of the read rotation after a failed
        exchange; the reprobe thread owns bringing it back."""
        with self._health_lock:
            if replica.state == LIVE:
                replica.state = SUSPECT
        self._ensure_reprobe_thread()

    def _mark_stale(self, replica: Replica) -> None:
        """A sibling committed a write this replica missed: it is now
        behind forever (no reprobe revival) — reads from it would be
        silently wrong."""
        with self._health_lock:
            replica.state = STALE

    def _read_candidates(self, shard_id: int) -> list[Replica]:
        """Replicas to try for one read, in preference order: the live
        ones starting at the round-robin cursor (load spreading), then
        the suspect ones (still consistent — they never miss a write —
        so they are worth a last attempt before declaring the shard
        unavailable).  Stale replicas are never candidates."""
        with self._health_lock:
            replica_set = self.replica_sets[shard_id]
            live = [r for r in replica_set if r.state == LIVE]
            suspects = [r for r in replica_set if r.state == SUSPECT]
            tick = self._rr[shard_id]
            self._rr[shard_id] += 1
        if live:
            cut = tick % len(live)
            live = live[cut:] + live[:cut]
        return live + suspects

    def _write_targets(self, shard_id: int) -> list[Replica]:
        """Replicas a write must reach: every non-stale one.  Suspect
        replicas are included on purpose — if one is actually alive it
        must see the write or it could never be revived consistently."""
        with self._health_lock:
            return [r for r in self.replica_sets[shard_id]
                    if r.state != STALE]

    def _record_failover(self) -> None:
        with self._health_lock:
            self._failovers += 1

    # -- background reprobe ---------------------------------------------------

    def _ensure_reprobe_thread(self) -> None:
        """Start the reprobe loop lazily on the first suspect (so
        routers over healthy clusters never spawn a thread)."""
        if self._reprobe_stop.is_set():
            return
        with self._health_lock:
            thread = self._reprobe_thread
            if thread is not None and thread.is_alive():
                return
            thread = threading.Thread(target=self._reprobe_loop,
                                      name="shard-reprobe",
                                      daemon=True)
            self._reprobe_thread = thread
        thread.start()

    def _reprobe_loop(self) -> None:
        """Background body: ping suspect replicas; a replica that
        answers returns to the read rotation (it received every write
        attempted while it was suspect, so it is not behind)."""
        while not self._reprobe_stop.wait(self.reprobe_interval):
            with self._health_lock:
                suspects = [r for replica_set in self.replica_sets
                            for r in replica_set
                            if r.state == SUSPECT]
            for replica in suspects:
                if not self._reprobe_once(replica):
                    continue
                with self._health_lock:
                    if replica.state == SUSPECT:
                        replica.state = LIVE
                        self._reprobed += 1

    def _reprobe_once(self, replica: Replica) -> bool:
        """One liveness probe on a throwaway link (the reprobe thread
        never shares the worker threads' links)."""
        link = ShardLink(replica.shard_id, replica.host, replica.port,
                         connect_timeout=min(1.0, self.connect_timeout),
                         request_timeout=self.request_timeout,
                         max_frame=self.max_frame)
        try:
            link.send({"type": "ping"})
            reply, _blobs = link.recv()
            return reply.get("type") == "pong"
        except (OSError, protocol.ProtocolError):
            return False
        finally:
            link.close()

    # -- SELECT: scatter pquery, merge partials ------------------------------

    def prepare(self, sql: str) -> SelectPlan:
        """Plan one SELECT through the coordinator's plan cache.

        Planning is not free at coordinator scale — every scatter pays
        it before a single shard is contacted — so hot statements
        (point SELECTs in a pipelined stream, mainly) hit the cache
        instead.  Thread-safe; a cache miss may plan the same text
        twice concurrently, which is merely redundant, never wrong.
        """
        with self._plan_lock:
            plan = self._plan_cache.get(sql)
        if plan is None:
            plan = self.session.plan_select(sql)
            with self._plan_lock:
                self._plan_cache[sql] = plan
        return plan

    def _invalidate_plans(self) -> None:
        with self._plan_lock:
            self._plan_cache.clear()

    def _select(self, sql: str, cold: bool, engine: str | None,
                workers: int | None) -> dict:
        plan = self.prepare(sql)
        targets = self._route(plan)
        header: dict = {"type": "pquery", "sql": sql,
                        "cold": bool(cold),
                        "timeout": protocol.NO_TIMEOUT}
        if engine is not None:
            header["engine"] = engine
        if workers is not None:
            header["workers"] = workers
        replies = self._scatter_read(
            [(shard_id, header, ()) for shard_id in targets])
        rows_total = sum(reply.get("rows", 0)
                         for _sid, reply, _b in replies)
        metrics = merge_metrics(
            [reply.get("metrics") or {} for _sid, reply, _b in replies],
            plan.label, self.partitioner.shards)
        if plan.kind == "grouped":
            shard_groups = []
            for shard_id, reply, blobs in replies:
                raw = reply.get("groups") or []
                shard_groups.append([
                    (protocol.unpack_cell(group, blobs),
                     [protocol.unpack_partial(part, blobs)
                      for part in parts])
                    for group, parts in raw])
            groups = merge_grouped_states(plan.aggregates,
                                          shard_groups)
            rows = finalize_grouped(plan.aggregates, groups,
                                    rows_total)
        else:
            shard_states = []
            for shard_id, reply, blobs in replies:
                raw = reply.get("states")
                if not isinstance(raw, list) or \
                        len(raw) != len(plan.aggregates):
                    raise protocol.WireError(
                        protocol.INTERNAL,
                        f"shard {shard_id} returned "
                        f"{len(raw) if isinstance(raw, list) else raw!r}"
                        f" partial states for {len(plan.aggregates)} "
                        f"aggregates")
                shard_states.append([
                    protocol.unpack_partial(part, blobs)
                    for part in raw])
            states = merge_scalar_states(plan.aggregates, shard_states)
            rows = [finalize_scalar(plan.aggregates, states,
                                    rows_total)]
        return {"kind": "rows", "rows": rows, "rowcount": len(rows),
                "metrics": metrics.to_dict()}

    def _route(self, plan: SelectPlan) -> list[int]:
        """Shards a SELECT must touch: the key's owner for a point
        seek, the owners of the pk interval for a key-range predicate,
        every shard otherwise."""
        if plan.key is not None:
            return [self.partitioner.shard_of(plan.key)]
        if plan.pk_range is not None:
            return self.partitioner.shards_for_range(*plan.pk_range)
        return list(range(self.partitioner.shards))

    # -- writes --------------------------------------------------------------

    def _create(self, sql: str, tokens) -> dict:
        """Atomic-or-rolled-back cross-shard CREATE.

        The catalog mirror is updated first — this both validates the
        DDL and lets later SELECTs plan against the schema — then the
        statement broadcasts so every replica of every shard owns an
        (empty) slice.  If any whole replica set fails the broadcast,
        the mirror entry is **rolled back** and compensating
        ``DROP TABLE`` statements are sent to the shards that already
        created the table, so the coordinator and every live shard end
        up agreeing the table does not exist; the typed
        ``SHARD_UNAVAILABLE`` carries which shards had to be
        compensated.  (Before this, a shard dying mid-CREATE left the
        coordinator planning against a table some shards didn't have.)
        """
        table_name = _statement_table(tokens, "TABLE")
        self.session.execute(sql)
        self._invalidate_plans()
        header = {"type": "query", "sql": sql, "cold": False,
                  "timeout": protocol.NO_TIMEOUT}
        requests = [(shard_id, header, ())
                    for shard_id in range(self.partitioner.shards)]
        try:
            replies, dead = self._scatter_write(requests)
        except BaseException:
            # A typed statement error (bad DDL reaching the shards
            # after passing the mirror, a shard's own SQL_ERROR):
            # nothing broadcast sticks — drop the mirror entry too.
            self._rollback_create(table_name, ())
            raise
        if dead:
            self._rollback_create(table_name, sorted(replies))
            raise protocol.WireError(
                protocol.SHARD_UNAVAILABLE,
                f"CREATE TABLE {table_name} lost shard(s) "
                f"{sorted(dead)}; rolled back on the coordinator and "
                f"on shard(s) {sorted(replies)}",
                detail={"rolled_back": table_name,
                        "applied_shards": sorted(replies),
                        "failed_shards": sorted(dead)})
        return {"kind": "ok", "rows": [], "rowcount": 0,
                "metrics": None}

    def _rollback_create(self, table_name: str,
                         applied: Sequence[int]) -> None:
        """Undo a partially-broadcast CREATE: drop the catalog-mirror
        entry, then send best-effort compensating DROPs to the shards
        that acknowledged (a shard that dies between its CREATE ack
        and the compensating DROP converges the same way: the table
        is gone everywhere that still answers)."""
        try:
            self.session.execute(f"DROP TABLE {table_name}")
        except SqlSyntaxError:
            pass  # mirror never had it (CREATE failed validation)
        self._invalidate_plans()
        if not applied:
            return
        header = {"type": "query", "sql": f"DROP TABLE {table_name}",
                  "cold": False, "timeout": protocol.NO_TIMEOUT}
        try:
            self._scatter_write([(shard_id, header, ())
                                 for shard_id in applied])
        except (protocol.WireError, protocol.ProtocolError, OSError):
            pass  # compensation is best-effort; the mirror is clean

    def _drop(self, sql: str) -> dict:
        """Broadcast DROP TABLE: mirror first (validates the name),
        then every shard.  A dead replica set surfaces typed with the
        shards that did drop in ``detail`` — a DROP cannot be
        compensated (the data is gone), so partial progress is
        reported rather than rolled back."""
        self.session.execute(sql)
        self._invalidate_plans()
        header = {"type": "query", "sql": sql, "cold": False,
                  "timeout": protocol.NO_TIMEOUT}
        requests = [(shard_id, header, ())
                    for shard_id in range(self.partitioner.shards)]
        replies, dead = self._scatter_write(requests)
        if dead:
            raise protocol.WireError(
                protocol.SHARD_UNAVAILABLE,
                f"DROP TABLE lost shard(s) {sorted(dead)}; dropped on "
                f"shard(s) {sorted(replies)} and on the coordinator",
                detail={"applied_shards": sorted(replies),
                        "failed_shards": sorted(dead)})
        return {"kind": "ok", "rows": [], "rowcount": 0,
                "metrics": None}

    def _insert(self, sql: str) -> dict:
        table, rows = self.session.parse_insert(sql)
        inserted = self.insert_rows(table.name, rows)
        return {"kind": "ok", "rows": [], "rowcount": inserted,
                "metrics": None}

    def _delete(self, sql: str, tokens) -> dict:
        """Route a DELETE: the owning shard for a point predicate,
        broadcast otherwise.  A broadcast that loses a whole replica
        set after siblings already deleted rows surfaces the partial
        progress — ``partial_rowcount`` and the shard ids that applied
        — in the typed error's ``detail`` instead of silently
        discarding it."""
        key = self._point_delete_key(tokens)
        if key is not None:
            targets = [self.partitioner.shard_of(key)]
        else:
            targets = list(range(self.partitioner.shards))
        header = {"type": "query", "sql": sql, "cold": False,
                  "timeout": protocol.NO_TIMEOUT}
        replies, dead = self._scatter_write(
            [(shard_id, header, ()) for shard_id in targets])
        if dead:
            applied = {str(sid): reply.get("rowcount", 0)
                       for sid, (reply, _b) in sorted(replies.items())}
            partial = sum(applied.values())
            raise protocol.WireError(
                protocol.SHARD_UNAVAILABLE,
                f"DELETE lost shard(s) {sorted(dead)} after "
                f"{partial} row(s) were already deleted on shard(s) "
                f"{sorted(replies)}",
                detail={"applied": applied,
                        "applied_shards": sorted(replies),
                        "failed_shards": sorted(dead),
                        "partial_rowcount": partial})
        deleted = sum(reply.get("rowcount", 0)
                      for reply, _b in replies.values())
        return {"kind": "ok", "rows": [], "rowcount": deleted,
                "metrics": None}

    def _point_delete_key(self, tokens) -> int | None:
        """Key of a ``DELETE FROM t WHERE pk = <int>`` statement (the
        single-shard fast path), or None for any other shape."""
        if len(tokens) != 8:
            return None
        kinds = [tok[0] for tok in tokens]
        if kinds != ["kw", "kw", "name", "kw", "name", "op", "number",
                     "eof"]:
            return None
        if (tokens[0][1], tokens[1][1], tokens[3][1],
                tokens[5][1]) != ("DELETE", "FROM", "WHERE", "="):
            return None
        try:
            table = self.session._resolve_table(tokens[2][1])
        except SqlSyntaxError:
            return None
        pk = table.columns[0].name
        if tokens[4][1].lower() != pk.lower():
            return None
        text = tokens[6][1]
        if "." in text or "e" in text.lower():
            return None
        return int(text)

    # -- the wire ------------------------------------------------------------

    def _links(self) -> dict[tuple[int, int], ShardLink]:
        links = getattr(self._local, "links", None)
        if links is None:
            links = {}
            self._local.links = links
        return links

    def _link(self, replica: Replica) -> ShardLink:
        links = self._links()
        key = (replica.shard_id, replica.replica_id)
        link = links.get(key)
        if link is None:
            link = ShardLink(replica.shard_id, replica.host,
                             replica.port,
                             connect_timeout=self.connect_timeout,
                             request_timeout=self.request_timeout,
                             max_frame=self.max_frame)
            links[key] = link
        return link

    # -- reads: one replica per shard, failover on loss ----------------------

    def _scatter_read(self, requests
                      ) -> list[tuple[int, dict, list[bytes]]]:
        """Split-phase read fan-out: send every request to one chosen
        replica per target shard, then gather replies in shard order.

        Shards execute concurrently while the coordinator blocks on at
        most one reply at a time; gathering in shard order keeps the
        merge fold deterministic.  Any failure on the chosen replica —
        failed send, failed receive, ``SERVER_BUSY`` past the budget —
        drops into :meth:`_failover_read`, which retries that replica
        within the budget and then replays the identical request on
        its siblings; the statement only fails when a whole replica
        set is down.  A shard error frame with any other code is the
        statement's own failure and propagates typed.  If anything
        raises mid-gather, every link of this thread is closed so no
        connection is left holding an unread reply.
        """
        try:
            picked: list[Replica | None] = []
            sent: list[bool] = []
            for shard_id, header, blobs in requests:
                candidates = self._read_candidates(shard_id)
                replica = candidates[0] if candidates else None
                picked.append(replica)
                ok = False
                if replica is not None:
                    link = self._link(replica)
                    try:
                        link.send(header, blobs)
                        ok = True
                    except (OSError, protocol.ProtocolError):
                        link.close()
                sent.append(ok)
            replies = []
            for index, (shard_id, header, blobs) in enumerate(requests):
                replica = picked[index]
                reply_pair = None
                if replica is not None and sent[index]:
                    link = self._link(replica)
                    try:
                        reply_pair = link.recv()
                    except (OSError, protocol.ProtocolError):
                        link.close()
                if reply_pair is not None:
                    reply, rblobs = reply_pair
                    if reply.get("type") != "error":
                        replies.append((shard_id, reply, rblobs))
                        continue
                    code = reply.get("code")
                    if code != protocol.SERVER_BUSY:
                        raise protocol.WireError(
                            code or protocol.INTERNAL,
                            f"shard {shard_id}: "
                            f"{reply.get('message', '')}",
                            detail=reply.get("detail"))
                    # Busy: fall through to retry + failover.
                reply, rblobs = self._failover_read(shard_id, header,
                                                    blobs,
                                                    first=replica)
                replies.append((shard_id, reply, rblobs))
            return replies
        except BaseException:
            self.close()
            raise

    def _failover_read(self, shard_id: int, header: dict, blobs,
                       first: Replica | None = None
                       ) -> tuple[dict, list[bytes]]:
        """Walk one shard's replicas until a reply lands.

        ``first`` (the fast path's round-robin pick, when it had one)
        is retried through the bounded budget before its siblings so a
        transient glitch never triggers a spurious failover; each
        replica that exhausts its budget is marked suspect.  Only when
        every non-stale replica has failed does the shard surface as
        ``SHARD_UNAVAILABLE`` — bounded, typed, never a hang.
        """
        candidates = self._read_candidates(shard_id)
        if first is not None:
            candidates = [first] + [r for r in candidates
                                    if r is not first]
        last = "no replica in rotation"
        any_failed = False
        for replica in candidates:
            try:
                reply, rblobs = self._exchange_on(replica, header,
                                                  blobs)
            except _ReplicaUnavailable as exc:
                self._mark_suspect(replica)
                any_failed = True
                last = str(exc)
                continue
            if any_failed:
                self._record_failover()
            return reply, rblobs
        raise protocol.WireError(
            protocol.SHARD_UNAVAILABLE,
            f"shard {shard_id} unavailable: all "
            f"{len(self.replica_sets[shard_id])} replica(s) failed "
            f"(last: {last})")

    def _exchange_on(self, replica: Replica, header: dict,
                     blobs) -> tuple[dict, list[bytes]]:
        """One request/reply against one replica with bounded retry.

        Retries reconnectable failures (refused, reset, closed link,
        timed-out reply) and ``SERVER_BUSY`` rejections with
        exponential backoff.  After the cap the *replica* is declared
        unavailable (:class:`_ReplicaUnavailable`) — whether that
        fails the statement is the caller's call: reads fail over to a
        sibling, writes mark the replica stale.
        """
        last = "no attempt made"
        for attempt in range(self.retry.max_retries + 1):
            if attempt:
                time.sleep(self.retry.delay(attempt - 1))
            link = self._link(replica)
            try:
                link.send(header, blobs)
                reply, rblobs = link.recv()
            except (OSError, protocol.ProtocolError) as exc:
                link.close()
                last = f"{type(exc).__name__}: {exc}"
                continue
            if reply.get("type") == "error":
                code = reply.get("code")
                if code == protocol.SERVER_BUSY:
                    last = reply.get("message", "replica busy")
                    continue
                raise protocol.WireError(
                    code or protocol.INTERNAL,
                    f"shard {replica.shard_id}: "
                    f"{reply.get('message', '')}",
                    detail=reply.get("detail"))
            return reply, rblobs
        raise _ReplicaUnavailable(
            f"replica {replica.replica_id} ({replica.address}) of "
            f"shard {replica.shard_id} unavailable after "
            f"{self.retry.max_retries + 1} attempts: {last}")

    # -- writes: every in-rotation replica, fan-in ---------------------------

    def _scatter_write(self, requests
                       ) -> tuple[dict[int, tuple[dict, list[bytes]]],
                                  dict[int, str]]:
        """Write fan-out: ship each request to **every** non-stale
        replica of its target shard (all sends first, then replies),
        and reconcile per shard.

        Returns ``(replies, dead)``: ``replies[shard_id]`` is the
        first successful replica's reply, ``dead[shard_id]`` the
        failure summary for shards where *no* replica acknowledged.
        A replica that fails while a sibling commits has missed the
        write and is marked **stale** (permanently out of rotation);
        when the whole set fails, nothing committed on that shard, so
        its replicas are merely marked suspect.  A typed statement
        error frame (not busy) propagates immediately — the statement
        itself is wrong and is deterministically wrong on every
        replica.
        """
        try:
            sends: list[tuple[int, Replica, bool]] = []
            for shard_id, header, blobs in requests:
                for replica in self._write_targets(shard_id):
                    link = self._link(replica)
                    ok = False
                    try:
                        link.send(header, blobs)
                        ok = True
                    except (OSError, protocol.ProtocolError):
                        link.close()
                    sends.append((shard_id, replica, ok))
            outcomes: dict[int, dict[int, tuple[dict, list[bytes]]]] = {}
            failures: dict[int, dict[int, str]] = {}
            cursor = 0
            for shard_id, header, blobs in requests:
                outcomes.setdefault(shard_id, {})
                failures.setdefault(shard_id, {})
                while cursor < len(sends) and \
                        sends[cursor][0] == shard_id:
                    _sid, replica, ok = sends[cursor]
                    cursor += 1
                    reply_pair = None
                    if ok:
                        link = self._link(replica)
                        try:
                            reply_pair = link.recv()
                        except (OSError, protocol.ProtocolError):
                            link.close()
                    if reply_pair is not None:
                        reply, rblobs = reply_pair
                        if reply.get("type") != "error":
                            outcomes[shard_id][replica.replica_id] = \
                                (reply, rblobs)
                            continue
                        code = reply.get("code")
                        if code != protocol.SERVER_BUSY:
                            raise protocol.WireError(
                                code or protocol.INTERNAL,
                                f"shard {shard_id}: "
                                f"{reply.get('message', '')}",
                                detail=reply.get("detail"))
                        # Busy: bounded retry below.
                    try:
                        reply, rblobs = self._exchange_on(replica,
                                                          header,
                                                          blobs)
                        outcomes[shard_id][replica.replica_id] = \
                            (reply, rblobs)
                    except _ReplicaUnavailable as exc:
                        failures[shard_id][replica.replica_id] = \
                            str(exc)
            replies: dict[int, tuple[dict, list[bytes]]] = {}
            dead: dict[int, str] = {}
            for shard_id, header, blobs in requests:
                acked = outcomes.get(shard_id) or {}
                failed = failures.get(shard_id) or {}
                replica_set = self.replica_sets[shard_id]
                if acked:
                    first = min(acked)
                    replies[shard_id] = acked[first]
                    for replica in replica_set:
                        if replica.replica_id in failed:
                            # Missed a write a sibling committed.
                            self._mark_stale(replica)
                else:
                    for replica in replica_set:
                        if replica.replica_id in failed:
                            # Nothing committed: the set is still
                            # mutually consistent — reprobe may
                            # revive these.
                            self._mark_suspect(replica)
                    dead[shard_id] = "; ".join(
                        failed.values()) or "no replica in rotation"
            return replies, dead
        except BaseException:
            self.close()
            raise

    # -- streamed blob relays (bquery) ---------------------------------------

    def relay_bquery(self, shard_id: int, header: dict,
                     emit: Callable[[dict, list[bytes]], None]) -> dict:
        """Relay one ``bquery`` stream from the owning shard, chunk by
        chunk, through ``emit`` (never re-buffering the slice whole).

        Failover is chunk-exact: if the serving replica dies
        mid-stream, the identical request replays on a sibling and the
        chunks the client already holds are *skipped* — chunking is
        deterministic (same blob bytes, same ``chunk_bytes`` clamp),
        so the resumed stream continues at the next ``seq`` with
        byte-identical frames.  A sibling chunk that disagrees in size
        with one already relayed means the replicas diverged, which is
        a hard ``INTERNAL`` error, never silent corruption.

        Returns ``{"chunks", "bytes", "metrics"}`` for the stats hooks.
        """
        relayed: list[int] = []
        return self._failover_relay(shard_id, header, emit, relayed)

    def _failover_relay(self, shard_id: int, header: dict,
                        emit: Callable[[dict, list[bytes]], None],
                        relayed: list[int]) -> dict:
        candidates = self._read_candidates(shard_id)
        last = "no replica in rotation"
        any_failed = False
        for replica in candidates:
            link = self._link(replica)
            try:
                link.send(header)
                skip = len(relayed)
                seen = 0
                chunks = skip
                total = sum(relayed)
                while True:
                    reply, blobs = link.recv()
                    if reply.get("type") == "error":
                        code = reply.get("code")
                        if code == protocol.SERVER_BUSY:
                            # Error frames only ever replace chunk 0,
                            # so nothing of this attempt is on the
                            # wire: the sibling can serve it whole.
                            raise _ReplicaUnavailable(
                                reply.get("message", "replica busy"))
                        raise protocol.WireError(
                            code or protocol.INTERNAL,
                            f"shard {shard_id}: "
                            f"{reply.get('message', '')}",
                            detail=reply.get("detail"))
                    size = len(blobs[0]) if blobs else 0
                    if seen < skip:
                        # Replaying after a mid-stream loss: the
                        # client already holds this chunk.
                        if size != relayed[seen] or reply.get("eof"):
                            raise protocol.WireError(
                                protocol.INTERNAL,
                                f"shard {shard_id} replica "
                                f"{replica.replica_id} chunk stream "
                                f"diverged from its sibling at seq "
                                f"{seen}")
                        seen += 1
                        continue
                    emit(reply, blobs)
                    relayed.append(size)
                    seen += 1
                    chunks += 1
                    total += size
                    if reply.get("eof"):
                        if any_failed:
                            self._record_failover()
                        return {"chunks": chunks, "bytes": total,
                                "metrics": reply.get("metrics")}
            except (OSError, protocol.ProtocolError) as exc:
                link.close()
                self._mark_suspect(replica)
                any_failed = True
                last = f"{type(exc).__name__}: {exc}"
                continue
            except _ReplicaUnavailable as exc:
                link.close()
                self._mark_suspect(replica)
                any_failed = True
                last = str(exc)
                continue
        raise protocol.WireError(
            protocol.SHARD_UNAVAILABLE,
            f"shard {shard_id} failed mid-bquery on every replica "
            f"(last: {last})")


class ShardServer(ArrayServer):
    """The coordinator process: an :class:`ArrayServer` whose
    statements execute through a :class:`ShardRouter` instead of local
    storage.

    Clients connect with the unchanged wire protocol
    (:class:`~repro.shard.client.ShardClient` or plain
    :class:`ArrayClient`); admission control, per-query timeouts and
    stats work exactly as on a single node.  A replica failure is
    invisible to clients — reads replay on a sibling — and only a
    fully dead replica set surfaces as a ``SHARD_UNAVAILABLE`` error
    frame — typed, bounded, never a hang — with the client connection
    surviving.
    """

    def __init__(self, router: ShardRouter,
                 config: ServerConfig | None = None,
                 session_setup: Callable[[SqlSession], None] | None = None):
        super().__init__(router.catalog, config, session_setup)
        self.router = router

    def _execute_sync(self, session: SqlSession, sql: str,
                      cold: bool, engine: str | None = None,
                      workers: int | None = None) -> dict:
        return self.router.execute(sql, cold=cold, engine=engine,
                                   workers=workers)

    def _execute_partial_sync(self, session: SqlSession, sql: str,
                              cold: bool, engine: str | None = None,
                              workers: int | None = None) -> dict:
        raise protocol.WireError(
            protocol.BAD_FRAME,
            "the coordinator does not serve pquery frames; they are "
            "shard-internal")

    def _prepare_sync(self, session: SqlSession,
                      sql: str) -> tuple[str, str]:
        # Prepare against the router's shared plan cache, not the
        # connection session: every coordinator worker thread reuses
        # the same plan for routing.
        plan = self.router.prepare(sql)
        return plan.kind, plan.table.name

    def _execute_prepared_sync(self, session: SqlSession, sql: str,
                               cold: bool, engine: str | None = None,
                               workers: int | None = None) -> dict:
        # router.execute plans through the coordinator cache (see
        # ShardRouter.prepare), so pexec skips re-planning here too.
        return self.router.execute(sql, cold=cold, engine=engine,
                                   workers=workers)

    async def _run_bquery(self, writer, session: SqlSession,
                          session_id: int, header: dict) -> bool:
        """Serve a ``bquery`` by *relaying*: route to the one shard
        owning the key and forward each ``bchunk`` frame to the client
        as it arrives — the slice is never re-buffered whole on the
        coordinator.  A replica dying mid-stream fails over
        chunk-exactly to a sibling (see
        :meth:`ShardRouter.relay_bquery`).

        Returns True (close the connection) only when the stream dies
        after chunk 0 is already on the wire *and* no sibling could
        resume it; the framing contract promises a started stream runs
        to eof, so an unresumable mid-stream failure cannot be
        answered with an error frame.
        """
        sql = header.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            await protocol.write_frame(writer, _error(
                protocol.SQL_ERROR,
                "bquery frame needs a non-empty 'sql'"))
            return False
        try:
            timeout = self._resolve_timeout(header.get("timeout"))
        except ValueError as exc:
            await protocol.write_frame(writer, _error(
                protocol.BAD_FRAME, str(exc)))
            return False
        loop = asyncio.get_running_loop()
        relayed: list[int] = []
        outcome, error = await self._admit_and_run(
            session_id, timeout,
            lambda: self._relay_bquery(loop, writer, header, sql,
                                       relayed))
        if error is not None:
            if relayed:
                return True  # stream already started: hang up
            await protocol.write_frame(writer, error)
            return False
        result, latency = outcome
        self.stats.record_query(session_id, latency,
                                result["metrics"])
        self.stats.record_bquery(result["chunks"], result["bytes"])
        return False

    def _relay_bquery(self, loop, writer, header: dict, sql: str,
                      relayed: list[int]) -> dict:
        """Worker-thread body of the coordinator ``bquery`` path:
        route to the owning shard and forward chunk frames one at a
        time through the connection's event loop (``relayed`` records
        each forwarded chunk's payload size so the async side knows
        whether the stream started — and so a replica failover knows
        how many chunks to skip on the sibling)."""
        plan = self.router.prepare(sql)
        if plan.key is None:
            raise protocol.WireError(
                protocol.BAD_FRAME,
                "a sharded bquery needs a point predicate on the "
                "primary key (exactly one owning shard)")
        shard_id = self.router.partitioner.shard_of(plan.key)
        forward = dict(header, timeout=protocol.NO_TIMEOUT)

        def emit(reply: dict, blobs: list[bytes]) -> None:
            # _failover_relay records the chunk in `relayed` itself
            # after a successful emit — no bookkeeping here.
            asyncio.run_coroutine_threadsafe(
                protocol.write_frame(writer, reply, blobs,
                                     self.config.max_frame),
                loop).result()

        return self.router._failover_relay(shard_id, forward, emit,
                                           relayed)

    def _stats_frame(self) -> dict:
        frame = super()._stats_frame()
        frame["shards"] = {
            "count": self.router.partitioner.shards,
            "partitioning": self.router.partitioner.describe(),
            "addresses": [[f"{host}:{port}"
                           for host, port in replica_set]
                          for replica_set in self.router.addresses],
            **self.router.health(),
        }
        return frame


def start_cluster(config: ShardConfig,
                  retry: RetryPolicy | None = None,
                  session_setup: Callable[[SqlSession], None] | None = None):
    """Spawn a shard fleet and build the router fronting it.

    Returns ``(fleet, router)``; the caller owns the fleet's lifetime
    (``fleet.stop()`` or use it as a context manager).  ``session_setup``
    is applied on every replica's sessions *and* the router's catalog
    mirror, so UDF registrations agree cluster-wide.
    """
    from .process import ShardFleet

    fleet = ShardFleet(config, session_setup=session_setup)
    fleet.start()
    router = ShardRouter(fleet.addresses, config.make_partitioner(),
                         retry=retry, max_frame=config.max_frame,
                         session_setup=session_setup)
    return fleet, router
