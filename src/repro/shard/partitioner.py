"""Key partitioners: which shard owns a primary key.

Both schemes map every integer primary key to exactly one shard, so a
point statement touches one server and a scatter covers each row once.
They differ in what a *range* costs and in what merge order means:

* :class:`RangePartitioner` (the default) gives shard ``i`` a
  contiguous key interval.  Shard order equals key order, so the
  coordinator's shard-order merge replays the exact serial left fold a
  single node would run — float SUM/AVG stay bit-identical — and a
  ``pk >= a AND pk < b`` SELECT prunes to the owning shards.
* :class:`HashPartitioner` scatters keys by a deterministic
  multiplicative hash: perfectly even placement under skewed key
  ranges, but key order is lost, so only exact-key statements prune
  and float aggregates are merged in *shard* order, which is a
  different (still deterministic) fold order than single-node key
  order.  See ``docs/SHARDING.md`` for the trade-off.
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = ["Partitioner", "RangePartitioner", "HashPartitioner"]


class Partitioner:
    """Maps integer primary keys to shard indices ``0..shards-1``."""

    kind = "?"

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = shards

    def shard_of(self, key: int) -> int:
        """The shard owning ``key``."""
        raise NotImplementedError

    def shards_for_range(self, lo: int | None,
                         hi: int | None) -> list[int]:
        """Shards that may own a key in ``[lo, hi)`` (either bound
        None = open), in ascending shard order.  Must never omit an
        owner; returning extra shards is only a performance loss."""
        return list(range(self.shards))

    def describe(self) -> str:
        return f"{self.kind}({self.shards})"


class RangePartitioner(Partitioner):
    """Contiguous key intervals split by ``boundaries``.

    ``boundaries`` is a strictly increasing list of ``shards - 1`` cut
    points; shard ``i`` owns keys in ``[boundaries[i-1],
    boundaries[i])`` (the first and last intervals are open-ended).
    """

    kind = "range"

    def __init__(self, boundaries: list[int]):
        super().__init__(len(boundaries) + 1)
        if any(nxt <= prev
               for nxt, prev in zip(boundaries[1:], boundaries)):
            raise ValueError(
                f"boundaries must be strictly increasing, got "
                f"{boundaries!r}")
        self.boundaries = list(boundaries)

    @classmethod
    def for_keyspace(cls, shards: int, lo: int,
                     hi: int) -> "RangePartitioner":
        """Even split of ``[lo, hi)`` into ``shards`` intervals."""
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if hi <= lo:
            raise ValueError(f"empty keyspace [{lo}, {hi})")
        span = hi - lo
        return cls([lo + (span * i) // shards
                    for i in range(1, shards)])

    def shard_of(self, key: int) -> int:
        return bisect_right(self.boundaries, key)

    def shards_for_range(self, lo: int | None,
                         hi: int | None) -> list[int]:
        first = 0 if lo is None else self.shard_of(lo)
        last = self.shards - 1 if hi is None else self.shard_of(hi - 1)
        if hi is not None and lo is not None and hi <= lo:
            return []
        return list(range(first, last + 1))

    def describe(self) -> str:
        return f"range({self.shards}, cuts={self.boundaries})"


class HashPartitioner(Partitioner):
    """Multiplicative hash placement (Fibonacci hashing).

    Deterministic across processes and Python versions — no reliance
    on ``hash()`` randomization — so a router restart routes every key
    to the same shard.
    """

    kind = "hash"

    _MULTIPLIER = 0x9E3779B97F4A7C15  # 2**64 / golden ratio
    _MASK = (1 << 64) - 1

    def shard_of(self, key: int) -> int:
        mixed = ((int(key) * self._MULTIPLIER) & self._MASK) >> 32
        return mixed % self.shards

    def shards_for_range(self, lo: int | None,
                         hi: int | None) -> list[int]:
        # Hashing destroys key locality: only a unit interval (a point
        # lookup) routes to one shard; anything wider needs them all.
        if lo is not None and hi is not None:
            if hi <= lo:
                return []
            if hi - lo == 1:
                return [self.shard_of(lo)]
        return list(range(self.shards))
