"""Cluster configuration: how many shards, where, and how keys split.

One :class:`ShardConfig` describes a whole cluster — the fleet spawner
derives each replica's :class:`~repro.server.server.ServerConfig` from
it, and the router derives its partitioner — so a cluster is
reproducible from one picklable value.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..server.protocol import MAX_FRAME_BYTES
from ..server.server import ServerConfig
from .partitioner import HashPartitioner, Partitioner, RangePartitioner

__all__ = ["ShardConfig", "replicas_from_env"]


def replicas_from_env() -> int:
    """Default replica count: ``REPRO_SHARD_REPLICAS`` or 1.

    The environment knob lets CI re-run the whole shard suite over
    replicated clusters without touching a single test.
    """
    raw = os.environ.get("REPRO_SHARD_REPLICAS", "1")
    try:
        replicas = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SHARD_REPLICAS must be an integer, got {raw!r}")
    if replicas < 1:
        raise ValueError(
            f"REPRO_SHARD_REPLICAS must be >= 1, got {replicas}")
    return replicas


@dataclass(frozen=True)
class ShardConfig:
    """Deployment knobs for one sharded cluster.

    Attributes:
        shards: Number of logical shards (key slices).
        replicas: Server processes per logical shard.  Every replica
            of a shard holds the full slice: writes apply to all of
            them, reads round-robin across the live ones and fail over
            to a sibling when a replica dies (see ``docs/SHARDING.md``).
            Defaults to ``REPRO_SHARD_REPLICAS`` (1 when unset).
        partitioning: ``"range"`` (contiguous key slices; the default —
            keeps distributed float aggregates bit-identical to
            single-node, see ``docs/SHARDING.md``) or ``"hash"``.
        key_lo / key_hi: The expected primary-key interval, used only
            by range partitioning to place its cut points (keys
            outside it still route — to the first/last shard).
        host: Address the shard servers bind (loopback by default).
        max_workers / queue_limit: Per-replica admission knobs (each
            replica runs its own :class:`AdmissionController`).
        query_timeout: Per-shard default query budget; None disables
            it — the coordinator's own request timeout bounds shard
            calls instead, so a dead shard still cannot hang a client.
        max_frame: Largest frame on the coordinator-to-shard hop.
    """

    shards: int = 2
    replicas: int = field(default_factory=replicas_from_env)
    partitioning: str = "range"
    key_lo: int = 0
    key_hi: int = 1 << 20
    host: str = "127.0.0.1"
    max_workers: int = 4
    queue_limit: int = 8
    query_timeout: float | None = None
    max_frame: int = MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(
                f"a shard needs at least one replica, got "
                f"{self.replicas}")

    def make_partitioner(self) -> Partitioner:
        if self.partitioning == "range":
            return RangePartitioner.for_keyspace(
                self.shards, self.key_lo, self.key_hi)
        if self.partitioning == "hash":
            return HashPartitioner(self.shards)
        raise ValueError(
            f"partitioning must be 'range' or 'hash', got "
            f"{self.partitioning!r}")

    def shard_server_config(self, index: int,
                            replica: int = 0) -> ServerConfig:
        """The :class:`ServerConfig` for replica ``replica`` of shard
        ``index`` (port 0: the fleet reads the bound port from the
        child's pipe)."""
        return ServerConfig(
            host=self.host, port=0, max_workers=self.max_workers,
            queue_limit=self.queue_limit,
            query_timeout=self.query_timeout,
            max_frame=self.max_frame,
            name=f"repro-shard-{index}r{replica}")
