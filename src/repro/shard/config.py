"""Cluster configuration: how many shards, where, and how keys split.

One :class:`ShardConfig` describes a whole cluster — the fleet spawner
derives each shard's :class:`~repro.server.server.ServerConfig` from
it, and the router derives its partitioner — so a cluster is
reproducible from one picklable value.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..server.protocol import MAX_FRAME_BYTES
from ..server.server import ServerConfig
from .partitioner import HashPartitioner, Partitioner, RangePartitioner

__all__ = ["ShardConfig"]


@dataclass(frozen=True)
class ShardConfig:
    """Deployment knobs for one sharded cluster.

    Attributes:
        shards: Number of shard server processes.
        partitioning: ``"range"`` (contiguous key slices; the default —
            keeps distributed float aggregates bit-identical to
            single-node, see ``docs/SHARDING.md``) or ``"hash"``.
        key_lo / key_hi: The expected primary-key interval, used only
            by range partitioning to place its cut points (keys
            outside it still route — to the first/last shard).
        host: Address the shard servers bind (loopback by default).
        max_workers / queue_limit: Per-shard admission knobs (each
            shard runs its own :class:`AdmissionController`).
        query_timeout: Per-shard default query budget; None disables
            it — the coordinator's own request timeout bounds shard
            calls instead, so a dead shard still cannot hang a client.
        max_frame: Largest frame on the coordinator-to-shard hop.
    """

    shards: int = 2
    partitioning: str = "range"
    key_lo: int = 0
    key_hi: int = 1 << 20
    host: str = "127.0.0.1"
    max_workers: int = 4
    queue_limit: int = 8
    query_timeout: float | None = None
    max_frame: int = MAX_FRAME_BYTES

    def make_partitioner(self) -> Partitioner:
        if self.partitioning == "range":
            return RangePartitioner.for_keyspace(
                self.shards, self.key_lo, self.key_hi)
        if self.partitioning == "hash":
            return HashPartitioner(self.shards)
        raise ValueError(
            f"partitioning must be 'range' or 'hash', got "
            f"{self.partitioning!r}")

    def shard_server_config(self, index: int) -> ServerConfig:
        """The :class:`ServerConfig` for shard ``index`` (port 0: the
        fleet reads the bound port from the child's pipe)."""
        return ServerConfig(
            host=self.host, port=0, max_workers=self.max_workers,
            queue_limit=self.queue_limit,
            query_timeout=self.query_timeout,
            max_frame=self.max_frame,
            name=f"repro-shard-{index}")
