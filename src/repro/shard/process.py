"""Shard fleet lifecycle: spawn, handshake, kill, stop.

Each shard is a separate OS process running its own
:class:`~repro.server.server.ArrayServer` over its own
:class:`~repro.engine.executor.Database` — nothing is shared, which is
the point: a shard crash cannot corrupt its siblings, and each shard's
buffer pool, latches and admission controller are private.

Processes are started with the ``spawn`` context (no forked locks or
event loops) and bind port 0; the child reports its bound port back
over a pipe, so clusters never race for fixed ports in tests.

:meth:`ShardFleet.kill` SIGKILLs one shard — the fault-injection hook
the shard tests use to prove a dead shard surfaces as a typed
``SHARD_UNAVAILABLE`` error instead of a hang.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from typing import Callable

from ..engine.executor import Database
from ..engine.sqlfront import SqlSession
from ..server.server import ServerConfig, ServerThread
from .config import ShardConfig

__all__ = ["ShardFleet"]

_START_TIMEOUT = 30.0


def _shard_main(index: int, conn,
                config: ServerConfig,
                session_setup: Callable[[SqlSession], None] | None) -> None:
    """Child-process entry point: serve one empty shard database.

    Must stay module-level and importable — the spawn context pickles
    a reference to it, not the function itself.
    """
    thread = ServerThread(Database(), config,
                          session_setup=session_setup)
    thread.start()
    conn.send(thread.port)
    conn.close()
    # Serve until the fleet terminates the process; the server lives
    # on a daemon thread, so the block below is the process lifetime.
    # A terminal Ctrl-C reaches every process in the foreground group,
    # so swallow it here — shutdown belongs to the fleet, and the
    # coordinator's own handler prints the one goodbye message.
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass


class ShardFleet:
    """Owns the lifetime of N shard server processes.

    Usage::

        with ShardFleet(ShardConfig(shards=4)) as fleet:
            router = ShardRouter(fleet.addresses,
                                 fleet.config.make_partitioner())
            ...

    ``session_setup`` must be picklable (a module-level function) —
    it crosses the process boundary to run on each shard.
    """

    def __init__(self, config: ShardConfig,
                 session_setup: Callable[[SqlSession], None] | None = None):
        self.config = config
        self.session_setup = session_setup
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: list = []
        self.addresses: list[tuple[str, int]] = []

    def start(self) -> "ShardFleet":
        """Spawn every shard and wait for each to report its port."""
        if self._procs:
            return self
        pending = []
        try:
            for index in range(self.config.shards):
                parent, child = self._ctx.Pipe(duplex=False)
                proc = self._ctx.Process(
                    target=_shard_main,
                    args=(index, child,
                          self.config.shard_server_config(index),
                          self.session_setup),
                    daemon=True,
                    name=f"repro-shard-{index}")
                proc.start()
                child.close()
                pending.append((index, proc, parent))
            for index, proc, parent in pending:
                if not parent.poll(_START_TIMEOUT):
                    raise RuntimeError(
                        f"shard {index} did not report a port within "
                        f"{_START_TIMEOUT:.0f}s")
                port = parent.recv()
                parent.close()
                self.addresses.append((self.config.host, port))
                self._procs.append(proc)
        except BaseException:
            for _index, proc, parent in pending:
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=5.0)
            self._procs = []
            self.addresses = []
            raise
        return self

    def kill(self, index: int) -> None:
        """SIGKILL one shard — fault injection for tests; the fleet
        keeps running and the router reports the hole as
        ``SHARD_UNAVAILABLE``."""
        proc = self._procs[index]
        if proc.is_alive() and proc.pid is not None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=10.0)

    def alive(self) -> list[bool]:
        return [proc.is_alive() for proc in self._procs]

    def stop(self) -> None:
        """Terminate every shard (idempotent)."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self._procs = []
        self.addresses = []

    def __enter__(self) -> "ShardFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
