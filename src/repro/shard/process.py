"""Shard fleet lifecycle: spawn replica sets, handshake, kill, stop.

Each replica is a separate OS process running its own
:class:`~repro.server.server.ArrayServer` over its own
:class:`~repro.engine.executor.Database` — nothing is shared, which is
the point: a replica crash cannot corrupt its siblings, and each
replica's buffer pool, latches and admission controller are private.
A logical shard is ``config.replicas`` such processes holding the same
key slice; the router applies writes to all of them and spreads reads
across them.

Processes are started with the ``spawn`` context (no forked locks or
event loops) and bind port 0; the child reports its bound port back
over a pipe, so clusters never race for fixed ports in tests.

:meth:`ShardFleet.kill` SIGKILLs one replica — the fault-injection
hook the replica tests use to prove a dead replica fails reads over
to a sibling; :meth:`ShardFleet.kill_shard` kills the whole replica
set, which is what turns into a typed ``SHARD_UNAVAILABLE``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from typing import Callable

from ..engine.executor import Database
from ..engine.sqlfront import SqlSession
from ..server.server import ServerConfig, ServerThread
from .config import ShardConfig

__all__ = ["ShardFleet"]

_START_TIMEOUT = 30.0


def _shard_main(index: int, replica: int, conn,
                config: ServerConfig,
                session_setup: Callable[[SqlSession], None] | None) -> None:
    """Child-process entry point: serve one empty shard database.

    Must stay module-level and importable — the spawn context pickles
    a reference to it, not the function itself.
    """
    thread = ServerThread(Database(), config,
                          session_setup=session_setup)
    thread.start()
    conn.send(thread.port)
    conn.close()
    # Serve until the fleet terminates the process; the server lives
    # on a daemon thread, so the block below is the process lifetime.
    # A terminal Ctrl-C reaches every process in the foreground group,
    # so swallow it here — shutdown belongs to the fleet, and the
    # coordinator's own handler prints the one goodbye message.
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass


class ShardFleet:
    """Owns the lifetime of ``shards x replicas`` server processes.

    Usage::

        with ShardFleet(ShardConfig(shards=4, replicas=2)) as fleet:
            router = ShardRouter(fleet.addresses,
                                 fleet.config.make_partitioner())
            ...

    ``addresses`` is one list per shard of that shard's replica
    addresses, in replica order — the shape :class:`ShardRouter`
    consumes directly (it also still accepts a flat one-address-per-
    shard list for unreplicated clusters built by hand).

    ``session_setup`` must be picklable (a module-level function) —
    it crosses the process boundary to run on each replica.
    """

    def __init__(self, config: ShardConfig,
                 session_setup: Callable[[SqlSession], None] | None = None):
        self.config = config
        self.session_setup = session_setup
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: list[list] = []
        self.addresses: list[list[tuple[str, int]]] = []

    def start(self) -> "ShardFleet":
        """Spawn every replica and wait for each to report its port."""
        if self._procs:
            return self
        pending = []
        try:
            for index in range(self.config.shards):
                for replica in range(self.config.replicas):
                    parent, child = self._ctx.Pipe(duplex=False)
                    proc = self._ctx.Process(
                        target=_shard_main,
                        args=(index, replica, child,
                              self.config.shard_server_config(index,
                                                              replica),
                              self.session_setup),
                        daemon=True,
                        name=f"repro-shard-{index}r{replica}")
                    proc.start()
                    child.close()
                    pending.append((index, replica, proc, parent))
            procs: list[list] = [[] for _ in range(self.config.shards)]
            addresses: list[list[tuple[str, int]]] = [
                [] for _ in range(self.config.shards)]
            for index, replica, proc, parent in pending:
                if not parent.poll(_START_TIMEOUT):
                    raise RuntimeError(
                        f"shard {index} replica {replica} did not "
                        f"report a port within {_START_TIMEOUT:.0f}s")
                port = parent.recv()
                parent.close()
                addresses[index].append((self.config.host, port))
                procs[index].append(proc)
            self._procs = procs
            self.addresses = addresses
        except BaseException:
            for _index, _replica, proc, parent in pending:
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=5.0)
            self._procs = []
            self.addresses = []
            raise
        return self

    def kill(self, index: int, replica: int = 0) -> None:
        """SIGKILL one replica — fault injection for tests.  The fleet
        keeps running; with siblings left, the router fails reads over
        to them, and only a fully dead replica set surfaces as
        ``SHARD_UNAVAILABLE``."""
        proc = self._procs[index][replica]
        if proc.is_alive() and proc.pid is not None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=10.0)

    def kill_shard(self, index: int) -> None:
        """SIGKILL every replica of one shard (the whole-shard fault
        the ``SHARD_UNAVAILABLE`` tests inject)."""
        for replica in range(len(self._procs[index])):
            self.kill(index, replica)

    def alive(self) -> list[list[bool]]:
        """Liveness matrix: ``alive()[shard][replica]``."""
        return [[proc.is_alive() for proc in replicas]
                for replicas in self._procs]

    def stop(self) -> None:
        """Terminate every replica (idempotent)."""
        flat = [proc for replicas in self._procs for proc in replicas]
        for proc in flat:
            if proc.is_alive():
                proc.terminate()
        for proc in flat:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self._procs = []
        self.addresses = []

    def __enter__(self) -> "ShardFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
