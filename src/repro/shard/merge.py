"""Coordinator-side merging of shard partial states.

The shards ship the *unreduced* mergeable states their scans produced
(:class:`~repro.engine.executor.PartialCapture`); these helpers fold
them — in the shard order the caller supplies — and finish the original
aggregates.  With range partitioning, shard order is key order, so the
fold visits values in exactly the sequence a single-node scan would
and float SUM/AVG come out bit-identical.

Every function here is *pure* (replint RS401 enforces this for
``merge_*`` names): fresh state in, merged value out, no argument
mutated and no process state touched.  Purity is what makes the merge
order the only thing that matters — the coordinator can gather replies
in any arrival order and still merge deterministically.
"""

from __future__ import annotations

from typing import Sequence

from ..engine.metrics import QueryMetrics

__all__ = [
    "merge_scalar_states",
    "merge_grouped_states",
    "merge_metrics",
    "finalize_scalar",
    "finalize_grouped",
]


def merge_scalar_states(aggregates: Sequence, shard_states: Sequence):
    """Fold each aggregate's per-shard partials in the given order.

    ``shard_states[s][i]`` is shard ``s``'s partial for aggregate
    ``i``; returns one merged (still unfinished) state per aggregate.
    """
    states = [agg.start() for agg in aggregates]
    merged = []
    for i, agg in enumerate(aggregates):
        state = states[i]
        for per_shard in shard_states:
            state = agg.merge(state, per_shard[i])
        merged.append(state)
    return merged


def merge_grouped_states(aggregates: Sequence, shard_groups: Sequence):
    """Fold grouped partials across shards.

    ``shard_groups[s]`` is shard ``s``'s ordered list of
    ``(group_value, [partial, ...])`` pairs.  Returns
    ``{group_value: [merged_state, ...]}`` — groups seen by several
    shards are folded in shard order, groups seen by one shard pass
    through.
    """
    groups: dict = {}
    for per_shard in shard_groups:
        for group, partials in per_shard:
            states = groups.get(group)
            if states is None:
                states = [agg.start() for agg in aggregates]
            groups[group] = [
                agg.merge(state, partial)
                for agg, state, partial in zip(aggregates, states,
                                               partials)]
    return groups


def merge_metrics(parts: Sequence[dict], label: str,
                  shards: int) -> QueryMetrics:
    """Combine per-shard :meth:`QueryMetrics.to_dict` payloads into
    the coordinator's view of the statement.

    Additive counters (rows, IO, UDF calls, modeled IO/CPU seconds)
    sum across shards; the modeled execution time and measured wall
    time take the slowest shard, because shards run concurrently.
    ``engine`` is reported as ``"sharded"`` and ``workers`` as the
    cluster's shard count.
    """
    merged = QueryMetrics(label=label, engine="sharded",
                          workers=shards)
    for part in parts:
        m = QueryMetrics.from_dict(part)
        merged.rows += m.rows
        merged.io_bytes += m.io_bytes
        merged.physical_reads += m.physical_reads
        merged.sequential_reads += m.sequential_reads
        merged.random_reads += m.random_reads
        merged.stream_calls += m.stream_calls
        merged.udf_calls += m.udf_calls
        merged.sim_io_seconds += m.sim_io_seconds
        merged.sim_io_seq_seconds += m.sim_io_seq_seconds
        merged.sim_io_random_seconds += m.sim_io_random_seconds
        merged.sim_cpu_core_seconds += m.sim_cpu_core_seconds
        merged.sim_exec_seconds = max(merged.sim_exec_seconds,
                                      m.sim_exec_seconds)
        merged.wall_seconds = max(merged.wall_seconds, m.wall_seconds)
        merged.cores = m.cores
    return merged


def finalize_scalar(aggregates: Sequence, states: Sequence,
                    rows: int) -> tuple:
    """Finish merged scalar states into the statement's value row."""
    return tuple(agg.finish(state, rows)
                 for agg, state in zip(aggregates, states))


def finalize_grouped(aggregates: Sequence, groups: dict,
                     rows: int) -> list[tuple]:
    """Finish merged grouped states into sorted result rows (same
    NULL-last group order as :meth:`Executor.run_grouped`)."""
    finished = [
        (group, *[agg.finish(state, rows)
                  for agg, state in zip(aggregates, states)])
        for group, states in groups.items()]
    finished.sort(key=lambda row: (row[0] is None, row[0]))
    return finished
