"""Coordinator-to-shard links and the user-facing cluster client.

:class:`ShardLink` is the coordinator's half of one shard connection —
a lazy blocking socket speaking the ordinary wire protocol, split into
``send`` and ``recv`` so the router can fan a request out to every
target shard *before* blocking on the first reply (shards execute
concurrently; replies are gathered in shard order for deterministic
merges).

:class:`ShardClient` is what applications connect to the *coordinator*
with.  The coordinator speaks the unchanged wire protocol, so this is
just :class:`~repro.server.client.ArrayClient` plus cluster-awareness
in the stats snapshot.
"""

from __future__ import annotations

import socket

from ..server import protocol
from ..server.client import ArrayClient

__all__ = ["ShardLink", "ShardClient"]


class ShardLink:
    """One lazily-(re)connected link from the coordinator to a shard.

    Not thread-safe by design: the router keeps one link per (worker
    thread, shard) pair, so the strict request/reply discipline of the
    wire protocol is preserved without locking.  After any send/recv
    failure the caller must :meth:`close` — the next use reconnects.
    """

    def __init__(self, shard_id: int, host: str, port: int,
                 connect_timeout: float = 5.0,
                 request_timeout: float | None = 30.0,
                 max_frame: int = protocol.MAX_FRAME_BYTES):
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_frame = max_frame
        self._sock: socket.socket | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def connect(self) -> None:
        """Connect and consume the hello frame (idempotent)."""
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.request_timeout)
            hello = protocol.read_frame_sock(sock, self.max_frame)
            if hello is None or hello[0].get("type") != "hello":
                raise protocol.ProtocolError(
                    f"shard {self.shard_id} did not say hello")
        except BaseException:
            sock.close()
            raise
        self._sock = sock

    def send(self, header: dict, blobs=()) -> None:
        """Ship one request frame (connecting first if needed)."""
        self.connect()
        protocol.write_frame_sock(self._sock, header, blobs,
                                  self.max_frame)

    def recv(self) -> tuple[dict, list[bytes]]:
        """Read one reply frame; the request timeout bounds the wait
        (``socket.timeout`` is an ``OSError`` — a shard that stops
        answering surfaces as a link failure, never a hang)."""
        if self._sock is None:
            raise protocol.ProtocolError(
                f"shard {self.shard_id} link is not connected")
        reply = protocol.read_frame_sock(self._sock, self.max_frame)
        if reply is None:
            raise protocol.ProtocolError(
                f"shard {self.shard_id} closed the connection")
        return reply

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class ShardClient(ArrayClient):
    """Client for a shard coordinator.

    The coordinator serves the unchanged wire protocol, so every
    :class:`~repro.server.client.ArrayClient` feature works as-is —
    queries, retry policies, ``query_array``.  The additions surface
    the cluster: :meth:`shard_count`, :meth:`replica_counts`,
    :meth:`failovers`, and the coordinator's stats frame carrying a
    ``"shards"`` section with the replica health gauges.
    """

    def shard_count(self) -> int:
        """Number of shards behind the coordinator (from stats)."""
        return int(self.stats().get("shards", {}).get("count", 0))

    def replica_counts(self) -> list[int]:
        """Replicas per shard (one entry per shard, shard order)."""
        counts = self.stats().get("shards", {}).get("replicas", [])
        return [int(count) for count in counts]

    def failovers(self) -> int:
        """Cumulative reads the coordinator replayed on a sibling
        replica after the first replica failed — the observable proof
        that a replica loss stayed client-invisible."""
        return int(self.stats().get("shards", {}).get("failovers", 0))
