"""Binary header codec for array blobs.

The paper (Section 3.5) stores arrays "as plain binary blobs decorated
with a very simple header": flags identifying the storage class and the
element type (so type mismatches are caught at runtime), the rank, the
total element count, and the dimension sizes.  Short arrays carry a fixed
24-byte header with up to six int16 dimensions; max arrays carry a
variable-length header with any number of int32 dimensions.  Element data
follows the header consecutively in column-major order.

On-disk layout (all little-endian):

Short header — exactly :data:`SHORT_HEADER_SIZE` (24) bytes::

    offset  size  field
    0       2     magic b"SA"
    2       1     flags  (STORAGE_SHORT)
    3       1     element type code (repro.core.dtypes)
    4       2     uint16 rank (1..6)
    6       4     uint32 total element count
    10      12    six int16 dimension sizes (unused slots zero)
    22      2     padding (zero)

Max header — ``16 + 4 * rank`` bytes::

    offset  size     field
    0       2        magic b"MA"
    2       1        flags  (STORAGE_MAX)
    3       1        element type code
    4       4        uint32 rank (>= 1)
    8       8        uint64 total element count
    16      4*rank   int32 dimension sizes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .dtypes import ArrayDType, dtype_by_code
from .errors import (
    HeaderError,
    ShapeError,
    ShortArrayLimitError,
    StorageClassError,
)

__all__ = [
    "STORAGE_SHORT",
    "STORAGE_MAX",
    "SHORT_HEADER_SIZE",
    "MAX_HEADER_BASE_SIZE",
    "SHORT_MAX_RANK",
    "SHORT_MAX_DIM",
    "SHORT_MAX_BLOB_BYTES",
    "ArrayHeader",
    "max_header_size",
    "encode_header",
    "decode_header",
    "peek_storage_class",
]

#: Storage-class flag values (stored in the flags byte).
STORAGE_SHORT = 0x01
STORAGE_MAX = 0x02

_SHORT_MAGIC = b"SA"
_MAX_MAGIC = b"MA"

SHORT_HEADER_SIZE = 24
MAX_HEADER_BASE_SIZE = 16

#: Short arrays have "the limit of only six indices and indices are
#: Int16" (paper Section 3.3).
SHORT_MAX_RANK = 6
SHORT_MAX_DIM = 2 ** 15 - 1

#: Total blob size limit for the short storage class.  Short arrays are
#: stored in ``VARBINARY(8000)`` columns so that they stay on the 8 kB
#: data pages of the server.
SHORT_MAX_BLOB_BYTES = 8000

_SHORT_STRUCT = struct.Struct("<2sBBHI6hxx")
_MAX_STRUCT = struct.Struct("<2sBBIQ")


@dataclass(frozen=True)
class ArrayHeader:
    """Decoded array header.

    Attributes:
        storage: :data:`STORAGE_SHORT` or :data:`STORAGE_MAX`.
        dtype: The element type.
        shape: Dimension sizes, length >= 1.
        data_offset: Byte offset of the first element in the blob.
    """

    storage: int
    dtype: ArrayDType
    shape: tuple[int, ...]
    data_offset: int

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def count(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def data_size(self) -> int:
        """Size in bytes of the element payload."""
        return self.count * self.dtype.itemsize

    @property
    def blob_size(self) -> int:
        """Total size in bytes of a well-formed blob with this header."""
        return self.data_offset + self.data_size

    @property
    def is_short(self) -> bool:
        return self.storage == STORAGE_SHORT


def _validate_shape(shape: tuple[int, ...]) -> None:
    if len(shape) < 1:
        raise ShapeError("arrays must have at least one dimension")
    for s in shape:
        if not isinstance(s, int) or isinstance(s, bool):
            raise ShapeError(f"dimension sizes must be integers, got {s!r}")
        if s < 0:
            raise ShapeError(f"dimension sizes must be non-negative, got {s}")


def max_header_size(rank: int) -> int:
    """Header size in bytes for a max array of the given rank."""
    return MAX_HEADER_BASE_SIZE + 4 * rank


def check_short_limits(dtype: ArrayDType, shape: tuple[int, ...]) -> None:
    """Raise :class:`ShortArrayLimitError` if the array cannot be short.

    Enforces the paper's short-array constraints: rank <= 6, int16
    dimension sizes, and a total blob size that fits ``VARBINARY(8000)``.
    """
    if len(shape) > SHORT_MAX_RANK:
        raise ShortArrayLimitError(
            f"short arrays support at most {SHORT_MAX_RANK} dimensions, "
            f"got {len(shape)}")
    for s in shape:
        if s > SHORT_MAX_DIM:
            raise ShortArrayLimitError(
                f"short array dimension size {s} exceeds Int16 range")
    count = 1
    for s in shape:
        count *= s
    blob = SHORT_HEADER_SIZE + count * dtype.itemsize
    if blob > SHORT_MAX_BLOB_BYTES:
        raise ShortArrayLimitError(
            f"short array blob would be {blob} bytes; the on-page limit "
            f"is {SHORT_MAX_BLOB_BYTES}")


def encode_header(storage: int, dtype: ArrayDType,
                  shape: tuple[int, ...]) -> bytes:
    """Encode a header for an array of the given storage class and shape.

    Raises:
        StorageClassError: for an unknown storage class.
        ShapeError: for an invalid shape.
        ShortArrayLimitError: if ``storage`` is short but the array
            exceeds the short-array limits.
    """
    shape = tuple(int(s) for s in shape)
    _validate_shape(shape)
    count = 1
    for s in shape:
        count *= s
    if storage == STORAGE_SHORT:
        check_short_limits(dtype, shape)
        dims = list(shape) + [0] * (SHORT_MAX_RANK - len(shape))
        return _SHORT_STRUCT.pack(
            _SHORT_MAGIC, STORAGE_SHORT, dtype.code, len(shape), count, *dims)
    if storage == STORAGE_MAX:
        if count > 2 ** 63:
            raise ShapeError(f"element count {count} exceeds uint64 range")
        for s in shape:
            if s > 2 ** 31 - 1:
                raise ShapeError(
                    f"max array dimension size {s} exceeds Int32 range")
        head = _MAX_STRUCT.pack(
            _MAX_MAGIC, STORAGE_MAX, dtype.code, len(shape), count)
        dims = struct.pack(f"<{len(shape)}i", *shape)
        return head + dims
    raise StorageClassError(f"unknown storage class {storage!r}")


def peek_storage_class(blob: bytes) -> int:
    """Return the storage class of a blob without fully decoding it."""
    if len(blob) < 4:
        raise HeaderError(f"blob of {len(blob)} bytes is too small to be "
                          "an array")
    magic = bytes(blob[:2])
    if magic == _SHORT_MAGIC:
        return STORAGE_SHORT
    if magic == _MAX_MAGIC:
        return STORAGE_MAX
    raise HeaderError(f"bad array magic {magic!r}")


def decode_header(blob) -> ArrayHeader:
    """Decode and validate the header at the start of ``blob``.

    ``blob`` may be ``bytes``, ``bytearray`` or ``memoryview``.  Only the
    header region is inspected, but the declared payload size is checked
    against ``len(blob)`` so truncated blobs are rejected.

    Raises:
        HeaderError: for malformed, truncated, or inconsistent headers.
    """
    storage = peek_storage_class(blob)
    if storage == STORAGE_SHORT:
        if len(blob) < SHORT_HEADER_SIZE:
            raise HeaderError("truncated short array header")
        (_magic, flags, code, rank, count, *dims) = _SHORT_STRUCT.unpack(
            bytes(blob[:SHORT_HEADER_SIZE]))
        if flags != STORAGE_SHORT:
            raise HeaderError(f"short magic with flags 0x{flags:02x}")
        if not 1 <= rank <= SHORT_MAX_RANK:
            raise HeaderError(f"short array rank {rank} out of range")
        shape = tuple(dims[:rank])
        if any(s < 0 for s in shape):
            raise HeaderError(f"negative dimension in {shape}")
        if any(d != 0 for d in dims[rank:]):
            raise HeaderError("nonzero padding in unused dimension slots")
        data_offset = SHORT_HEADER_SIZE
    else:
        if len(blob) < MAX_HEADER_BASE_SIZE:
            raise HeaderError("truncated max array header")
        (_magic, flags, code, rank, count) = _MAX_STRUCT.unpack(
            bytes(blob[:MAX_HEADER_BASE_SIZE]))
        if flags != STORAGE_MAX:
            raise HeaderError(f"max magic with flags 0x{flags:02x}")
        if rank < 1:
            raise HeaderError(f"max array rank {rank} out of range")
        data_offset = max_header_size(rank)
        if len(blob) < data_offset:
            raise HeaderError("truncated max array dimension list")
        shape = struct.unpack(
            f"<{rank}i", bytes(blob[MAX_HEADER_BASE_SIZE:data_offset]))
        if any(s < 0 for s in shape):
            raise HeaderError(f"negative dimension in {shape}")

    dtype = dtype_by_code(code)
    expected = 1
    for s in shape:
        expected *= s
    if count != expected:
        raise HeaderError(
            f"element count {count} does not match shape {shape} "
            f"(product {expected})")
    if len(blob) < data_offset + count * dtype.itemsize:
        raise HeaderError(
            f"blob of {len(blob)} bytes is shorter than the "
            f"{data_offset + count * dtype.itemsize} bytes its header "
            "declares")
    return ArrayHeader(storage=storage, dtype=dtype, shape=shape,
                       data_offset=data_offset)
