"""Element-type registry for SQL arrays.

The library supports the numeric types the paper lists in Section 3.4:
signed integers of 1/2/4/8 bytes, single and double precision floats, and
single and double precision complex numbers.  Fixed-precision (decimal)
numbers are deliberately not supported, "as the main application of our
library is for scientific data".

Each supported type is described by an :class:`ArrayDType` record which
ties together

* the one-byte *type code* written into every blob header,
* the T-SQL-ish name used to build function schema names
  (``FloatArray``, ``IntArray``, ...),
* the SQL Server base-type name the paper refers to (``bigint``,
  ``real``, ...), and
* the numpy dtype used for in-memory manipulation.

The registry is the single source of truth: the T-SQL namespaces in
:mod:`repro.tsql.namespaces` and the SQLite bindings in
:mod:`repro.sqlbind.registry` are generated from it, mirroring how the
paper instantiates one C++/CLI template specialization per base type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import TypeMismatchError

__all__ = [
    "ArrayDType",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "COMPLEX64",
    "COMPLEX128",
    "ALL_DTYPES",
    "dtype_by_code",
    "dtype_by_name",
    "dtype_for_numpy",
]


@dataclass(frozen=True)
class ArrayDType:
    """Description of one supported element type.

    Attributes:
        code: One-byte identifier stored in blob headers.
        name: Canonical lower-case name (``"float64"``).
        schema_name: Prefix of the T-SQL schema the paper uses for this
            type's functions (``"FloatArray"`` for ``float64`` — the paper
            calls double precision ``float``, following T-SQL).
        sql_name: The SQL Server base type (``"float"``, ``"bigint"``...).
        itemsize: Bytes per element.
        numpy_dtype: Equivalent numpy dtype (little-endian, matching the
            on-disk byte order of the blob format).
        is_complex: Whether the element is a complex number.
        is_integer: Whether the element is a (signed) integer.
    """

    code: int
    name: str
    schema_name: str
    sql_name: str
    itemsize: int
    numpy_dtype: np.dtype
    is_complex: bool = False
    is_integer: bool = False

    def __str__(self) -> str:
        return self.name

    @property
    def is_float(self) -> bool:
        """True for real floating types (not integer, not complex)."""
        return not self.is_complex and not self.is_integer


def _dt(code, name, schema_name, sql_name, np_name, *, is_complex=False,
        is_integer=False):
    numpy_dtype = np.dtype(np_name).newbyteorder("<")
    return ArrayDType(
        code=code,
        name=name,
        schema_name=schema_name,
        sql_name=sql_name,
        itemsize=numpy_dtype.itemsize,
        numpy_dtype=numpy_dtype,
        is_complex=is_complex,
        is_integer=is_integer,
    )


#: The supported element types (paper Section 3.4).  Codes are stable and
#: part of the on-disk format; never renumber them.
INT8 = _dt(0x01, "int8", "TinyIntArray", "tinyint", "i1", is_integer=True)
INT16 = _dt(0x02, "int16", "SmallIntArray", "smallint", "i2", is_integer=True)
INT32 = _dt(0x03, "int32", "IntArray", "int", "i4", is_integer=True)
INT64 = _dt(0x04, "int64", "BigIntArray", "bigint", "i8", is_integer=True)
FLOAT32 = _dt(0x10, "float32", "RealArray", "real", "f4")
FLOAT64 = _dt(0x11, "float64", "FloatArray", "float", "f8")
COMPLEX64 = _dt(0x20, "complex64", "ComplexRealArray", "complexreal", "c8",
                is_complex=True)
COMPLEX128 = _dt(0x21, "complex128", "ComplexArray", "complex", "c16",
                 is_complex=True)

ALL_DTYPES = (
    INT8, INT16, INT32, INT64, FLOAT32, FLOAT64, COMPLEX64, COMPLEX128,
)

_BY_CODE = {dt.code: dt for dt in ALL_DTYPES}
_BY_NAME = {dt.name: dt for dt in ALL_DTYPES}
# Accept a few aliases users will reach for.
_BY_NAME.update({
    "tinyint": INT8,
    "smallint": INT16,
    "int": INT32,
    "bigint": INT64,
    "real": FLOAT32,
    "float": FLOAT64,
    "double": FLOAT64,
    "complexreal": COMPLEX64,
    "complex": COMPLEX128,
})


def dtype_by_code(code: int) -> ArrayDType:
    """Look up a dtype by its header type code.

    Raises:
        TypeMismatchError: if the code is not a registered element type.
    """
    try:
        return _BY_CODE[code]
    except KeyError:
        raise TypeMismatchError(f"unknown array element type code 0x{code:02x}")


def dtype_by_name(name: str) -> ArrayDType:
    """Look up a dtype by canonical name or SQL alias (case-insensitive)."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise TypeMismatchError(f"unknown array element type {name!r}")


def dtype_for_numpy(np_dtype) -> ArrayDType:
    """Map a numpy dtype to the corresponding registered element type.

    Byte order is ignored: big-endian inputs map to the same element type
    and are byte-swapped on serialization.

    Raises:
        TypeMismatchError: for unsupported kinds (bool, unsigned,
            strings, float16, ...).
    """
    np_dtype = np.dtype(np_dtype)
    for dt in ALL_DTYPES:
        if (np_dtype.kind, np_dtype.itemsize) == (
                dt.numpy_dtype.kind, dt.numpy_dtype.itemsize):
            return dt
    raise TypeMismatchError(
        f"numpy dtype {np_dtype!r} has no corresponding SQL array type")
