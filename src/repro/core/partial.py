"""Partial (byte-range) subarray reads against streamed blobs.

Max arrays live out-of-page behind SQL Server's binary stream wrapper,
"which has one important benefit: it supports reading only parts of the
binary data if the whole array is not required.  The latter can
significantly speed up certain array subsetting operations."
(paper Section 3.3.)

This module turns a contiguous (hyper-rectangular) subarray request into
the minimal set of contiguous byte runs in the column-major payload and
reads only those runs through a :class:`BlobStream`.  The turbulence use
case (Section 2.1) is the motivating workload: an 8-point interpolation
needs an 8x8x8 neighbourhood, not the whole multi-megabyte cube.
"""

from __future__ import annotations

from typing import Iterator, Protocol, Sequence

import numpy as np

from .errors import BoundsError, ShapeError
from .header import ArrayHeader
from .sqlarray import SqlArray

__all__ = [
    "BlobStream",
    "BytesBlobStream",
    "iter_byte_runs",
    "read_header",
    "read_subarray",
    "read_window_blob",
    "read_item",
]


class BlobStream(Protocol):
    """Random-access read interface over a stored blob.

    Implementations exist over in-memory bytes (:class:`BytesBlobStream`),
    over the storage engine's out-of-page blob B-trees
    (:class:`repro.engine.blob.BlobTreeStream`), and over SQLite
    incremental blob handles (:mod:`repro.sqlbind.connection`).
    """

    def read_at(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``offset``."""
        ...

    def length(self) -> int:
        """Total blob length in bytes."""
        ...


class BytesBlobStream:
    """A :class:`BlobStream` over an in-memory byte string that counts
    how many bytes and how many read calls were issued."""

    def __init__(self, blob: bytes):
        self._blob = bytes(blob)
        self.bytes_read = 0
        self.read_calls = 0

    def read_at(self, offset: int, size: int) -> bytes:
        if offset < 0 or offset + size > len(self._blob):
            raise BoundsError(
                f"read [{offset}, {offset + size}) beyond blob of "
                f"{len(self._blob)} bytes")
        self.bytes_read += size
        self.read_calls += 1
        return self._blob[offset:offset + size]

    def length(self) -> int:
        return len(self._blob)


def _validate_window(shape: tuple[int, ...], offset: Sequence[int],
                     size: Sequence[int]) -> tuple[tuple[int, ...],
                                                   tuple[int, ...]]:
    offset = tuple(int(o) for o in offset)
    size = tuple(int(s) for s in size)
    if len(offset) != len(shape) or len(size) != len(shape):
        raise ShapeError(
            f"offset/size must each have {len(shape)} entries")
    for axis, (o, s, n) in enumerate(zip(offset, size, shape)):
        if s < 1:
            raise ShapeError(
                f"window size must be >= 1 on dimension {axis}, got {s}")
        if o < 0 or o + s > n:
            raise BoundsError(
                f"window [{o}, {o + s}) out of range [0, {n}) on "
                f"dimension {axis}")
    return offset, size


def iter_byte_runs(header: ArrayHeader, offset: Sequence[int],
                   size: Sequence[int]) -> Iterator[tuple[int, int]]:
    """Yield ``(byte_offset, byte_length)`` runs covering a window.

    Runs are yielded in ascending offset order and are maximal: adjacent
    window elements that are contiguous in the column-major payload are
    merged into a single run.  When the window spans whole leading
    dimensions the merge extends across those dimensions, so reading a
    full array yields exactly one run.
    """
    shape = header.shape
    offset, size = _validate_window(shape, offset, size)
    itemsize = header.dtype.itemsize

    # Longest prefix of dimensions fully covered by the window: runs are
    # contiguous across all of them plus one partial dimension.
    merge = 0
    while (merge < len(shape) and offset[merge] == 0
           and size[merge] == shape[merge]):
        merge += 1

    if merge == len(shape):
        yield header.data_offset, header.count * itemsize
        return

    # Elements per run: full leading dims times the window extent on the
    # first partial dimension.
    run_elems = size[merge]
    stride = 1
    for n in shape[:merge]:
        run_elems *= n
        stride *= n
    # Linear element offset of the window origin.
    strides = []
    acc = 1
    for n in shape:
        strides.append(acc)
        acc *= n
    base = sum(o * st for o, st in zip(offset, strides))

    # Iterate the outer (non-merged, beyond the partial one) dimensions.
    outer_axes = range(merge + 1, len(shape))
    outer_sizes = [size[a] for a in outer_axes]
    outer_strides = [strides[a] for a in outer_axes]
    counters = [0] * len(outer_sizes)
    while True:
        elem = base + sum(c * st for c, st in zip(counters, outer_strides))
        yield (header.data_offset + elem * itemsize, run_elems * itemsize)
        for i in range(len(counters)):
            counters[i] += 1
            if counters[i] < outer_sizes[i]:
                break
            counters[i] = 0
        else:
            return


def read_header(stream: BlobStream) -> ArrayHeader:
    """Decode the array header from a stream without reading the payload.

    Reads the fixed prefix first, then (for max arrays) the rest of the
    dimension list — at most two small reads.  The payload length the
    header declares is validated against ``stream.length()``.
    """
    import struct

    from .header import (SHORT_HEADER_SIZE, STORAGE_MAX, HeaderError,
                         max_header_size, peek_storage_class)

    prefix = stream.read_at(0, min(SHORT_HEADER_SIZE, stream.length()))
    storage = peek_storage_class(prefix)
    if storage == STORAGE_MAX:
        rank = struct.unpack_from("<I", prefix, 4)[0]
        need = max_header_size(rank)
        if need > len(prefix):
            prefix += stream.read_at(len(prefix), need - len(prefix))
        head_blob = prefix[:need]
    else:
        head_blob = prefix
    header = _parse_header_fields(head_blob)
    if stream.length() < header.blob_size:
        raise HeaderError(
            f"stream of {stream.length()} bytes is shorter than the "
            f"{header.blob_size} bytes the header declares")
    return header


def _parse_header_fields(head_blob: bytes) -> ArrayHeader:
    """Parse header fields without the full-blob length check."""
    import struct

    from .dtypes import dtype_by_code
    from .header import (MAX_HEADER_BASE_SIZE, SHORT_HEADER_SIZE,
                         SHORT_MAX_RANK, STORAGE_MAX, STORAGE_SHORT,
                         HeaderError, max_header_size, peek_storage_class)

    storage = peek_storage_class(head_blob)
    if storage == STORAGE_SHORT:
        if len(head_blob) < SHORT_HEADER_SIZE:
            raise HeaderError("truncated short array header")
        (_m, flags, code, rank, count, *dims) = struct.unpack(
            "<2sBBHI6hxx", head_blob[:SHORT_HEADER_SIZE])
        if flags != STORAGE_SHORT or not 1 <= rank <= SHORT_MAX_RANK:
            raise HeaderError("malformed short array header")
        shape = tuple(dims[:rank])
        data_offset = SHORT_HEADER_SIZE
    else:
        if len(head_blob) < MAX_HEADER_BASE_SIZE:
            raise HeaderError("truncated max array header")
        (_m, flags, code, rank, count) = struct.unpack(
            "<2sBBIQ", head_blob[:MAX_HEADER_BASE_SIZE])
        data_offset = max_header_size(rank)
        if flags != STORAGE_MAX or rank < 1 or len(head_blob) < data_offset:
            raise HeaderError("malformed max array header")
        shape = struct.unpack(
            f"<{rank}i", head_blob[MAX_HEADER_BASE_SIZE:data_offset])
    if any(s < 0 for s in shape):
        raise HeaderError(f"negative dimension in {shape}")
    expected = 1
    for s in shape:
        expected *= s
    if count != expected:
        raise HeaderError(
            f"element count {count} does not match shape {shape}")
    return ArrayHeader(storage=storage, dtype=dtype_by_code(code),
                       shape=shape, data_offset=data_offset)


def read_subarray(stream: BlobStream, offset: Sequence[int],
                  size: Sequence[int], collapse: bool = False) -> SqlArray:
    """Read a contiguous window from a streamed array blob, touching only
    the byte ranges the window covers.

    Semantics match :func:`repro.core.ops.subarray`; the difference is
    purely in IO: only ``prod(size)`` elements plus the header travel
    through the stream, not the whole blob.
    """
    header = read_header(stream)
    size = tuple(int(s) for s in size)
    chunks = [stream.read_at(off, ln)
              for off, ln in iter_byte_runs(header, offset, size)]
    payload = b"".join(chunks)
    flat = np.frombuffer(payload, dtype=header.dtype.numpy_dtype)
    window = flat.reshape(size, order="F")
    if collapse:
        kept = tuple(s for s in size if s != 1)
        window = window.reshape(kept if kept else (1,), order="F")
    return SqlArray.from_numpy(window, header.dtype)


def read_window_blob(stream: BlobStream, offset: Sequence[int],
                     size: Sequence[int],
                     collapse: bool = False) -> bytes:
    """Read a window from a streamed array blob and re-encode it as a
    standalone array blob.

    This is the server side of a windowed ``bquery``: only the bytes
    the window covers travel through ``stream``, and the result is a
    self-describing blob the client can hand straight to
    :meth:`SqlArray.from_blob` — bit-identical to materializing the
    whole blob and running :func:`repro.core.ops.subarray` on it.
    """
    return read_subarray(stream, offset, size, collapse=collapse) \
        .to_blob()


def read_item(stream: BlobStream, *indices: int):
    """Read a single element through the stream (one header read plus one
    element-sized payload read)."""
    from .ops import linear_offset

    header = read_header(stream)
    off = linear_offset(header.shape, [int(i) for i in indices])
    start = header.data_offset + off * header.dtype.itemsize
    payload = stream.read_at(start, header.dtype.itemsize)
    return np.frombuffer(payload, dtype=header.dtype.numpy_dtype)[0].item()
