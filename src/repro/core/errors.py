"""Exception hierarchy for the array library.

The paper (Section 3.5) stores type and storage-class flags in every blob
header specifically so that "type mismatches at runtime when the blobs are
passed to the wrong functions" can be detected.  This module defines the
errors raised when those checks — and the other argument checks the T-SQL
surface performs — fail.
"""

from __future__ import annotations


class ArrayError(Exception):
    """Base class for every error raised by the array library."""


class HeaderError(ArrayError):
    """A blob does not start with a well-formed array header."""


class TypeMismatchError(ArrayError):
    """A blob was passed to a function expecting a different element type.

    This is the runtime check enabled by the dtype code stored in the
    header (paper Section 3.5).
    """


class StorageClassError(ArrayError):
    """A short-array function received a max array, or vice versa.

    Short (on-page) and max (out-of-page) arrays live in different
    function schemas in the paper (``FloatArray`` vs ``FloatArrayMax``)
    and are not interchangeable without an explicit conversion.
    """


class ShapeError(ArrayError):
    """Dimensions are inconsistent: wrong rank, negative sizes, or a
    reshape/subarray request that does not fit the source array."""


class BoundsError(ArrayError, IndexError):
    """An item index or subarray window falls outside the array."""


class ShortArrayLimitError(ArrayError):
    """A short array would exceed its storage-class limits.

    Short arrays are restricted to rank <= 6, dimension sizes that fit a
    signed 16-bit integer, and a payload small enough to stay on an 8 kB
    data page (paper Sections 3.3 and 3.5).
    """


class AggregateError(ArrayError):
    """An array aggregate received incompatible inputs (e.g. arrays of
    different shapes or dtypes, or an empty input set)."""
