"""The :class:`SqlArray` value class.

A :class:`SqlArray` is the in-memory handle for one array blob: it pairs a
decoded header with the raw element bytes and provides conversions to and
from numpy (always column-major, the FORTRAN/LAPACK convention the paper
adopts in Section 3.5 so that "interfacing with LAPACK is exceptionally
easy").

Everything in this module is value-oriented: arrays are immutable once
constructed, and operations that "modify" an array (see
:mod:`repro.core.ops`) return a new blob, exactly like the T-SQL functions
in the paper return new ``VARBINARY`` values.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .dtypes import ArrayDType, dtype_by_name, dtype_for_numpy
from .errors import ShapeError, StorageClassError, TypeMismatchError
from .header import (
    SHORT_MAX_BLOB_BYTES,
    SHORT_MAX_DIM,
    SHORT_MAX_RANK,
    SHORT_HEADER_SIZE,
    STORAGE_MAX,
    STORAGE_SHORT,
    ArrayHeader,
    decode_header,
    encode_header,
)

__all__ = ["SqlArray", "preferred_storage"]


def preferred_storage(dtype: ArrayDType, shape: Sequence[int]) -> int:
    """Pick the storage class the library would choose automatically.

    Arrays that satisfy every short-array limit (rank <= 6, int16 dims,
    blob <= 8000 bytes) are stored short (on-page); everything else is
    max (out-of-page).  This mirrors the paper's rationale: deliver the
    best performance for arrays smaller than a data page.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) > SHORT_MAX_RANK or any(s > SHORT_MAX_DIM for s in shape):
        return STORAGE_MAX
    count = 1
    for s in shape:
        count *= s
    if SHORT_HEADER_SIZE + count * dtype.itemsize > SHORT_MAX_BLOB_BYTES:
        return STORAGE_MAX
    return STORAGE_SHORT


class SqlArray:
    """An immutable multidimensional array value backed by a binary blob.

    Construct with :meth:`from_numpy`, :meth:`from_blob`,
    :meth:`from_values`, :meth:`zeros` or :meth:`filled`; convert back
    with :meth:`to_numpy` or :meth:`to_blob`.
    """

    __slots__ = ("_header", "_blob")

    def __init__(self, header: ArrayHeader, blob: bytes):
        self._header = header
        self._blob = blob

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_blob(cls, blob) -> "SqlArray":
        """Wrap an existing binary blob, validating its header."""
        blob = bytes(blob)
        return cls(decode_header(blob), blob)

    @classmethod
    def from_numpy(cls, values, dtype: ArrayDType | str | None = None,
                   storage: int | None = None) -> "SqlArray":
        """Build an array from any numpy-convertible value.

        Args:
            values: Array-like.  Multidimensional input is serialized in
                column-major order regardless of its memory layout.
            dtype: Target element type; inferred from ``values`` when
                omitted.
            storage: :data:`STORAGE_SHORT`, :data:`STORAGE_MAX`, or
                ``None`` to choose automatically via
                :func:`preferred_storage`.
        """
        arr = np.asarray(values)
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if dtype is None:
            if arr.dtype == np.dtype(object):
                raise TypeMismatchError(
                    "cannot infer an element type from object arrays")
            adt = dtype_for_numpy(
                arr.dtype if arr.dtype.kind in "ifc" else np.dtype("f8"))
        elif isinstance(dtype, str):
            adt = dtype_by_name(dtype)
        else:
            adt = dtype
        arr = np.asfortranarray(arr.astype(adt.numpy_dtype, copy=False))
        if storage is None:
            storage = preferred_storage(adt, arr.shape)
        blob = encode_header(storage, adt, arr.shape) + arr.tobytes(order="F")
        return cls(decode_header(blob), blob)

    @classmethod
    def from_values(cls, values: Iterable, dtype: ArrayDType | str,
                    storage: int | None = None) -> "SqlArray":
        """Build a one-dimensional array (a vector) from scalar values.

        This is the Python equivalent of the paper's ``Vector_N``
        functions.
        """
        adt = dtype_by_name(dtype) if isinstance(dtype, str) else dtype
        arr = np.array(list(values), dtype=adt.numpy_dtype)
        if arr.ndim != 1:
            raise ShapeError("from_values expects a flat sequence of scalars")
        return cls.from_numpy(arr, adt, storage)

    @classmethod
    def zeros(cls, shape: Sequence[int], dtype: ArrayDType | str,
              storage: int | None = None) -> "SqlArray":
        """Create a zero-filled array of the given shape.

        The paper's requirements list asks for a "simple way to create an
        array of a given size"; this is it.
        """
        adt = dtype_by_name(dtype) if isinstance(dtype, str) else dtype
        return cls.from_numpy(
            np.zeros(tuple(int(s) for s in shape), dtype=adt.numpy_dtype),
            adt, storage)

    @classmethod
    def filled(cls, shape: Sequence[int], value,
               dtype: ArrayDType | str, storage: int | None = None
               ) -> "SqlArray":
        """Create an array of the given shape filled with ``value``."""
        adt = dtype_by_name(dtype) if isinstance(dtype, str) else dtype
        return cls.from_numpy(
            np.full(tuple(int(s) for s in shape), value,
                    dtype=adt.numpy_dtype),
            adt, storage)

    # -- accessors ------------------------------------------------------

    @property
    def header(self) -> ArrayHeader:
        return self._header

    @property
    def dtype(self) -> ArrayDType:
        return self._header.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self._header.shape

    @property
    def rank(self) -> int:
        return self._header.rank

    @property
    def count(self) -> int:
        """Total number of elements."""
        return self._header.count

    @property
    def storage(self) -> int:
        return self._header.storage

    @property
    def is_short(self) -> bool:
        return self._header.is_short

    @property
    def nbytes(self) -> int:
        """Total blob size, header included."""
        return len(self._blob)

    def to_blob(self) -> bytes:
        """Return the serialized form (header + column-major elements)."""
        return self._blob

    def data_bytes(self) -> bytes:
        """Return the raw element payload without the header.

        This is the paper's ``Raw`` function.
        """
        return self._blob[self._header.data_offset:]

    def to_numpy(self) -> np.ndarray:
        """Decode to a numpy array (column-major / F-contiguous).

        The returned array does not alias the blob and is writable.
        """
        flat = np.frombuffer(
            self._blob, dtype=self.dtype.numpy_dtype,
            count=self.count, offset=self._header.data_offset)
        return flat.reshape(self.shape, order="F").copy(order="F")

    # -- dunder plumbing -------------------------------------------------

    def __len__(self) -> int:
        """Length of the first dimension."""
        return self.shape[0]

    def __eq__(self, other) -> bool:
        if not isinstance(other, SqlArray):
            return NotImplemented
        return self._blob == other._blob

    def __hash__(self) -> int:
        return hash(self._blob)

    def __repr__(self) -> str:
        storage = "short" if self.is_short else "max"
        return (f"SqlArray({self.dtype.name}, shape={self.shape}, "
                f"{storage}, {self.nbytes} bytes)")

    def require_dtype(self, dtype: ArrayDType) -> None:
        """Raise :class:`TypeMismatchError` unless this array has the
        given element type — the runtime check the header flags enable."""
        if self.dtype.code != dtype.code:
            raise TypeMismatchError(
                f"expected a {dtype.name} array, got {self.dtype.name}")

    def require_storage(self, storage: int) -> None:
        """Raise :class:`StorageClassError` unless this array has the
        given storage class."""
        if self.storage != storage:
            want = "short" if storage == STORAGE_SHORT else "max"
            got = "short" if self.is_short else "max"
            raise StorageClassError(f"expected a {want} array, got {got}")
