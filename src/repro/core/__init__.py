"""Core array library: blob format, the :class:`SqlArray` value class,
and the operations backing the paper's T-SQL surface.

Quick tour::

    from repro.core import SqlArray, ops

    a = SqlArray.from_values([1.0, 2.0, 3.0, 4.0, 5.0], "float64")
    ops.item(a, 3)                     # -> 4.0
    b = ops.subarray(a, [1], [3])      # elements 1..3
    m = ops.reshape(SqlArray.from_values(range(6), "int32"), (2, 3))
"""

from . import aggregates, ops, partial
from .dtypes import (
    ALL_DTYPES,
    COMPLEX64,
    COMPLEX128,
    FLOAT32,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    ArrayDType,
    dtype_by_code,
    dtype_by_name,
    dtype_for_numpy,
)
from .errors import (
    AggregateError,
    ArrayError,
    BoundsError,
    HeaderError,
    ShapeError,
    ShortArrayLimitError,
    StorageClassError,
    TypeMismatchError,
)
from .header import (
    SHORT_HEADER_SIZE,
    SHORT_MAX_BLOB_BYTES,
    SHORT_MAX_DIM,
    SHORT_MAX_RANK,
    STORAGE_MAX,
    STORAGE_SHORT,
    ArrayHeader,
    decode_header,
    encode_header,
    max_header_size,
    peek_storage_class,
)
from .complextype import SqlComplex
from .sqlarray import SqlArray, preferred_storage

__all__ = [
    "SqlArray",
    "SqlComplex",
    "preferred_storage",
    "ops",
    "aggregates",
    "partial",
    "ArrayDType",
    "ALL_DTYPES",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "COMPLEX64",
    "COMPLEX128",
    "dtype_by_code",
    "dtype_by_name",
    "dtype_for_numpy",
    "ArrayError",
    "HeaderError",
    "TypeMismatchError",
    "StorageClassError",
    "ShapeError",
    "BoundsError",
    "ShortArrayLimitError",
    "AggregateError",
    "ArrayHeader",
    "decode_header",
    "encode_header",
    "peek_storage_class",
    "max_header_size",
    "STORAGE_SHORT",
    "STORAGE_MAX",
    "SHORT_HEADER_SIZE",
    "SHORT_MAX_BLOB_BYTES",
    "SHORT_MAX_DIM",
    "SHORT_MAX_RANK",
]
