"""Array operations with the semantics of the paper's T-SQL functions.

Every function here takes and returns :class:`~repro.core.sqlarray.SqlArray`
values (or plain scalars), mirroring one of the T-SQL entry points from
Section 5.1 of the paper:

================  =====================================================
Paper function    This module
================  =====================================================
``Item_k``        :func:`item`
``UpdateItem_k``  :func:`update_item`
``Subarray``      :func:`subarray` (contiguous windows only, with the
                  optional collapse of length-1 dimensions)
``Reshape``       :func:`reshape` (size must not change)
``Cast``          :func:`cast_raw` (prefix raw bytes with a header)
``Raw``           :func:`raw` (strip the header)
conversions       :func:`convert` (element type), :func:`to_short` /
                  :func:`to_max` (storage class)
``ToTable``       :func:`to_table`
string conv.      :func:`to_string` / :func:`from_string`
================  =====================================================

Plus the axis reductions and element-wise arithmetic the requirements
list in Section 1 calls for ("perform various aggregate operations over
arrays", "computing aggregates over certain dimensions").

Indices are zero-based and given in array order: ``item(a, i, j)`` reads
element ``(i, j)`` of a two-dimensional array.  Because elements are laid
out column-major, the linear offset of ``(i0, i1, ..., ik)`` in an array
with shape ``(n0, n1, ..., nk)`` is ``i0 + n0*(i1 + n1*(i2 + ...))``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .dtypes import ArrayDType, dtype_by_name
from .errors import BoundsError, HeaderError, ShapeError
from .header import STORAGE_MAX, STORAGE_SHORT, encode_header
from .sqlarray import SqlArray

__all__ = [
    "linear_offset",
    "item",
    "update_item",
    "subarray",
    "reshape",
    "raw",
    "cast_raw",
    "convert",
    "to_short",
    "to_max",
    "to_table",
    "from_table",
    "to_string",
    "from_string",
    "concat",
    "fill_item_count",
    "elementwise",
    "add",
    "subtract",
    "multiply",
    "divide",
    "scale",
    "shift",
    "negate",
    "dot",
    "aggregate_all",
    "aggregate_axis",
]


def _check_index(shape: tuple[int, ...], indices: Sequence[int]) -> None:
    if len(indices) != len(shape):
        raise BoundsError(
            f"array has {len(shape)} dimensions but {len(indices)} "
            "indices were given")
    for axis, (i, n) in enumerate(zip(indices, shape)):
        if not 0 <= i < n:
            raise BoundsError(
                f"index {i} out of range [0, {n}) on dimension {axis}")


def linear_offset(shape: tuple[int, ...], indices: Sequence[int]) -> int:
    """Column-major linear offset of a multi-index.

    This is the same arithmetic the storage layer uses to compute byte
    ranges for partial reads (:mod:`repro.core.partial`).
    """
    _check_index(shape, indices)
    offset = 0
    stride = 1
    for i, n in zip(indices, shape):
        offset += i * stride
        stride *= n
    return offset


def item(array: SqlArray, *indices: int):
    """Read one element (the paper's ``Item_1`` .. ``Item_6``).

    Returns a Python scalar of the natural kind (int, float, complex).
    """
    off = linear_offset(array.shape, [int(i) for i in indices])
    start = array.header.data_offset + off * array.dtype.itemsize
    value = np.frombuffer(array.to_blob(), dtype=array.dtype.numpy_dtype,
                          count=1, offset=start)[0]
    return value.item()


def update_item(array: SqlArray, indices: Sequence[int], value) -> SqlArray:
    """Return a copy of ``array`` with one element replaced
    (the paper's ``UpdateItem_k``)."""
    off = linear_offset(array.shape, [int(i) for i in indices])
    start = array.header.data_offset + off * array.dtype.itemsize
    encoded = np.array([value], dtype=array.dtype.numpy_dtype).tobytes()
    blob = array.to_blob()
    patched = blob[:start] + encoded + blob[start + len(encoded):]
    return SqlArray.from_blob(patched)


def subarray(array: SqlArray, offset: Sequence[int], size: Sequence[int],
             collapse: bool = False) -> SqlArray:
    """Extract a contiguous window (the paper's ``Subarray``).

    Args:
        array: Source array.
        offset: Start index of the window on each dimension.
        size: Extent of the window on each dimension.
        collapse: When true, dimensions of length 1 in the result are
            dropped ("automatically converted to a lower dimensional
            array" — useful e.g. for retrieving matrix columns).  If all
            dimensions collapse, one dimension of length 1 is kept.

    Only contiguous (hyper-rectangular, stride-1) windows are supported,
    matching the paper.
    """
    offset = [int(o) for o in offset]
    size = [int(s) for s in size]
    if len(offset) != array.rank or len(size) != array.rank:
        raise ShapeError(
            f"offset/size must each have {array.rank} entries, got "
            f"{len(offset)}/{len(size)}")
    for axis, (o, s, n) in enumerate(zip(offset, size, array.shape)):
        if s < 1:
            raise ShapeError(f"subarray size must be >= 1 on dimension "
                             f"{axis}, got {s}")
        if o < 0 or o + s > n:
            raise BoundsError(
                f"window [{o}, {o + s}) out of range [0, {n}) on "
                f"dimension {axis}")
    data = array.to_numpy()
    window = data[tuple(slice(o, o + s) for o, s in zip(offset, size))]
    new_shape = tuple(size)
    if collapse:
        kept = tuple(s for s in new_shape if s != 1)
        new_shape = kept if kept else (1,)
        window = window.reshape(new_shape, order="F")
    return SqlArray.from_numpy(window, array.dtype)


def reshape(array: SqlArray, new_shape: Sequence[int]) -> SqlArray:
    """Recast the dimensions without reordering elements
    (the paper's ``Reshape``; "original and target sizes must not
    differ")."""
    new_shape = tuple(int(s) for s in new_shape)
    count = 1
    for s in new_shape:
        count *= s
    if count != array.count:
        raise ShapeError(
            f"reshape from {array.shape} ({array.count} elements) to "
            f"{new_shape} ({count} elements) changes the size")
    head = encode_header(
        _storage_for(array.dtype, new_shape, prefer=array.storage),
        array.dtype, new_shape)
    return SqlArray.from_blob(head + array.data_bytes())


def _storage_for(dtype: ArrayDType, shape: tuple[int, ...],
                 prefer: int) -> int:
    """Keep the preferred storage class if the shape still permits it."""
    if prefer == STORAGE_SHORT:
        try:
            from .header import check_short_limits
            check_short_limits(dtype, shape)
            return STORAGE_SHORT
        except Exception:
            return STORAGE_MAX
    return prefer


def raw(array: SqlArray) -> bytes:
    """Strip the header and return the elements as raw binary
    (the paper's ``Raw``)."""
    return array.data_bytes()


def cast_raw(blob: bytes, dtype: ArrayDType | str,
             shape: Sequence[int], storage: int | None = None) -> SqlArray:
    """Treat raw consecutive numbers as an array by prefixing a header
    (the paper's ``Cast``).

    Raises:
        HeaderError: if the byte count does not match the declared
            shape and element type.
    """
    adt = dtype_by_name(dtype) if isinstance(dtype, str) else dtype
    shape = tuple(int(s) for s in shape)
    count = 1
    for s in shape:
        count *= s
    if len(blob) != count * adt.itemsize:
        raise HeaderError(
            f"raw payload is {len(blob)} bytes but shape {shape} of "
            f"{adt.name} needs {count * adt.itemsize}")
    if storage is None:
        from .sqlarray import preferred_storage
        storage = preferred_storage(adt, shape)
    return SqlArray.from_blob(encode_header(storage, adt, shape) + bytes(blob))


def convert(array: SqlArray, dtype: ArrayDType | str) -> SqlArray:
    """Convert to a different element type (value-preserving cast).

    Conversion functions between base types "exist" per Section 5.1.
    Complex-to-real conversion keeps the real part, matching C casts.
    """
    adt = dtype_by_name(dtype) if isinstance(dtype, str) else dtype
    values = array.to_numpy()
    if array.dtype.is_complex and not adt.is_complex:
        values = values.real
    return SqlArray.from_numpy(values.astype(adt.numpy_dtype), adt)


def to_short(array: SqlArray) -> SqlArray:
    """Convert to the short (on-page) storage class.

    Raises:
        ShortArrayLimitError: if the array exceeds short limits.
    """
    if array.is_short:
        return array
    head = encode_header(STORAGE_SHORT, array.dtype, array.shape)
    return SqlArray.from_blob(head + array.data_bytes())


def to_max(array: SqlArray) -> SqlArray:
    """Convert to the max (out-of-page) storage class."""
    if not array.is_short:
        return array
    head = encode_header(STORAGE_MAX, array.dtype, array.shape)
    return SqlArray.from_blob(head + array.data_bytes())


def to_table(array: SqlArray) -> Iterator[tuple]:
    """Yield ``(i0, i1, ..., value)`` rows (the paper's ``ToTable`` /
    ``MatrixToTable`` table-valued functions).

    Rows are produced in column-major (storage) order.
    """
    data = array.to_numpy()
    for flat in range(array.count):
        idx = []
        rem = flat
        for n in array.shape:
            idx.append(rem % n if n else 0)
            rem //= n if n else 1
        yield tuple(idx) + (data[tuple(idx)].item(),)


def from_table(rows, shape: Sequence[int],
               dtype: ArrayDType | str) -> SqlArray:
    """Assemble an array from ``(i0, ..., value)`` rows.

    This is the reader-based table-to-array conversion the paper found
    preferable to the ``Concat`` aggregate (Section 4.2); see also
    :mod:`repro.core.aggregates` for both variants with cost accounting.
    Cells not covered by any row are zero; duplicate rows are an error.
    """
    adt = dtype_by_name(dtype) if isinstance(dtype, str) else dtype
    shape = tuple(int(s) for s in shape)
    out = np.zeros(shape, dtype=adt.numpy_dtype, order="F")
    seen = set()
    for row in rows:
        *idx, value = row
        idx = tuple(int(i) for i in idx)
        _check_index(shape, idx)
        if idx in seen:
            raise ShapeError(f"duplicate index {idx} in table input")
        seen.add(idx)
        out[idx] = value
    return SqlArray.from_numpy(out, adt)


def to_string(array: SqlArray) -> str:
    """Render as a string, e.g. ``float64[2,2]{1,2,3,4}`` with elements
    in column-major order ("arrays can also be converted to and from
    strings", Section 5.1)."""
    dims = ",".join(str(s) for s in array.shape)
    flat = array.to_numpy().reshape(-1, order="F")
    if array.dtype.is_complex:
        items = ",".join(
            f"{float(v.real)!r}{float(v.imag):+}j" for v in flat)
    elif array.dtype.is_integer:
        items = ",".join(str(int(v)) for v in flat)
    else:
        items = ",".join(repr(float(v)) for v in flat)
    return f"{array.dtype.name}[{dims}]{{{items}}}"


def from_string(text: str) -> SqlArray:
    """Parse the :func:`to_string` format back into an array."""
    text = text.strip()
    try:
        name, rest = text.split("[", 1)
        dims_text, rest = rest.split("]", 1)
        if not (rest.startswith("{") and rest.endswith("}")):
            raise ValueError
        body = rest[1:-1]
    except ValueError:
        raise HeaderError(f"malformed array literal {text!r}")
    adt = dtype_by_name(name)
    shape = tuple(int(s) for s in dims_text.split(","))
    if body.strip():
        parts = [p.strip() for p in body.split(",")]
    else:
        parts = []
    if adt.is_complex:
        values = [complex(p) for p in parts]
    elif adt.is_integer:
        values = [int(p) for p in parts]
    else:
        values = [float(p) for p in parts]
    count = 1
    for s in shape:
        count *= s
    if len(values) != count:
        raise ShapeError(
            f"literal has {len(values)} elements but shape {shape} "
            f"needs {count}")
    arr = np.array(values, dtype=adt.numpy_dtype).reshape(shape, order="F")
    return SqlArray.from_numpy(arr, adt)


def concat(arrays: Sequence[SqlArray], axis: int = 0) -> SqlArray:
    """Concatenate arrays along one existing axis.

    All inputs must share the element type and every dimension size
    except the concatenation axis.  The complement of ``Subarray``:
    windows cut from a larger array (e.g. neighbouring turbulence
    cubes) stitch back together exactly.
    """
    if not arrays:
        raise ShapeError("concat needs at least one array")
    first = arrays[0]
    if not 0 <= axis < first.rank:
        raise BoundsError(f"axis {axis} out of range for rank "
                          f"{first.rank}")
    for a in arrays[1:]:
        if a.dtype.code != first.dtype.code:
            raise ShapeError(
                f"concat over mixed element types "
                f"{first.dtype.name} and {a.dtype.name}")
        if a.rank != first.rank or any(
                s != t for i, (s, t) in enumerate(zip(a.shape,
                                                      first.shape))
                if i != axis):
            raise ShapeError(
                f"concat shapes {first.shape} and {a.shape} differ "
                f"off axis {axis}")
    out = np.concatenate([a.to_numpy() for a in arrays], axis=axis)
    return SqlArray.from_numpy(np.asfortranarray(out), first.dtype)


def fill_item_count(shape: Sequence[int]) -> int:
    """Element count of a shape (helper for the T-SQL ``Count`` UDF)."""
    count = 1
    for s in shape:
        count *= int(s)
    return count


# -- element-wise arithmetic -------------------------------------------


def elementwise(op, a: SqlArray, b: SqlArray) -> SqlArray:
    """Apply a binary numpy ufunc element-wise to two same-shape arrays.

    The operands may have different element types (the spectra use case
    multiplies double flux vectors by integer flag masks); the result
    takes numpy's promotion, clamped to a supported element type.
    """
    if a.shape != b.shape:
        raise ShapeError(
            f"element-wise operation on mismatched shapes {a.shape} "
            f"and {b.shape}")
    out = op(a.to_numpy(), b.to_numpy())
    return SqlArray.from_numpy(out)


def add(a: SqlArray, b: SqlArray) -> SqlArray:
    """Element-wise sum."""
    return elementwise(np.add, a, b)


def subtract(a: SqlArray, b: SqlArray) -> SqlArray:
    """Element-wise difference."""
    return elementwise(np.subtract, a, b)


def multiply(a: SqlArray, b: SqlArray) -> SqlArray:
    """Element-wise product."""
    return elementwise(np.multiply, a, b)


def divide(a: SqlArray, b: SqlArray) -> SqlArray:
    """Element-wise true division (always floating point)."""
    return elementwise(np.true_divide, a, b)


def scale(a: SqlArray, factor) -> SqlArray:
    """Multiply every element by a scalar (flux normalization path)."""
    return SqlArray.from_numpy(a.to_numpy() * factor)


def shift(a: SqlArray, offset) -> SqlArray:
    """Add a scalar to every element."""
    return SqlArray.from_numpy(a.to_numpy() + offset)


def negate(a: SqlArray) -> SqlArray:
    """Element-wise negation."""
    return SqlArray.from_numpy(-a.to_numpy(), a.dtype)


def dot(a: SqlArray, b: SqlArray):
    """Dot product of two vectors (spectrum expansion on a basis)."""
    if a.rank != 1 or b.rank != 1:
        raise ShapeError("dot requires two one-dimensional arrays")
    if a.shape != b.shape:
        raise ShapeError(f"dot on mismatched lengths {a.shape[0]} "
                         f"and {b.shape[0]}")
    return np.dot(a.to_numpy(), b.to_numpy()).item()


_REDUCERS = {
    "sum": np.sum,
    "mean": np.mean,
    "min": np.min,
    "max": np.max,
    "std": np.std,
    "prod": np.prod,
}


def aggregate_all(array: SqlArray, func: str):
    """Reduce the whole array to a scalar (``sum``, ``mean``, ``min``,
    ``max``, ``std``, ``prod``)."""
    try:
        reducer = _REDUCERS[func]
    except KeyError:
        raise ShapeError(f"unknown aggregate {func!r}; expected one of "
                         f"{sorted(_REDUCERS)}")
    if array.count == 0:
        raise ShapeError(f"cannot {func} an empty array")
    return reducer(array.to_numpy()).item()


def aggregate_axis(array: SqlArray, func: str, axis: int) -> SqlArray:
    """Reduce over one dimension, returning a rank-1-smaller array.

    This is the "summation over certain axes" operation Section 2.2 asks
    for (e.g. collapsing an integral-field data cube to a 1D spectrum).
    Reducing a one-dimensional array returns a one-element vector.
    """
    try:
        reducer = _REDUCERS[func]
    except KeyError:
        raise ShapeError(f"unknown aggregate {func!r}; expected one of "
                         f"{sorted(_REDUCERS)}")
    if not 0 <= axis < array.rank:
        raise BoundsError(f"axis {axis} out of range for rank {array.rank}")
    if array.shape[axis] == 0:
        raise ShapeError(f"cannot {func} over empty dimension {axis}")
    out = reducer(array.to_numpy(), axis=axis)
    if out.ndim == 0:
        out = out.reshape(1)
    return SqlArray.from_numpy(np.asfortranarray(out))
