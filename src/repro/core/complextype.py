"""Scalar complex numbers as a user-defined type.

Paper Section 3.4: "we added support for float and double complex
numbers as well.  Scalar complex numbers are implemented as user-defined
types and use the native serialization format of SQL Server."

:class:`SqlComplex` is that UDT: an immutable complex scalar whose
serialized form is simply the two IEEE components back to back (the
"native" format a fixed-size UDT gets), in single or double precision.
It carries the arithmetic and polar helpers a query-side complex type
needs; :mod:`repro.sqlbind.registry` exposes them to SQL as
``Complex_*`` functions.
"""

from __future__ import annotations

import cmath
import struct
from dataclasses import dataclass

from .errors import HeaderError

__all__ = ["SqlComplex"]

_DOUBLE = struct.Struct("<dd")
_SINGLE = struct.Struct("<ff")


@dataclass(frozen=True)
class SqlComplex:
    """An immutable complex scalar UDT.

    Attributes:
        value: The Python complex value.
        single: Whether the serialized form is single precision
            (8 bytes) rather than double (16 bytes).
    """

    value: complex
    single: bool = False

    # -- construction ------------------------------------------------------

    @classmethod
    def new(cls, re: float, im: float, single: bool = False
            ) -> "SqlComplex":
        """Create from rectangular components."""
        return cls(complex(re, im), single)

    @classmethod
    def from_polar(cls, magnitude: float, phase: float,
                   single: bool = False) -> "SqlComplex":
        """Create from polar components (radians)."""
        return cls(cmath.rect(magnitude, phase), single)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SqlComplex":
        """Deserialize from the native format (8 or 16 bytes).

        Raises:
            HeaderError: for any other length.
        """
        if len(blob) == _DOUBLE.size:
            re, im = _DOUBLE.unpack(blob)
            return cls(complex(re, im), single=False)
        if len(blob) == _SINGLE.size:
            re, im = _SINGLE.unpack(blob)
            return cls(complex(re, im), single=True)
        raise HeaderError(
            f"a serialized complex scalar is 8 or 16 bytes, got "
            f"{len(blob)}")

    def to_bytes(self) -> bytes:
        """Serialize to the native fixed-size format."""
        s = _SINGLE if self.single else _DOUBLE
        return s.pack(self.value.real, self.value.imag)

    # -- accessors ------------------------------------------------------------

    @property
    def real(self) -> float:
        return self.value.real

    @property
    def imag(self) -> float:
        return self.value.imag

    def abs(self) -> float:
        """Magnitude."""
        return abs(self.value)

    def phase(self) -> float:
        """Argument in radians."""
        return cmath.phase(self.value)

    def conjugate(self) -> "SqlComplex":
        return SqlComplex(self.value.conjugate(), self.single)

    # -- arithmetic -------------------------------------------------------------

    def _coerce(self, other) -> complex:
        if isinstance(other, SqlComplex):
            return other.value
        return complex(other)

    def __add__(self, other) -> "SqlComplex":
        return SqlComplex(self.value + self._coerce(other), self.single)

    def __sub__(self, other) -> "SqlComplex":
        return SqlComplex(self.value - self._coerce(other), self.single)

    def __mul__(self, other) -> "SqlComplex":
        return SqlComplex(self.value * self._coerce(other), self.single)

    def __truediv__(self, other) -> "SqlComplex":
        return SqlComplex(self.value / self._coerce(other), self.single)

    def __neg__(self) -> "SqlComplex":
        return SqlComplex(-self.value, self.single)

    def __complex__(self) -> complex:
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, SqlComplex):
            return self.value == other.value
        if isinstance(other, (int, float, complex)):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    # -- text -----------------------------------------------------------------

    def to_string(self) -> str:
        """``a+bj`` text form (round-trips through
        :meth:`from_string`)."""
        return f"{self.value.real!r}{self.value.imag:+}j"

    @classmethod
    def from_string(cls, text: str, single: bool = False
                    ) -> "SqlComplex":
        """Parse the :meth:`to_string` format (or anything Python's
        ``complex()`` accepts)."""
        try:
            return cls(complex(text.strip()), single)
        except ValueError:
            raise HeaderError(f"malformed complex literal {text!r}")
