"""Array aggregation: UDAs, the reader-based alternative, and set math.

Section 4.2 of the paper reports that user-defined aggregates (UDAs)
looked like "a very elegant way" to build arrays from rows or compute
covariance matrices, but were unusable in practice because SQL Server
serializes the aggregation state through a binary stream **for every row
processed**.  The authors replaced them with scalar functions that pull
rows through a ``SqlDataReader`` and aggregate sequentially.

Both designs are implemented here:

* :class:`ConcatAggregate` — the UDA, faithful to SQL Server's contract:
  ``init`` / ``accumulate`` / ``merge`` / ``terminate``, with the state
  round-tripped through :meth:`~ConcatAggregate.serialize` and
  :meth:`~ConcatAggregate.deserialize` after every accumulated row when
  driven by :func:`concat_uda` (the way the server drives it).  The
  number of serialized bytes is recorded so benchmarks can show exactly
  why the paper abandoned this path.
* :func:`concat_reader` — the winning design: a single pass over a row
  iterator (the ``SqlDataReader`` stand-in) with no per-row state
  serialization.

Also here: element-wise aggregation across a *set* of equal-shape arrays
(:func:`average_arrays` builds composite spectra, Section 2.2) and the
covariance/correlation matrix builders PCA needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .dtypes import ArrayDType, dtype_by_name
from .errors import AggregateError, BoundsError
from .sqlarray import SqlArray

__all__ = [
    "UdaCostLog",
    "ConcatAggregate",
    "concat_uda",
    "concat_reader",
    "average_arrays",
    "sum_arrays",
    "min_arrays",
    "max_arrays",
    "covariance_matrix",
    "correlation_matrix",
]


@dataclass
class UdaCostLog:
    """Accounting of the hidden cost of driving a UDA.

    Attributes:
        rows: Rows accumulated.
        serializations: State serialize+deserialize round trips
            (one per row under SQL Server's contract).
        bytes_serialized: Total state bytes pushed through the stream
            wrapper.
    """

    rows: int = 0
    serializations: int = 0
    bytes_serialized: int = 0


class ConcatAggregate:
    """The paper's ``Concat`` UDA: assemble an array from indexed rows.

    Usage mirrors the T-SQL call
    ``SELECT FloatArrayMax.Concat(@l, ix, v) FROM table`` where ``@l`` is
    a vector holding the target dimension sizes, ``ix`` is an integer
    vector index and ``v`` the cell value.
    """

    def __init__(self, shape: Sequence[int], dtype: ArrayDType | str):
        adt = dtype_by_name(dtype) if isinstance(dtype, str) else dtype
        self._dtype = adt
        self._shape = tuple(int(s) for s in shape)
        self._cells = np.zeros(self._shape, dtype=adt.numpy_dtype, order="F")
        self._filled = np.zeros(self._shape, dtype=bool, order="F")

    # SQL Server UDA contract -------------------------------------------

    def accumulate(self, index: Sequence[int], value) -> None:
        """Fold one ``(index, value)`` row into the state."""
        idx = tuple(int(i) for i in index)
        if len(idx) != len(self._shape):
            raise AggregateError(
                f"index rank {len(idx)} does not match target shape "
                f"{self._shape}")
        for axis, (i, n) in enumerate(zip(idx, self._shape)):
            if not 0 <= i < n:
                raise BoundsError(
                    f"index {i} out of range [0, {n}) on dimension {axis}")
        self._cells[idx] = value
        self._filled[idx] = True

    def merge(self, other: "ConcatAggregate") -> None:
        """Fold another partial aggregate in (parallel plan support)."""
        if other._shape != self._shape or other._dtype is not self._dtype:
            raise AggregateError("cannot merge Concat states of different "
                                 "shape or element type")
        self._cells[other._filled] = other._cells[other._filled]
        self._filled |= other._filled

    def terminate(self) -> SqlArray:
        """Produce the final array (unfilled cells stay zero)."""
        return SqlArray.from_numpy(self._cells, self._dtype)

    # State serialization (the expensive part) ---------------------------

    def serialize(self) -> bytes:
        """Serialize the full aggregation state to a byte string.

        SQL Server requires the UDA state to pass through a binary
        stream; for an array aggregate the state is the whole array plus
        the fill mask, so this is O(array size) *per row*.
        """
        return (np.asfortranarray(self._cells).tobytes(order="F")
                + np.packbits(self._filled.reshape(-1, order="F")).tobytes())

    @classmethod
    def deserialize(cls, blob: bytes, shape: Sequence[int],
                    dtype: ArrayDType | str) -> "ConcatAggregate":
        """Rebuild the state serialized by :meth:`serialize`."""
        agg = cls(shape, dtype)
        count = agg._cells.size
        data_bytes = count * agg._dtype.itemsize
        cells = np.frombuffer(blob[:data_bytes], dtype=agg._dtype.numpy_dtype)
        agg._cells = cells.reshape(agg._shape, order="F").copy(order="F")
        bits = np.unpackbits(
            np.frombuffer(blob[data_bytes:], dtype=np.uint8),
            count=count).astype(bool)
        agg._filled = bits.reshape(agg._shape, order="F").copy(order="F")
        return agg


def concat_uda(rows: Iterable[tuple[Sequence[int], object]],
               shape: Sequence[int], dtype: ArrayDType | str,
               cost_log: UdaCostLog | None = None) -> SqlArray:
    """Drive :class:`ConcatAggregate` the way SQL Server drives a UDA.

    After every accumulated row the state is serialized and deserialized
    through the stream interface — the behaviour Section 4.2 measured and
    found "prohibitive".  ``cost_log`` (optional) receives the amount of
    work wasted on those round trips.
    """
    log = cost_log if cost_log is not None else UdaCostLog()
    agg = ConcatAggregate(shape, dtype)
    for index, value in rows:
        agg.accumulate(index, value)
        state = agg.serialize()
        agg = ConcatAggregate.deserialize(state, shape, dtype)
        log.rows += 1
        log.serializations += 1
        log.bytes_serialized += len(state)
    return agg.terminate()


def concat_reader(rows: Iterable[tuple[Sequence[int], object]],
                  shape: Sequence[int], dtype: ArrayDType | str) -> SqlArray:
    """The paper's replacement: aggregate rows sequentially in a scalar
    function fed by a data reader, with no per-row state serialization.

    Produces exactly the same array as :func:`concat_uda`.
    """
    agg = ConcatAggregate(shape, dtype)
    for index, value in rows:
        agg.accumulate(index, value)
    return agg.terminate()


# -- set aggregation over equal-shape arrays -----------------------------


def _stack(arrays: Sequence[SqlArray]) -> np.ndarray:
    if not arrays:
        raise AggregateError("aggregate over an empty set of arrays")
    first = arrays[0]
    for a in arrays[1:]:
        if a.shape != first.shape:
            raise AggregateError(
                f"aggregate over mismatched shapes {first.shape} and "
                f"{a.shape}")
        if a.dtype.code != first.dtype.code:
            raise AggregateError(
                f"aggregate over mixed element types {first.dtype.name} "
                f"and {a.dtype.name}")
    return np.stack([a.to_numpy() for a in arrays])


def average_arrays(arrays: Sequence[SqlArray],
                   weights: Sequence[float] | None = None) -> SqlArray:
    """Element-wise (optionally weighted) mean of equal-shape arrays.

    This is the composite-spectrum aggregate of Section 2.2: "once
    resampled to common grid, spectra can be averaged to get composites
    with high signal to noise ratio ... very easily solved using an
    aggregate function".
    """
    stacked = _stack(arrays)
    if weights is None:
        out = stacked.mean(axis=0)
    else:
        w = np.asarray(list(weights), dtype="f8")
        if w.shape[0] != stacked.shape[0]:
            raise AggregateError(
                f"{stacked.shape[0]} arrays but {w.shape[0]} weights")
        if w.sum() == 0:
            raise AggregateError("weights sum to zero")
        out = np.tensordot(w, stacked, axes=(0, 0)) / w.sum()
    return SqlArray.from_numpy(np.asfortranarray(out))


def sum_arrays(arrays: Sequence[SqlArray]) -> SqlArray:
    """Element-wise sum of equal-shape arrays."""
    return SqlArray.from_numpy(np.asfortranarray(_stack(arrays).sum(axis=0)))


def min_arrays(arrays: Sequence[SqlArray]) -> SqlArray:
    """Element-wise minimum of equal-shape arrays."""
    return SqlArray.from_numpy(np.asfortranarray(_stack(arrays).min(axis=0)))


def max_arrays(arrays: Sequence[SqlArray]) -> SqlArray:
    """Element-wise maximum of equal-shape arrays."""
    return SqlArray.from_numpy(np.asfortranarray(_stack(arrays).max(axis=0)))


def covariance_matrix(vectors: Sequence[SqlArray]) -> SqlArray:
    """Sample covariance matrix of a set of equal-length vectors.

    Section 2.2's PCA pipeline needs "computing the correlation matrix
    and executing a singular value decomposition"; this provides the
    matrix half (see :mod:`repro.mathlib.pca` for the full pipeline).
    """
    for v in vectors:
        if v.rank != 1:
            raise AggregateError("covariance_matrix expects vectors")
    stacked = _stack(vectors).astype("f8")
    if stacked.shape[0] < 2:
        raise AggregateError("covariance needs at least two vectors")
    centered = stacked - stacked.mean(axis=0, keepdims=True)
    cov = centered.T @ centered / (stacked.shape[0] - 1)
    return SqlArray.from_numpy(np.asfortranarray(cov))


def correlation_matrix(vectors: Sequence[SqlArray]) -> SqlArray:
    """Pearson correlation matrix of a set of equal-length vectors.

    Dimensions with zero variance get correlation 0 off-diagonal and 1
    on the diagonal.
    """
    cov = covariance_matrix(vectors).to_numpy()
    sd = np.sqrt(np.diag(cov))
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = cov / np.outer(sd, sd)
    corr[~np.isfinite(corr)] = 0.0
    np.fill_diagonal(corr, 1.0)
    return SqlArray.from_numpy(np.asfortranarray(corr))
