"""Principal component analysis over sets of vectors.

The paper's spectrum-classification pipeline (Section 2.2): "Running PCA
over a set of spectra requires resampling and normalization of the
individual data vectors, computing the correlation matrix and executing
a singular value decomposition (SVD) algorithm over the correlation
matrix.  The spectra then have to be expanded on the basis derived from
the SVD."

:class:`PCA` implements exactly that path — covariance/correlation
matrix assembled by the array aggregate, decomposed by the
:func:`~repro.mathlib.lapack.gesvd` wrapper — and the expansion step
supports the masked least-squares variant required when flag vectors
mark bad bins (dot products are then invalid).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.aggregates import correlation_matrix, covariance_matrix
from ..core.errors import AggregateError, ShapeError
from ..core.sqlarray import SqlArray
from .lapack import gesvd, masked_lstsq

__all__ = ["PCA"]


class PCA:
    """PCA basis fitted to a set of equal-length vectors.

    Args:
        n_components: Basis size to keep; ``None`` keeps all.
        use_correlation: Decompose the correlation matrix instead of the
            covariance matrix (scale-free variant).

    Attributes (after :meth:`fit`):
        mean: Per-dimension mean vector.
        components: ``(n_components, dim)`` matrix whose rows are the
            principal directions, ordered by decreasing variance.
        explained_variance: Variance captured by each component.
    """

    def __init__(self, n_components: int | None = None,
                 use_correlation: bool = False):
        self.n_components = n_components
        self.use_correlation = use_correlation
        self.mean: np.ndarray | None = None
        self.components: np.ndarray | None = None
        self.explained_variance: np.ndarray | None = None

    # -- fitting ------------------------------------------------------------

    def fit(self, vectors: Sequence[SqlArray]) -> "PCA":
        """Fit the basis: matrix aggregate + SVD, as in the paper."""
        if len(vectors) < 2:
            raise AggregateError("PCA needs at least two vectors")
        matrix_agg = (correlation_matrix if self.use_correlation
                      else covariance_matrix)
        cov = matrix_agg(list(vectors))
        stacked = np.stack([v.to_numpy() for v in vectors]).astype("f8")
        self.mean = stacked.mean(axis=0)

        _u, s, vt = gesvd(cov)
        basis = vt.to_numpy()
        variance = s.to_numpy()
        k = self.n_components or basis.shape[0]
        if not 1 <= k <= basis.shape[0]:
            raise ShapeError(
                f"n_components={k} out of range [1, {basis.shape[0]}]")
        self.components = basis[:k]
        self.explained_variance = variance[:k]
        return self

    def _require_fitted(self) -> None:
        if self.components is None:
            raise AggregateError("PCA is not fitted yet")

    # -- expansion ------------------------------------------------------------

    def transform(self, vector: SqlArray) -> SqlArray:
        """Expand one vector on the basis via dot products (valid when
        no bins are flagged)."""
        self._require_fitted()
        v = vector.to_numpy().astype("f8")
        if v.ndim != 1 or v.shape[0] != self.components.shape[1]:
            raise ShapeError(
                f"vector length {v.shape} does not match basis "
                f"dimension {self.components.shape[1]}")
        return SqlArray.from_numpy(self.components @ (v - self.mean))

    def transform_masked(self, vector: SqlArray,
                         mask: SqlArray) -> SqlArray:
        """Expand a flagged vector by masked least squares.

        "In practice, because of the flags that mask out wrong
        measurements bin by bin, dot product cannot be used for
        expanding spectra on a basis but least squares fitting is
        necessary" (Section 2.2).
        """
        self._require_fitted()
        centered = SqlArray.from_numpy(
            vector.to_numpy().astype("f8") - self.mean)
        design = SqlArray.from_numpy(
            np.asfortranarray(self.components.T))
        return masked_lstsq(design, centered, mask)

    def reconstruct(self, coefficients: SqlArray) -> SqlArray:
        """Rebuild a vector from basis coefficients."""
        self._require_fitted()
        c = coefficients.to_numpy().astype("f8")
        if c.shape[0] != self.components.shape[0]:
            raise ShapeError(
                f"{c.shape[0]} coefficients for a "
                f"{self.components.shape[0]}-component basis")
        return SqlArray.from_numpy(self.mean + self.components.T @ c)

    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total captured variance per kept component."""
        self._require_fitted()
        total = self.explained_variance.sum()
        if total == 0:
            return np.zeros_like(self.explained_variance)
        return self.explained_variance / total
