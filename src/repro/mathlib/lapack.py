"""LAPACK-style linear algebra over SQL arrays.

The paper wraps "LAPACK's singular value decomposition driver function
``*gesvd``" so it can run inside the server (Section 3.6), and the
spectrum use case (Section 2.2) additionally needs plain and *masked*
least squares ("because of the flags that mask out wrong measurements
bin by bin, dot product cannot be used for expanding spectra on a basis
but least squares fitting is necessary").

Arrays are stored column-major (the FORTRAN convention) precisely so
these calls marshal by reference with no data reordering; here the numpy
arrays produced by :meth:`SqlArray.to_numpy` are F-contiguous for the
same reason.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ShapeError
from ..core.sqlarray import SqlArray

__all__ = ["gesvd", "svd_values", "solve_lstsq", "masked_lstsq",
           "matmul", "transpose"]


def _as_matrix(a: SqlArray) -> np.ndarray:
    if a.rank != 2:
        raise ShapeError(f"expected a matrix, got rank {a.rank}")
    return a.to_numpy().astype("f8" if not a.dtype.is_complex else "c16",
                               copy=False)


def gesvd(a: SqlArray, full_matrices: bool = False
          ) -> tuple[SqlArray, SqlArray, SqlArray]:
    """Singular value decomposition, LAPACK ``*gesvd`` semantics.

    Returns ``(U, S, VT)`` with ``A = U @ diag(S) @ VT``; ``S`` is a
    vector of singular values in descending order.
    """
    m = _as_matrix(a)
    if m.size == 0:
        raise ShapeError("cannot decompose an empty matrix")
    u, s, vt = np.linalg.svd(m, full_matrices=full_matrices)
    return (SqlArray.from_numpy(np.asfortranarray(u)),
            SqlArray.from_numpy(s),
            SqlArray.from_numpy(np.asfortranarray(vt)))


def svd_values(a: SqlArray) -> SqlArray:
    """Singular values only (cheaper than :func:`gesvd`)."""
    m = _as_matrix(a)
    if m.size == 0:
        raise ShapeError("cannot decompose an empty matrix")
    return SqlArray.from_numpy(np.linalg.svd(m, compute_uv=False))


def solve_lstsq(a: SqlArray, b: SqlArray) -> SqlArray:
    """Least squares solution of ``A x ~ b`` (LAPACK ``*gels``
    equivalent).

    ``a`` is an (m, n) design matrix and ``b`` an m-vector; returns the
    n-vector minimizing ``||A x - b||_2``.
    """
    m = _as_matrix(a)
    if b.rank != 1:
        raise ShapeError("right-hand side must be a vector")
    rhs = b.to_numpy().astype(m.dtype, copy=False)
    if rhs.shape[0] != m.shape[0]:
        raise ShapeError(
            f"design matrix has {m.shape[0]} rows but the right-hand "
            f"side has {rhs.shape[0]}")
    x, _residuals, _rank, _sv = np.linalg.lstsq(m, rhs, rcond=None)
    return SqlArray.from_numpy(x)


def masked_lstsq(a: SqlArray, b: SqlArray, mask: SqlArray) -> SqlArray:
    """Least squares restricted to unmasked rows.

    ``mask`` is an integer or float vector of the same length as ``b``;
    rows with mask value 0 are excluded from the fit (the paper's
    per-bin flag vectors marking wrong measurements).  This is the
    operation that replaces the dot product when expanding a flagged
    spectrum on a basis.

    Raises:
        ShapeError: if fewer unmasked rows remain than unknowns.
    """
    m = _as_matrix(a)
    if b.rank != 1 or mask.rank != 1:
        raise ShapeError("b and mask must be vectors")
    rhs = b.to_numpy().astype(m.dtype, copy=False)
    good = mask.to_numpy().astype(bool)
    if rhs.shape[0] != m.shape[0] or good.shape[0] != m.shape[0]:
        raise ShapeError("a, b and mask must agree on the row count")
    keep = np.nonzero(good)[0]
    if keep.shape[0] < m.shape[1]:
        raise ShapeError(
            f"only {keep.shape[0]} unmasked rows for {m.shape[1]} "
            "unknowns")
    x, _res, _rank, _sv = np.linalg.lstsq(m[keep], rhs[keep], rcond=None)
    return SqlArray.from_numpy(x)


def matmul(a: SqlArray, b: SqlArray) -> SqlArray:
    """Matrix product (matrix@matrix, matrix@vector or vector@matrix)."""
    am, bm = a.to_numpy(), b.to_numpy()
    try:
        out = am @ bm
    except ValueError as exc:
        raise ShapeError(str(exc))
    if np.ndim(out) == 0:
        out = np.reshape(out, (1,))
    return SqlArray.from_numpy(np.asfortranarray(out))


def transpose(a: SqlArray) -> SqlArray:
    """Matrix transpose."""
    if a.rank != 2:
        raise ShapeError(f"expected a matrix, got rank {a.rank}")
    return SqlArray.from_numpy(np.asfortranarray(a.to_numpy().T), a.dtype)
