"""Math library support: the LAPACK/FFTW wrappers of paper Sections 3.6
and 5.3 plus the fitting routines the spectrum use case requires.

* :mod:`repro.mathlib.lapack` — SVD (``gesvd``), least squares, masked
  least squares, matrix products.
* :mod:`repro.mathlib.fftw` — forward/inverse DFT with FFTW's
  aligned-buffer call discipline, power spectra.
* :mod:`repro.mathlib.nnls` — Lawson-Hanson non-negative least squares
  (from scratch).
* :mod:`repro.mathlib.pca` — the correlation-matrix + SVD PCA pipeline.
"""

from .fftw import ALIGNMENT, aligned_copy, fft_forward, fft_inverse, \
    power_spectrum
from .lapack import (
    gesvd,
    masked_lstsq,
    matmul,
    solve_lstsq,
    svd_values,
    transpose,
)
from .nnls import nnls, nnls_arrays
from .pca import PCA

__all__ = [
    "gesvd",
    "svd_values",
    "solve_lstsq",
    "masked_lstsq",
    "matmul",
    "transpose",
    "fft_forward",
    "fft_inverse",
    "power_spectrum",
    "aligned_copy",
    "ALIGNMENT",
    "nnls",
    "nnls_arrays",
    "PCA",
]
