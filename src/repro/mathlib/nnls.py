"""Non-negative least squares, implemented from scratch.

"Certain spectrum processing operations also require non-negative least
squares fitting" (paper Section 2.2) — e.g. decomposing an observed
spectrum into physical components whose contributions cannot be
negative.  This is the classic active-set algorithm of Lawson & Hanson
(*Solving Least Squares Problems*, 1974, Chapter 23), the same algorithm
behind LAPACK-era ``NNLS`` routines.

Implemented directly (no ``scipy.optimize``); the test suite
cross-checks the results against scipy's ``nnls`` as an oracle.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ShapeError
from ..core.sqlarray import SqlArray

__all__ = ["nnls", "nnls_arrays"]


def nnls(a, b, max_iter: int | None = None,
         tol: float | None = None) -> tuple[np.ndarray, float]:
    """Solve ``min ||A x - b||_2`` subject to ``x >= 0``.

    Args:
        a: Design matrix, shape (m, n).
        b: Target vector, length m.
        max_iter: Iteration cap; defaults to ``3 * n`` (Lawson-Hanson's
            customary bound).
        tol: Dual-feasibility tolerance; defaults to a scale-aware
            machine-epsilon bound.

    Returns:
        ``(x, rnorm)`` — the solution and the residual 2-norm.

    Raises:
        ShapeError: on dimension mismatch.
        RuntimeError: if the iteration cap is hit (ill-posed input).
    """
    a = np.asarray(a, dtype="f8")
    b = np.asarray(b, dtype="f8").reshape(-1)
    if a.ndim != 2:
        raise ShapeError(f"design matrix must be 2-D, got {a.ndim}-D")
    m, n = a.shape
    if b.shape[0] != m:
        raise ShapeError(f"A has {m} rows but b has {b.shape[0]} entries")
    if max_iter is None:
        max_iter = 3 * n
    if tol is None:
        tol = 10 * max(m, n) * np.finfo("f8").eps * \
            max(float(np.abs(a).max(initial=0.0)), 1.0)

    x = np.zeros(n)
    passive = np.zeros(n, dtype=bool)  # the set P of free variables
    w = a.T @ (b - a @ x)              # dual / gradient

    iterations = 0
    while not passive.all() and np.any(w[~passive] > tol):
        # Most-violating zero variable enters the passive set.
        candidates = np.where(~passive, w, -np.inf)
        passive[int(np.argmax(candidates))] = True

        while True:
            iterations += 1
            if iterations > max_iter:
                raise RuntimeError(
                    f"NNLS did not converge within {max_iter} iterations")
            # Unconstrained solve on the passive set.
            cols = np.nonzero(passive)[0]
            z = np.zeros(n)
            z[cols], _res, _rank, _sv = np.linalg.lstsq(
                a[:, cols], b, rcond=None)
            if (z[cols] > tol).all():
                x = z
                break
            # Step toward z until the first passive variable hits zero,
            # then move it back to the active (zero) set.
            negative = cols[z[cols] <= tol]
            alpha = np.min(x[negative] / (x[negative] - z[negative]))
            x = x + alpha * (z - x)
            passive &= x > tol
            x[~passive] = 0.0
        w = a.T @ (b - a @ x)

    return x, float(np.linalg.norm(a @ x - b))


def nnls_arrays(a: SqlArray, b: SqlArray) -> tuple[SqlArray, float]:
    """:func:`nnls` over SQL arrays: (matrix, vector) -> (vector,
    residual norm)."""
    if a.rank != 2 or b.rank != 1:
        raise ShapeError("nnls_arrays expects a matrix and a vector")
    x, rnorm = nnls(a.to_numpy(), b.to_numpy())
    return SqlArray.from_numpy(x), rnorm
