"""FFTW-style discrete Fourier transforms over SQL arrays.

Section 5.3 of the paper: "FFTW requires specially aligned memory
buffers to perform well.  When calling FFTW, a memory copy into a
pre-aligned buffer is necessary but the performance gain is usually
worth the otherwise expensive operation."  This wrapper reproduces that
call discipline — input data is copied into a freshly allocated aligned
buffer before transforming — and exposes the same forward/inverse
entry points the T-SQL surface binds (``FloatArrayMax.FFTForward``).

Transforms are N-dimensional over the array's full shape, matching
FFTW's planner for a whole array.
"""

from __future__ import annotations

import numpy as np

from ..core.dtypes import COMPLEX64, COMPLEX128, FLOAT32
from ..core.errors import ShapeError, TypeMismatchError
from ..core.sqlarray import SqlArray

__all__ = ["fft_forward", "fft_inverse", "power_spectrum",
           "aligned_copy", "ALIGNMENT"]

#: Byte alignment FFTW plans for (SIMD-width aligned buffers).
ALIGNMENT = 32


def aligned_copy(values: np.ndarray) -> np.ndarray:
    """Copy ``values`` into a fresh buffer aligned to :data:`ALIGNMENT`.

    This is the "memory copy into a pre-aligned buffer" the paper pays
    for before every FFTW call.  The result is F-contiguous, preserving
    the column-major layout of the blob format.
    """
    flat = np.asarray(values).reshape(-1, order="F")
    raw = np.empty(flat.nbytes + ALIGNMENT, dtype=np.uint8)
    start = (-raw.ctypes.data) % ALIGNMENT
    buf = raw[start:start + flat.nbytes].view(flat.dtype)
    buf[:] = flat
    return buf.reshape(values.shape, order="F")


def _check_numeric(a: SqlArray) -> None:
    if a.count == 0:
        raise ShapeError("cannot transform an empty array")


def fft_forward(a: SqlArray) -> SqlArray:
    """Forward DFT; returns a complex array of the same shape.

    Real inputs are promoted to complex (FFTW's complex transform);
    integer arrays are rejected since the paper's library supports
    transforms of floating types only.
    """
    _check_numeric(a)
    if a.dtype.is_integer:
        raise TypeMismatchError(
            "FFT requires a floating or complex array; convert first")
    single = a.dtype in (FLOAT32, COMPLEX64) or a.dtype.name == "float32"
    work = aligned_copy(a.to_numpy())
    out = np.fft.fftn(work)
    target = COMPLEX64 if single else COMPLEX128
    return SqlArray.from_numpy(
        np.asfortranarray(out.astype(target.numpy_dtype)), target)


def fft_inverse(a: SqlArray) -> SqlArray:
    """Inverse DFT (normalized by 1/N, FFTW's ``BACKWARD`` divided by N
    — i.e. ``fft_inverse(fft_forward(x)) == x``)."""
    _check_numeric(a)
    if not a.dtype.is_complex:
        raise TypeMismatchError("the inverse FFT takes a complex array")
    work = aligned_copy(a.to_numpy())
    out = np.fft.ifftn(work)
    return SqlArray.from_numpy(
        np.asfortranarray(out.astype(a.dtype.numpy_dtype)), a.dtype)


def power_spectrum(a: SqlArray) -> SqlArray:
    """``|FFT(a)|^2`` as a real array — the quantity the N-body use case
    computes from gridded density fields (Section 2.3)."""
    spectrum = fft_forward(a).to_numpy()
    return SqlArray.from_numpy(
        np.asfortranarray(np.abs(spectrum) ** 2))
