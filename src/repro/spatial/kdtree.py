"""kd-tree for nearest-neighbour search, implemented from scratch.

Section 2.2 of the paper: "One builds a kd-tree over the coefficients so
nearest neighbor searches can be executed very quickly.  A 'query'
spectrum is expanded on the same basis on the fly and the nearest
neighbors of its coefficient vector are looked up using the kd-tree."

This is a median-split kd-tree over an ``(n, d)`` point set with
k-nearest-neighbour and radius queries.  No ``scipy.spatial`` is used in
library code; the test suite verifies against brute force (and scipy as
an oracle where available).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["KdTree"]

_LEAF_SIZE = 16


@dataclass
class _Node:
    """One kd-tree node: either a split or a leaf over an index range."""

    axis: int = -1
    split: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    start: int = 0
    stop: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class KdTree:
    """kd-tree over an ``(n, d)`` float point set.

    Args:
        points: Point coordinates; copied and reordered internally.
        leaf_size: Points per leaf below which splitting stops.
    """

    def __init__(self, points, leaf_size: int = _LEAF_SIZE):
        points = np.asarray(points, dtype="f8")
        if points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        if len(points) == 0:
            raise ValueError("cannot build a kd-tree over zero points")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self._leaf_size = leaf_size
        self._index = np.arange(len(points))
        self._points = points.copy()
        self._root = self._build(0, len(points), depth=0)

    @property
    def size(self) -> int:
        return len(self._points)

    @property
    def dim(self) -> int:
        return self._points.shape[1]

    def _build(self, start: int, stop: int, depth: int) -> _Node:
        n = stop - start
        if n <= self._leaf_size:
            return _Node(start=start, stop=stop)
        # Split the widest axis at the median (better balance than
        # cycling axes when the data is anisotropic).
        block = self._points[start:stop]
        axis = int(np.argmax(block.max(axis=0) - block.min(axis=0)))
        order = np.argsort(block[:, axis], kind="stable")
        self._points[start:stop] = block[order]
        self._index[start:stop] = self._index[start:stop][order]
        mid = start + n // 2
        split = float(self._points[mid, axis])
        node = _Node(axis=axis, split=split, start=start, stop=stop)
        node.left = self._build(start, mid, depth + 1)
        node.right = self._build(mid, stop, depth + 1)
        return node

    # -- queries ------------------------------------------------------------

    def query(self, point, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """k nearest neighbours of ``point``.

        Returns:
            ``(distances, indices)`` sorted by increasing distance;
            indices refer to the original point order.
        """
        point = np.asarray(point, dtype="f8").reshape(-1)
        if point.shape[0] != self.dim:
            raise ValueError(
                f"query point has {point.shape[0]} dimensions, tree "
                f"has {self.dim}")
        if not 1 <= k <= self.size:
            raise ValueError(f"k={k} out of range [1, {self.size}]")
        # Max-heap of (-dist2, index) holding the best k so far.
        heap: list[tuple[float, int]] = []
        self._knn(self._root, point, k, heap)
        order = sorted((-d2, idx) for d2, idx in heap)
        dists = np.sqrt([d2 for d2, _ in order])
        idx = np.array([self._index[i] for _, i in order])
        return dists, idx

    def _knn(self, node: _Node, point: np.ndarray, k: int,
             heap: list) -> None:
        if node.is_leaf:
            block = self._points[node.start:node.stop]
            d2 = ((block - point) ** 2).sum(axis=1)
            for offset, dist2 in enumerate(d2):
                entry = (-float(dist2), node.start + offset)
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
            return
        diff = point[node.axis] - node.split
        near, far = ((node.left, node.right) if diff < 0
                     else (node.right, node.left))
        self._knn(near, point, k, heap)
        worst = -heap[0][0] if len(heap) == k else np.inf
        if diff * diff <= worst:
            self._knn(far, point, k, heap)

    def query_radius(self, point, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``point``
        (unsorted)."""
        point = np.asarray(point, dtype="f8").reshape(-1)
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: list[int] = []
        self._radius(self._root, point, radius * radius, out)
        return self._index[np.array(out, dtype=int)] if out else \
            np.empty(0, dtype=int)

    def _radius(self, node: _Node, point: np.ndarray, r2: float,
                out: list[int]) -> None:
        if node.is_leaf:
            block = self._points[node.start:node.stop]
            d2 = ((block - point) ** 2).sum(axis=1)
            out.extend(node.start + i for i in np.nonzero(d2 <= r2)[0])
            return
        diff = point[node.axis] - node.split
        near, far = ((node.left, node.right) if diff < 0
                     else (node.right, node.left))
        self._radius(near, point, r2, out)
        if diff * diff <= r2:
            self._radius(far, point, r2, out)
