"""Morton (z-order) space-filling curve codes.

Both big use cases partition space along a z-index: the turbulence
database is "partitioned along a space filling curve (z-index) into
cubes" (Section 2.1), and the N-body octree "would be computed from a
space filling curve index" (Section 2.3).  Morton codes interleave the
bits of the per-axis cell coordinates, so nearby cells in space tend to
be nearby on disk — the clustering property the paper relies on to keep
disk access controllable "at the application level".

Scalar and vectorized (numpy) encoders/decoders are provided for 2-D
and 3-D, using the standard magic-number bit-spreading construction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_BITS_3D",
    "MAX_BITS_2D",
    "encode2",
    "decode2",
    "encode3",
    "decode3",
    "encode3_array",
    "decode3_array",
    "encode2_array",
    "cell_of_point",
    "points_to_codes",
]

#: Bits per axis that fit a 64-bit 3-D Morton code.
MAX_BITS_3D = 21
#: Bits per axis that fit a 64-bit 2-D Morton code.
MAX_BITS_2D = 32

_U = np.uint64


def _spread3(x):
    """Spread the low 21 bits of ``x`` so consecutive bits land 3 apart
    (works elementwise on uint64 scalars or arrays)."""
    x = x & _U(0x1FFFFF)
    x = (x | (x << _U(32))) & _U(0x1F00000000FFFF)
    x = (x | (x << _U(16))) & _U(0x1F0000FF0000FF)
    x = (x | (x << _U(8))) & _U(0x100F00F00F00F00F)
    x = (x | (x << _U(4))) & _U(0x10C30C30C30C30C3)
    x = (x | (x << _U(2))) & _U(0x1249249249249249)
    return x


def _compact3(x):
    """Inverse of :func:`_spread3`."""
    x = x & _U(0x1249249249249249)
    x = (x ^ (x >> _U(2))) & _U(0x10C30C30C30C30C3)
    x = (x ^ (x >> _U(4))) & _U(0x100F00F00F00F00F)
    x = (x ^ (x >> _U(8))) & _U(0x1F0000FF0000FF)
    x = (x ^ (x >> _U(16))) & _U(0x1F00000000FFFF)
    x = (x ^ (x >> _U(32))) & _U(0x1FFFFF)
    return x


def _spread2(x):
    """Spread the low 32 bits so consecutive bits land 2 apart."""
    x = x & _U(0xFFFFFFFF)
    x = (x | (x << _U(16))) & _U(0x0000FFFF0000FFFF)
    x = (x | (x << _U(8))) & _U(0x00FF00FF00FF00FF)
    x = (x | (x << _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << _U(2))) & _U(0x3333333333333333)
    x = (x | (x << _U(1))) & _U(0x5555555555555555)
    return x


def _compact2(x):
    x = x & _U(0x5555555555555555)
    x = (x ^ (x >> _U(1))) & _U(0x3333333333333333)
    x = (x ^ (x >> _U(2))) & _U(0x0F0F0F0F0F0F0F0F)
    x = (x ^ (x >> _U(4))) & _U(0x00FF00FF00FF00FF)
    x = (x ^ (x >> _U(8))) & _U(0x0000FFFF0000FFFF)
    x = (x ^ (x >> _U(16))) & _U(0xFFFFFFFF)
    return x


def _check(coord: int, bits: int, axis: str) -> None:
    if not 0 <= coord < (1 << bits):
        raise ValueError(
            f"coordinate {axis}={coord} out of range [0, 2^{bits})")


def encode3(x: int, y: int, z: int, bits: int = MAX_BITS_3D) -> int:
    """Morton-encode a 3-D cell coordinate.

    Bit ``3k`` of the code is bit ``k`` of ``x``, then ``y``, then ``z``.
    """
    if bits > MAX_BITS_3D:
        raise ValueError(f"at most {MAX_BITS_3D} bits per axis in 3-D")
    for axis, c in (("x", x), ("y", y), ("z", z)):
        _check(c, bits, axis)
    return int(_spread3(_U(x)) | (_spread3(_U(y)) << _U(1))
               | (_spread3(_U(z)) << _U(2)))


def decode3(code: int) -> tuple[int, int, int]:
    """Inverse of :func:`encode3`."""
    c = _U(code)
    return (int(_compact3(c)), int(_compact3(c >> _U(1))),
            int(_compact3(c >> _U(2))))


def encode2(x: int, y: int, bits: int = MAX_BITS_2D) -> int:
    """Morton-encode a 2-D cell coordinate."""
    if bits > MAX_BITS_2D:
        raise ValueError(f"at most {MAX_BITS_2D} bits per axis in 2-D")
    _check(x, bits, "x")
    _check(y, bits, "y")
    return int(_spread2(_U(x)) | (_spread2(_U(y)) << _U(1)))


def decode2(code: int) -> tuple[int, int]:
    """Inverse of :func:`encode2`."""
    c = _U(code)
    return int(_compact2(c)), int(_compact2(c >> _U(1)))


def encode3_array(coords: np.ndarray) -> np.ndarray:
    """Vectorized :func:`encode3` over an ``(n, 3)`` integer array."""
    coords = np.asarray(coords, dtype=np.uint64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError("expected an (n, 3) coordinate array")
    if coords.size and int(coords.max()) >= (1 << MAX_BITS_3D):
        raise ValueError(f"coordinates exceed 2^{MAX_BITS_3D} - 1")
    return (_spread3(coords[:, 0]) | (_spread3(coords[:, 1]) << _U(1))
            | (_spread3(coords[:, 2]) << _U(2)))


def decode3_array(codes: np.ndarray) -> np.ndarray:
    """Vectorized :func:`decode3`; returns an ``(n, 3)`` uint64 array."""
    codes = np.asarray(codes, dtype=np.uint64)
    return np.stack([_compact3(codes), _compact3(codes >> _U(1)),
                     _compact3(codes >> _U(2))], axis=1)


def encode2_array(coords: np.ndarray) -> np.ndarray:
    """Vectorized :func:`encode2` over an ``(n, 2)`` integer array."""
    coords = np.asarray(coords, dtype=np.uint64)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError("expected an (n, 2) coordinate array")
    if coords.size and int(coords.max()) >= (1 << MAX_BITS_2D):
        raise ValueError(f"coordinates exceed 2^{MAX_BITS_2D} - 1")
    return _spread2(coords[:, 0]) | (_spread2(coords[:, 1]) << _U(1))


def cell_of_point(point, box_size: float, cells_per_axis: int
                  ) -> tuple[int, ...]:
    """Cell coordinate of a point in a cubic ``[0, box_size)^d`` domain
    divided into ``cells_per_axis`` cells per axis."""
    out = []
    for p in point:
        c = int(p / box_size * cells_per_axis)
        out.append(min(max(c, 0), cells_per_axis - 1))
    return tuple(out)


def points_to_codes(points: np.ndarray, box_size: float,
                    cells_per_axis: int) -> np.ndarray:
    """Morton codes of 3-D points in a cubic domain (vectorized).

    This is the bucketing step both the turbulence partitioner and the
    N-body octree builder start from.
    """
    points = np.asarray(points, dtype="f8")
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError("expected an (n, 3) point array")
    cells = np.clip(
        (points / box_size * cells_per_axis).astype(np.int64),
        0, cells_per_axis - 1)
    return encode3_array(cells.astype(np.uint64))
