"""Spatial indexing substrates: Morton (z-order) codes, a kd-tree, and
an octree — the multidimensional search machinery the paper's use cases
rely on (Sections 2.1-2.3)."""

from .kdtree import KdTree
from .octree import Octree, OctreeNode
from .zorder import (
    MAX_BITS_2D,
    MAX_BITS_3D,
    cell_of_point,
    decode2,
    decode3,
    decode3_array,
    encode2,
    encode2_array,
    encode3,
    encode3_array,
    points_to_codes,
)

__all__ = [
    "KdTree",
    "Octree",
    "OctreeNode",
    "encode2",
    "decode2",
    "encode3",
    "decode3",
    "encode2_array",
    "encode3_array",
    "decode3_array",
    "cell_of_point",
    "points_to_codes",
    "MAX_BITS_2D",
    "MAX_BITS_3D",
]
