"""Octree over 3-D point sets, implemented from scratch.

Section 2.3 of the paper needs the data "arranged in coherent chunks
organized into a spatial octree, not necessarily balanced", computed
from a space-filling curve index, plus:

* "a decimated octree of particles for several hierarchical levels ...
  for the purposes of visualization where each sub-sampled particle
  would get a different weight according to the number of original
  particles in its region of attraction" — :meth:`Octree.decimate`;
* "a spatial index that can retrieve points from within a cone or other
  geometric primitives" (light-cone construction) —
  :meth:`Octree.query_cone`, :meth:`query_box`, :meth:`query_sphere`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Octree", "OctreeNode"]


@dataclass
class OctreeNode:
    """One octree cell.

    Attributes:
        center: Cell center (3,).
        half: Half the cell edge length.
        depth: Root is depth 0.
        children: Eight children (octant order: bit 0 = x high,
            bit 1 = y high, bit 2 = z high) or empty for a leaf.
        start/stop: Index range of the tree's reordered point buffer
            covered by this cell.
    """

    center: np.ndarray
    half: float
    depth: int
    start: int
    stop: int
    children: list = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def count(self) -> int:
        return self.stop - self.start


class Octree:
    """Adaptive (unbalanced) octree over points in a cubic domain.

    Args:
        points: ``(n, 3)`` coordinates inside ``[0, box_size)^3``.
        box_size: Domain edge length.
        max_points: Leaves are split while they hold more points than
            this (and ``max_depth`` is not exceeded).
        max_depth: Hard depth cap.
    """

    def __init__(self, points, box_size: float, max_points: int = 32,
                 max_depth: int = 21):
        points = np.asarray(points, dtype="f8")
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must be an (n, 3) array")
        if box_size <= 0:
            raise ValueError("box_size must be positive")
        if len(points) and (points.min() < 0 or points.max() >= box_size):
            raise ValueError("points must lie inside [0, box_size)^3")
        if max_points < 1:
            raise ValueError("max_points must be >= 1")
        self.box_size = float(box_size)
        self._points = points.copy()
        self._index = np.arange(len(points))
        half = box_size / 2.0
        self.root = OctreeNode(
            center=np.array([half, half, half]), half=half, depth=0,
            start=0, stop=len(points))
        self._max_points = max_points
        self._max_depth = max_depth
        if len(points):
            self._split(self.root)

    @property
    def size(self) -> int:
        return len(self._points)

    @classmethod
    def from_morton(cls, points, box_size: float, max_points: int = 32,
                    max_depth: int = 21) -> "Octree":
        """Build the octree from a space-filling-curve sort.

        Paper Section 2.3: "the data [is] arranged in coherent chunks
        organized into a spatial octree ... The octree would be
        computed from a space filling curve index."  Sorting points by
        their Morton code makes every octree cell a *contiguous run* of
        the sorted order (an octant's children occupy consecutive code
        ranges), so the recursive build never moves points again — the
        construction used for bucketed, disk-resident data.

        The resulting tree is equivalent to the direct constructor's
        (same cells, same memberships); only the build path differs.
        """
        points = np.asarray(points, dtype="f8")
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must be an (n, 3) array")
        if len(points):
            from .zorder import points_to_codes
            depth_bits = min(max_depth, 21)
            codes = points_to_codes(points, box_size, 1 << depth_bits)
            order = np.argsort(codes, kind="stable")
            tree = cls.__new__(cls)
            tree.box_size = float(box_size)
            if (points.min() < 0) or (points.max() >= box_size):
                raise ValueError(
                    "points must lie inside [0, box_size)^3")
            tree._points = points[order].copy()
            tree._index = order.copy()
            half = box_size / 2.0
            tree.root = OctreeNode(
                center=np.array([half, half, half]), half=half,
                depth=0, start=0, stop=len(points))
            tree._max_points = max_points
            tree._max_depth = max_depth
            tree._split_sorted(tree.root,
                               codes[order].astype(np.uint64),
                               depth_bits)
            return tree
        return cls(points, box_size, max_points, max_depth)

    def _split_sorted(self, node: OctreeNode, codes: np.ndarray,
                      depth_bits: int) -> None:
        """Recursive build over Morton-sorted points: each child's
        members are found with two binary searches on the code array
        instead of a partition pass."""
        if node.count <= self._max_points or \
                node.depth >= self._max_depth:
            return
        shift = np.uint64(3 * (depth_bits - node.depth - 1))
        block = codes[node.start:node.stop]
        octants = (block >> shift) & np.uint64(7)
        bounds = np.searchsorted(octants, np.arange(9))
        quarter = node.half / 2.0
        for o in range(8):
            start = node.start + int(bounds[o])
            stop = node.start + int(bounds[o + 1])
            # Morton bit order: bit 0 = x, bit 1 = y, bit 2 = z.
            offset = np.array([
                quarter if o & 1 else -quarter,
                quarter if o & 2 else -quarter,
                quarter if o & 4 else -quarter,
            ])
            child = OctreeNode(center=node.center + offset,
                               half=quarter, depth=node.depth + 1,
                               start=start, stop=stop)
            node.children.append(child)
            if child.count:
                self._split_sorted(child, codes, depth_bits)

    def _split(self, node: OctreeNode) -> None:
        if node.count <= self._max_points or \
                node.depth >= self._max_depth:
            return
        block = self._points[node.start:node.stop]
        octant = ((block[:, 0] >= node.center[0]).astype(int)
                  | ((block[:, 1] >= node.center[1]).astype(int) << 1)
                  | ((block[:, 2] >= node.center[2]).astype(int) << 2))
        order = np.argsort(octant, kind="stable")
        self._points[node.start:node.stop] = block[order]
        self._index[node.start:node.stop] = \
            self._index[node.start:node.stop][order]
        octant = octant[order]
        bounds = np.searchsorted(octant, np.arange(9))
        quarter = node.half / 2.0
        for o in range(8):
            start = node.start + int(bounds[o])
            stop = node.start + int(bounds[o + 1])
            offset = np.array([
                quarter if o & 1 else -quarter,
                quarter if o & 2 else -quarter,
                quarter if o & 4 else -quarter,
            ])
            child = OctreeNode(center=node.center + offset, half=quarter,
                               depth=node.depth + 1, start=start, stop=stop)
            node.children.append(child)
            if child.count:
                self._split(child)

    # -- traversal helpers --------------------------------------------------

    def nodes(self):
        """Yield every node, depth-first."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def leaf_nodes(self):
        """Yield non-empty leaves."""
        return (n for n in self.nodes() if n.is_leaf and n.count)

    def depth(self) -> int:
        """Deepest node depth."""
        return max((n.depth for n in self.nodes()), default=0)

    # -- queries ------------------------------------------------------------

    def _collect(self, node: OctreeNode, test_cell, test_points,
                 out: list) -> None:
        status = test_cell(node)
        if status == 0:      # disjoint
            return
        if status == 2:      # fully inside
            out.extend(range(node.start, node.stop))
            return
        if node.is_leaf:
            block = self._points[node.start:node.stop]
            if node.count:
                hits = np.nonzero(test_points(block))[0]
                out.extend(node.start + int(i) for i in hits)
            return
        for child in node.children:
            if child.count:
                self._collect(child, test_cell, test_points, out)

    def _finish(self, out: list) -> np.ndarray:
        return (self._index[np.array(out, dtype=int)] if out
                else np.empty(0, dtype=int))

    def query_box(self, lo, hi) -> np.ndarray:
        """Indices of points with ``lo <= p < hi`` per axis."""
        lo = np.asarray(lo, dtype="f8")
        hi = np.asarray(hi, dtype="f8")

        def test_cell(node):
            cmin = node.center - node.half
            cmax = node.center + node.half
            if (cmax <= lo).any() or (cmin >= hi).any():
                return 0
            if (cmin >= lo).all() and (cmax <= hi).all():
                return 2
            return 1

        def test_points(block):
            return ((block >= lo) & (block < hi)).all(axis=1)

        out: list = []
        self._collect(self.root, test_cell, test_points, out)
        return self._finish(out)

    def query_sphere(self, center, radius: float) -> np.ndarray:
        """Indices of points within ``radius`` of ``center``."""
        center = np.asarray(center, dtype="f8")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        r2 = radius * radius

        def test_cell(node):
            # Distance from sphere center to the cell (AABB).
            d = np.maximum(np.abs(center - node.center) - node.half, 0.0)
            if (d ** 2).sum() > r2:
                return 0
            # Farthest cell corner inside the sphere -> fully inside.
            far = np.abs(center - node.center) + node.half
            if (far ** 2).sum() <= r2:
                return 2
            return 1

        def test_points(block):
            return ((block - center) ** 2).sum(axis=1) <= r2

        out: list = []
        self._collect(self.root, test_cell, test_points, out)
        return self._finish(out)

    def query_cone(self, apex, direction, half_angle: float,
                   max_distance: float | None = None) -> np.ndarray:
        """Indices of points inside a (possibly truncated) cone.

        The light-cone primitive of Section 2.3: points ``p`` with the
        angle between ``p - apex`` and ``direction`` at most
        ``half_angle`` (radians), optionally with ``|p - apex| <=
        max_distance``.
        """
        apex = np.asarray(apex, dtype="f8")
        direction = np.asarray(direction, dtype="f8")
        norm = np.linalg.norm(direction)
        if norm == 0:
            raise ValueError("direction must be nonzero")
        if not 0 < half_angle < np.pi:
            raise ValueError("half_angle must be in (0, pi)")
        direction = direction / norm
        cos_half = np.cos(half_angle)

        def test_cell(node):
            # Conservative: the cell's bounding sphere vs cone expanded
            # by the sphere radius (classic cone-sphere test).
            radius = node.half * np.sqrt(3.0)
            v = node.center - apex
            dist = np.linalg.norm(v)
            if max_distance is not None and dist - radius > max_distance:
                return 0
            if dist <= radius:
                return 1
            # Angle between the cell center and the axis, minus the
            # angular radius of the bounding sphere.
            cos_c = float(v @ direction) / dist
            ang = np.arccos(np.clip(cos_c, -1.0, 1.0))
            ang_r = np.arcsin(np.clip(radius / dist, 0.0, 1.0))
            if ang - ang_r > half_angle:
                return 0
            return 1

        def test_points(block):
            v = block - apex
            dist = np.linalg.norm(v, axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                cos_p = (v @ direction) / dist
            inside = np.where(dist == 0, True, cos_p >= cos_half)
            if max_distance is not None:
                inside &= dist <= max_distance
            return inside

        out: list = []
        self._collect(self.root, test_cell, test_points, out)
        return self._finish(out)

    # -- decimation -----------------------------------------------------------

    def decimate(self, depth: int) -> tuple[np.ndarray, np.ndarray]:
        """Hierarchical subsample at an octree level.

        For every non-empty node at ``depth`` (or shallower leaf) one
        representative particle is chosen (the one nearest the cell's
        center of mass) and weighted by the number of original particles
        in that cell — the paper's visualization decimation.

        Returns:
            ``(points, weights)`` — representatives' coordinates and
            particle counts.
        """
        if depth < 0:
            raise ValueError("depth must be >= 0")
        reps: list[np.ndarray] = []
        weights: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.count == 0:
                continue
            if node.depth == depth or node.is_leaf:
                block = self._points[node.start:node.stop]
                com = block.mean(axis=0)
                nearest = int(np.argmin(((block - com) ** 2).sum(axis=1)))
                reps.append(block[nearest])
                weights.append(node.count)
            else:
                stack.extend(node.children)
        if not reps:
            return np.empty((0, 3)), np.empty(0, dtype=int)
        return np.stack(reps), np.array(weights, dtype=int)
