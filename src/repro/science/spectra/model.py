"""Synthetic astronomical spectra.

The paper's spectrum use case (Section 2.2) works on vectors of
wavelength bins (min/max/center), flux, flux error and integer flags,
in one, two (slit) and three (integral-field) dimensions.  Real survey
spectra (SDSS et al.) are not available offline, so this module
generates physically-shaped synthetic ones: a power-law continuum, a
set of Gaussian emission/absorption lines drawn from a fixed line list,
redshift, noise, and flag vectors marking bad bins — everything the
processing pipeline downstream needs to exercise the same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.sqlarray import SqlArray

__all__ = ["Spectrum", "SpectrumGenerator", "LINE_LIST"]

#: Rest-frame line centers (Angstrom) and relative strengths — a small
#: galaxy-like line list (positive = emission, negative = absorption).
LINE_LIST = (
    (4861.0, 0.8),    # H-beta
    (5007.0, 1.2),    # [O III]
    (6563.0, 2.0),    # H-alpha
    (6583.0, 0.6),    # [N II]
    (3727.0, 1.0),    # [O II]
    (5175.0, -0.5),   # Mg b absorption
    (5893.0, -0.4),   # Na D absorption
)


@dataclass
class Spectrum:
    """One spectrum as SQL array vectors (the paper's storage model).

    Attributes:
        wave: Bin-center wavelengths (float64 vector) — stored per
            spectrum because "the wavelength scale can change from
            observation to observation".
        flux: Measured flux per bin.
        error: 1-sigma flux error per bin.
        flags: int16 vector, nonzero where the bin is bad.
        redshift: True redshift used to generate it.
        class_id: Index of the template class that generated it.
    """

    wave: SqlArray
    flux: SqlArray
    error: SqlArray
    flags: SqlArray
    redshift: float = 0.0
    class_id: int = 0

    @property
    def n_bins(self) -> int:
        return self.wave.shape[0]

    def good_mask(self) -> np.ndarray:
        """Boolean mask of usable bins (flag == 0)."""
        return self.flags.to_numpy() == 0

    def bin_edges(self) -> np.ndarray:
        """Bin edges reconstructed from centers (midpoints, clamped at
        the ends)."""
        centers = self.wave.to_numpy()
        mid = 0.5 * (centers[1:] + centers[:-1])
        first = centers[0] - (mid[0] - centers[0])
        last = centers[-1] + (centers[-1] - mid[-1])
        return np.concatenate([[first], mid, [last]])


class SpectrumGenerator:
    """Reproducible synthetic spectrum source.

    Args:
        n_bins: Wavelength bins per 1-D spectrum.
        wave_min / wave_max: Observed wavelength range (Angstrom).
        n_classes: Distinct spectral classes (continuum slope + line
            strength patterns); classification tests recover these.
        seed: RNG seed.
    """

    def __init__(self, n_bins: int = 256, wave_min: float = 3800.0,
                 wave_max: float = 9200.0, n_classes: int = 3,
                 seed: int = 0):
        if n_bins < 16:
            raise ValueError("n_bins must be at least 16")
        if n_classes < 1:
            raise ValueError("n_classes must be at least 1")
        self.n_bins = n_bins
        self.wave_min = wave_min
        self.wave_max = wave_max
        self.n_classes = n_classes
        self._rng = np.random.default_rng(seed)
        class_rng = np.random.default_rng(seed + 1)
        # Per-class continuum slope and line-strength multipliers.
        self._slopes = class_rng.uniform(-1.5, 0.5, n_classes)
        self._line_scales = class_rng.uniform(
            0.3, 1.7, (n_classes, len(LINE_LIST)))

    def _wavelength_grid(self, jitter: bool) -> np.ndarray:
        """Log-linear grid; per-spectrum jitter models the changing
        wavelength solutions the paper calls out."""
        grid = np.geomspace(self.wave_min, self.wave_max, self.n_bins)
        if jitter:
            shift = self._rng.uniform(-0.3, 0.3)
            grid = grid * (1.0 + shift * 1e-4)
        return grid

    def make(self, class_id: int | None = None,
             redshift: float | None = None,
             snr: float = 20.0, bad_fraction: float = 0.02) -> Spectrum:
        """Generate one 1-D spectrum.

        Args:
            class_id: Template class (random if ``None``).
            redshift: Redshift (drawn from U[0, 0.2] if ``None``).
            snr: Signal-to-noise ratio of the continuum.
            bad_fraction: Expected fraction of flagged (bad) bins.
        """
        rng = self._rng
        if class_id is None:
            class_id = int(rng.integers(self.n_classes))
        if not 0 <= class_id < self.n_classes:
            raise ValueError(f"class_id {class_id} out of range")
        if redshift is None:
            redshift = float(rng.uniform(0.0, 0.2))

        wave = self._wavelength_grid(jitter=True)
        flux = self.template_flux(class_id, redshift, wave)

        sigma = np.abs(flux).mean() / snr
        noisy = flux + rng.normal(0.0, sigma, self.n_bins)
        error = np.full(self.n_bins, sigma)

        flags = np.zeros(self.n_bins, dtype=np.int16)
        n_bad = rng.binomial(self.n_bins, bad_fraction)
        if n_bad:
            bad = rng.choice(self.n_bins, size=n_bad, replace=False)
            flags[bad] = 1
            noisy[bad] = rng.normal(0.0, 10 * sigma, n_bad)

        return Spectrum(
            wave=SqlArray.from_numpy(wave, "float64"),
            flux=SqlArray.from_numpy(noisy, "float64"),
            error=SqlArray.from_numpy(error, "float64"),
            flags=SqlArray.from_numpy(flags, "int16"),
            redshift=redshift,
            class_id=class_id,
        )

    def template_flux(self, class_id: int, redshift: float,
                      wave: np.ndarray) -> np.ndarray:
        """Noise-free template flux evaluated on a wavelength grid."""
        rest = np.asarray(wave, dtype="f8") / (1.0 + redshift)
        continuum = (rest / 5500.0) ** self._slopes[class_id]
        flux = continuum.copy()
        for (center, strength), scale in zip(
                LINE_LIST, self._line_scales[class_id]):
            width = 4.0  # Angstrom, rest frame
            flux += (strength * scale
                     * np.exp(-0.5 * ((rest - center) / width) ** 2))
        return flux

    def make_batch(self, count: int, **kwargs) -> list[Spectrum]:
        """Generate several spectra with the same settings."""
        return [self.make(**kwargs) for _ in range(count)]

    # -- higher-dimensional spectra (Section 2.2) ----------------------------

    def make_slit(self, n_positions: int = 16,
                  class_id: int | None = None) -> tuple[SqlArray, SqlArray,
                                                        SqlArray]:
        """A two-dimensional (slit) spectrum.

        Returns ``(wave, position, flux2d)`` — "storing two dimensional
        spectra requires two axis vectors: wavelength and position, and
        a two dimensional array of the flux".  Flux fades with angular
        radius like an extended source.
        """
        base = self.make(class_id=class_id, snr=1e9, bad_fraction=0.0)
        wave = base.wave.to_numpy()
        positions = np.linspace(-1.0, 1.0, n_positions)
        profile = np.exp(-0.5 * (positions / 0.4) ** 2)
        flux2d = np.outer(wave * 0 + 1, profile) * \
            base.flux.to_numpy()[:, None]
        noise = self._rng.normal(0, 0.02, flux2d.shape)
        return (SqlArray.from_numpy(wave),
                SqlArray.from_numpy(positions),
                SqlArray.from_numpy(np.asfortranarray(flux2d + noise)))

    def make_ifu_cube(self, n_side: int = 8,
                      class_id: int | None = None) -> tuple[SqlArray,
                                                            SqlArray]:
        """A three-dimensional integral-field data cube.

        Returns ``(wave, cube)`` with cube shape
        ``(n_bins, n_side, n_side)`` — "one wavelength axis and two
        position axes".
        """
        base = self.make(class_id=class_id, snr=1e9, bad_fraction=0.0)
        wave = base.wave.to_numpy()
        y, x = np.meshgrid(np.linspace(-1, 1, n_side),
                           np.linspace(-1, 1, n_side), indexing="ij")
        profile = np.exp(-(x ** 2 + y ** 2) / (2 * 0.4 ** 2))
        cube = base.flux.to_numpy()[:, None, None] * profile[None]
        cube = cube + self._rng.normal(0, 0.02, cube.shape)
        return (SqlArray.from_numpy(wave),
                SqlArray.from_numpy(np.asfortranarray(cube)))
