"""Flux-conserving spectrum resampling.

"Resampling the spectra to a common wavelength grid is also very
important ... the resampling should be done such a way that the
integrated flux in any wavelength range remains the same."
(paper Section 2.2.)

:func:`resample_flux` treats the input spectrum as a piecewise-constant
flux *density* over its bins and computes exact bin-overlap integrals
onto the target grid, which conserves the integral over any union of
target bins by construction.  A higher-order (piecewise-linear density)
variant is provided for "different processing steps [that] might require
resampling using higher order functions".
"""

from __future__ import annotations

import numpy as np

from ...core.errors import ShapeError
from ...core.sqlarray import SqlArray

__all__ = ["overlap_matrix", "resample_flux", "resample_spectrum",
           "common_grid"]


def _check_edges(edges: np.ndarray, what: str) -> np.ndarray:
    edges = np.asarray(edges, dtype="f8")
    if edges.ndim != 1 or edges.shape[0] < 2:
        raise ShapeError(f"{what} must be a 1-D array of >= 2 edges")
    if not (np.diff(edges) > 0).all():
        raise ShapeError(f"{what} must be strictly increasing")
    return edges


def overlap_matrix(src_edges: np.ndarray,
                   dst_edges: np.ndarray) -> np.ndarray:
    """Fractional bin-overlap matrix ``W`` with
    ``W[j, i] = |dst_j ∩ src_i| / |dst_j|``.

    Rows sum to 1 wherever a target bin is fully covered by the source
    grid, so ``W @ density`` is the average density over each target
    bin — the flux-conserving rebinning operator.
    """
    src = _check_edges(src_edges, "source edges")
    dst = _check_edges(dst_edges, "target edges")
    lo = np.maximum(dst[:-1, None], src[None, :-1])
    hi = np.minimum(dst[1:, None], src[None, 1:])
    overlap = np.clip(hi - lo, 0.0, None)
    widths = (dst[1:] - dst[:-1])[:, None]
    return overlap / widths


def resample_flux(src_edges, flux, dst_edges,
                  order: int = 0) -> np.ndarray:
    """Rebin a flux-density vector onto a new grid, conserving the
    integrated flux over any range covered by both grids.

    Args:
        src_edges: Source bin edges, length ``len(flux) + 1``.
        flux: Flux density per source bin.
        dst_edges: Target bin edges.
        order: 0 for piecewise-constant density (exact conservation);
            1 for piecewise-linear density (higher order, conservative
            within each source bin).

    Target bins not covered by the source grid get zero.
    """
    flux = np.asarray(flux, dtype="f8")
    src = _check_edges(src_edges, "source edges")
    if flux.shape[0] != src.shape[0] - 1:
        raise ShapeError(
            f"flux has {flux.shape[0]} bins for {src.shape[0] - 1} "
            "source bin intervals")
    if order == 0:
        return overlap_matrix(src, dst_edges) @ flux
    if order != 1:
        raise ShapeError("order must be 0 or 1")
    # Piecewise-linear density: subdivide each source bin in two with
    # slopes limited so per-bin integrals are preserved exactly, then
    # rebin the refined piecewise-constant representation.
    centers = 0.5 * (src[:-1] + src[1:])
    slopes = np.gradient(flux, centers)
    # Limit the slope so both half-bin averages stay within the
    # neighbours' range (avoids new extrema, like a minmod limiter).
    half = 0.5 * (src[1:] - src[:-1])
    left_avg = flux - slopes * half / 2
    right_avg = flux + slopes * half / 2
    refined_edges = np.sort(np.concatenate([src, centers]))
    refined = np.empty(2 * flux.shape[0])
    refined[0::2] = left_avg
    refined[1::2] = right_avg
    return overlap_matrix(refined_edges, dst_edges) @ refined


def resample_spectrum(wave: SqlArray, flux: SqlArray,
                      dst_edges: np.ndarray,
                      order: int = 0) -> SqlArray:
    """Array-typed wrapper: resample a (wave, flux) spectrum onto target
    bin edges; returns the new flux vector.

    Bin edges for the source are reconstructed from the wavelength
    centers (midpoint rule).
    """
    centers = wave.to_numpy()
    if centers.ndim != 1 or flux.rank != 1:
        raise ShapeError("wave and flux must be vectors")
    if centers.shape[0] != flux.shape[0]:
        raise ShapeError("wave and flux must have the same length")
    mid = 0.5 * (centers[1:] + centers[:-1])
    first = centers[0] - (mid[0] - centers[0])
    last = centers[-1] + (centers[-1] - mid[-1])
    src_edges = np.concatenate([[first], mid, [last]])
    out = resample_flux(src_edges, flux.to_numpy(), dst_edges, order)
    return SqlArray.from_numpy(out)


def common_grid(spectra, n_bins: int | None = None) -> np.ndarray:
    """Build a shared log-linear target grid covering the intersection
    of a set of spectra (bin edges returned).

    Using the intersection keeps every target bin covered by every
    spectrum, so the conservative rebinning introduces no edge zeros.
    """
    los, his, sizes = [], [], []
    for s in spectra:
        w = s.wave.to_numpy()
        los.append(w[0])
        his.append(w[-1])
        sizes.append(w.shape[0])
    lo, hi = max(los), min(his)
    if lo >= hi:
        raise ShapeError("spectra have no common wavelength range")
    if n_bins is None:
        n_bins = min(sizes)
    return np.geomspace(lo, hi, n_bins + 1)
