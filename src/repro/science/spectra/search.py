"""Similar-spectrum search.

Paper Section 2.2: "When all spectra are expanded over a given
orthogonal basis and coefficients are stored in a data column as a
vector, similar spectrum search can be conducted the following way: One
builds a kd-tree over the coefficients so nearest neighbor searches can
be executed very quickly.  A 'query' spectrum is expanded on the same
basis on the fly and the nearest neighbors of its coefficient vector
are looked up using the kd-tree."

:class:`SpectrumSearchService` implements exactly that, optionally
persisting the coefficient vectors as array blobs in a SQLite database
(the "stored in a data column as a vector" part).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...core.errors import AggregateError
from ...core.sqlarray import SqlArray
from ...spatial.kdtree import KdTree
from .classify import SpectrumBasis
from .model import Spectrum

__all__ = ["SpectrumSearchService"]


class SpectrumSearchService:
    """kd-tree nearest-neighbour search over basis coefficients.

    Args:
        basis: A fitted (or to-be-fitted) :class:`SpectrumBasis`.
        conn: Optional :class:`repro.sqlbind.ArrayConnection`; when
            given, coefficient vectors are also stored in a
            ``spectrum_coeffs`` table as array blobs.
    """

    def __init__(self, basis: SpectrumBasis | None = None, conn=None):
        self.basis = basis or SpectrumBasis()
        self.conn = conn
        self._tree: KdTree | None = None
        self._spectra: list[Spectrum] = []
        if conn is not None:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS spectrum_coeffs "
                "(id INTEGER PRIMARY KEY, class_id INTEGER, "
                "redshift REAL, coeffs BLOB)")

    @property
    def size(self) -> int:
        return len(self._spectra)

    def build(self, spectra: Sequence[Spectrum]) -> "SpectrumSearchService":
        """Fit the basis (if needed), expand every spectrum, and build
        the kd-tree over the coefficients."""
        if len(spectra) < 2:
            raise AggregateError("need at least two spectra to index")
        if self.basis.pca is None:
            self.basis.fit(spectra)
        self._spectra = list(spectra)
        coeffs = self.basis.expand_many(spectra)
        self._tree = KdTree(coeffs)
        if self.conn is not None:
            self.conn.execute("DELETE FROM spectrum_coeffs")
            for i, (s, c) in enumerate(zip(spectra, coeffs)):
                blob = SqlArray.from_numpy(c).to_blob()
                self.conn.execute(
                    "INSERT INTO spectrum_coeffs VALUES (?, ?, ?, ?)",
                    (i, s.class_id, s.redshift, blob))
        return self

    def search(self, query: Spectrum, k: int = 5
               ) -> list[tuple[int, float, Spectrum]]:
        """Find the ``k`` most similar indexed spectra.

        The query spectrum is expanded on the basis on the fly (flags
        respected) and its neighbours looked up in the kd-tree.

        Returns:
            ``(index, distance, spectrum)`` triples by increasing
            coefficient-space distance.
        """
        if self._tree is None:
            raise AggregateError("the index is not built yet")
        coeffs = self.basis.expand(query).to_numpy()
        dists, idx = self._tree.query(coeffs, k=min(k, self.size))
        return [(int(i), float(d), self._spectra[int(i)])
                for d, i in zip(dists, idx)]

    def search_stored(self, query: Spectrum, k: int = 5
                      ) -> list[tuple[int, float]]:
        """Same search answered from the SQLite-stored coefficient
        blobs (brute force in SQL) — a cross-check that the stored
        vectors round-trip, and the no-index baseline."""
        if self.conn is None:
            raise AggregateError("no SQLite connection configured")
        coeffs = self.basis.expand(query).to_numpy()
        rows = self.conn.execute(
            "SELECT id, coeffs FROM spectrum_coeffs").fetchall()
        scored = []
        for sid, blob in rows:
            stored = SqlArray.from_blob(blob).to_numpy()
            scored.append((float(np.linalg.norm(stored - coeffs)), sid))
        scored.sort()
        return [(sid, d) for d, sid in scored[:k]]
