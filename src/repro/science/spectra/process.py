"""Spectrum processing primitives.

The "typical processing steps" of paper Section 2.2: normalization
(integrate the flux in a window, scale), wavelength-dependent
corrections ("multiplying the flux vector with a number that is a
function of the wavelength"), composite building (weighted averaging of
resampled spectra — "could be very easily solved using an aggregate
function"), and the axis reductions higher-dimensional spectra need
("summation over certain axes to get ... the overall spectrum of an
object that was originally observed with an integral field
spectrograph").
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ...core import ops
from ...core.aggregates import average_arrays
from ...core.errors import ShapeError
from ...core.sqlarray import SqlArray
from .model import Spectrum
from .resample import common_grid, resample_spectrum

__all__ = [
    "integrate_flux",
    "normalize",
    "apply_correction",
    "collapse_cube",
    "extract_slit_spectrum",
    "slit_spatial_profile",
    "make_composite",
]


def integrate_flux(wave: SqlArray, flux: SqlArray,
                   lo: float, hi: float) -> float:
    """Integrated flux over ``[lo, hi]`` (trapezoidal on bin centers,
    clipped to the window — the normalization integral)."""
    w = wave.to_numpy()
    f = flux.to_numpy()
    if w.shape != f.shape or wave.rank != 1:
        raise ShapeError("wave and flux must be equal-length vectors")
    if hi <= lo:
        raise ShapeError(f"empty integration window [{lo}, {hi}]")
    inside = (w >= lo) & (w <= hi)
    if inside.sum() < 2:
        raise ShapeError(
            f"integration window [{lo}, {hi}] covers fewer than two "
            "wavelength bins")
    return float(np.trapezoid(f[inside], w[inside]))


def normalize(spectrum: Spectrum, lo: float, hi: float) -> Spectrum:
    """Scale a spectrum so its integrated flux over ``[lo, hi]`` is 1.

    Error scales with the flux; flags and wavelengths are untouched.
    """
    total = integrate_flux(spectrum.wave, spectrum.flux, lo, hi)
    if total == 0:
        raise ShapeError("cannot normalize: zero integrated flux")
    factor = 1.0 / total
    return Spectrum(
        wave=spectrum.wave,
        flux=ops.scale(spectrum.flux, factor),
        error=ops.scale(spectrum.error, abs(factor)),
        flags=spectrum.flags,
        redshift=spectrum.redshift,
        class_id=spectrum.class_id,
    )


def apply_correction(spectrum: Spectrum,
                     correction: Callable[[np.ndarray], np.ndarray]
                     ) -> Spectrum:
    """Multiply the flux by a wavelength-dependent correction function
    (extinction, flux calibration, ...)."""
    w = spectrum.wave.to_numpy()
    factor = np.asarray(correction(w), dtype="f8")
    if factor.shape != w.shape:
        raise ShapeError(
            "correction function must return one factor per bin")
    fac_arr = SqlArray.from_numpy(factor)
    return Spectrum(
        wave=spectrum.wave,
        flux=ops.multiply(spectrum.flux, fac_arr),
        error=ops.multiply(spectrum.error,
                           SqlArray.from_numpy(np.abs(factor))),
        flags=spectrum.flags,
        redshift=spectrum.redshift,
        class_id=spectrum.class_id,
    )


def collapse_cube(cube: SqlArray, axis_to_keep: int = 0) -> SqlArray:
    """Sum an IFU cube over its spatial axes, keeping the wavelength
    axis — "the overall spectrum of an object that was originally
    observed with an integral field spectrograph"."""
    if cube.rank < 2:
        raise ShapeError("collapse_cube expects a rank >= 2 array")
    if not 0 <= axis_to_keep < cube.rank:
        raise ShapeError(f"axis {axis_to_keep} out of range")
    out = cube
    # Repeatedly sum over the highest remaining axis that is not the
    # kept one (axis numbering shifts as ranks drop).
    while out.rank > 1:
        axis = out.rank - 1 if out.rank - 1 != axis_to_keep else \
            out.rank - 2
        out = ops.aggregate_axis(out, "sum", axis)
        if axis < axis_to_keep:
            axis_to_keep -= 1
    return out


def extract_slit_spectrum(flux2d: SqlArray, position: int) -> SqlArray:
    """One spatial position's spectrum out of a 2-D slit array.

    Section 2.2: "different fluxes are measured depending on the
    position along this slit" — this is the Subarray-with-collapse
    retrieval of a single column, the paper's own example of why the
    collapse flag exists.
    """
    if flux2d.rank != 2:
        raise ShapeError("slit flux must be a 2-D array")
    n_wave, n_pos = flux2d.shape
    if not 0 <= position < n_pos:
        raise ShapeError(
            f"position {position} out of range [0, {n_pos})")
    return ops.subarray(flux2d, (0, position), (n_wave, 1),
                        collapse=True)


def slit_spatial_profile(flux2d: SqlArray) -> SqlArray:
    """Total flux per slit position (integrate over wavelength) — the
    source's spatial profile along the slit."""
    if flux2d.rank != 2:
        raise ShapeError("slit flux must be a 2-D array")
    return ops.aggregate_axis(flux2d, "sum", 0)


def make_composite(spectra: Sequence[Spectrum],
                   n_bins: int | None = None,
                   norm_window: tuple[float, float] | None = None
                   ) -> tuple[np.ndarray, SqlArray]:
    """Build a composite: resample to a common grid, normalize, and
    average with inverse-variance weights.

    This is the full Section 2.2 recipe ("once resampled to common
    grid, spectra can be averaged to get composites with high signal to
    noise ratio").  Returns ``(grid_edges, composite_flux)``.
    """
    if not spectra:
        raise ShapeError("make_composite needs at least one spectrum")
    edges = common_grid(spectra, n_bins)
    if norm_window is None:
        norm_window = (edges[len(edges) // 4],
                       edges[3 * len(edges) // 4])
    resampled = []
    weights = []
    for s in spectra:
        s = normalize(s, *norm_window)
        flux = resample_spectrum(s.wave, s.flux, edges)
        err = s.error.to_numpy()
        good = s.good_mask()
        snr2 = float((1.0 / np.maximum(err[good], 1e-30) ** 2).mean()) \
            if good.any() else 0.0
        resampled.append(flux)
        weights.append(snr2)
    if not any(w > 0 for w in weights):
        weights = [1.0] * len(resampled)
    composite = average_arrays(resampled, weights)
    return edges, composite
