"""Astronomical spectrum use case (paper Section 2.2): synthetic
spectra, flux-conserving resampling, normalization/corrections/
composites, PCA classification with masked expansion, and kd-tree
similar-spectrum search."""

from .archive import SpectrumArchive
from .classify import SpectrumBasis, classify_nearest_centroid
from .model import LINE_LIST, Spectrum, SpectrumGenerator
from .process import (
    apply_correction,
    collapse_cube,
    extract_slit_spectrum,
    integrate_flux,
    make_composite,
    normalize,
    slit_spatial_profile,
)
from .resample import (
    common_grid,
    overlap_matrix,
    resample_flux,
    resample_spectrum,
)
from .search import SpectrumSearchService

__all__ = [
    "Spectrum",
    "SpectrumGenerator",
    "LINE_LIST",
    "overlap_matrix",
    "resample_flux",
    "resample_spectrum",
    "common_grid",
    "integrate_flux",
    "normalize",
    "apply_correction",
    "collapse_cube",
    "extract_slit_spectrum",
    "slit_spatial_profile",
    "make_composite",
    "SpectrumBasis",
    "classify_nearest_centroid",
    "SpectrumSearchService",
    "SpectrumArchive",
]
