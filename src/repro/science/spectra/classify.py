"""PCA-based spectrum classification.

The Section 2.2 pipeline: resample + normalize every spectrum, run PCA
(correlation matrix + SVD), expand each spectrum on the resulting basis
— by masked least squares when flag vectors mark bad bins — and use the
coefficient vectors for classification and similarity search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...core.errors import AggregateError, ShapeError
from ...core.sqlarray import SqlArray
from ...mathlib.pca import PCA
from .model import Spectrum
from .process import normalize
from .resample import common_grid, overlap_matrix, resample_spectrum

__all__ = ["SpectrumBasis", "classify_nearest_centroid"]


@dataclass
class _Prepared:
    flux: SqlArray
    mask: SqlArray


class SpectrumBasis:
    """A PCA basis fitted to a set of spectra.

    Args:
        n_components: Basis size.
        n_bins: Common-grid resolution (defaults to the smallest input
            spectrum).

    After :meth:`fit`, :meth:`expand` turns any spectrum into a
    coefficient vector on the shared basis; flagged bins are excluded
    through the masked least-squares path.
    """

    def __init__(self, n_components: int = 5, n_bins: int | None = None):
        self.n_components = n_components
        self.n_bins = n_bins
        self.edges: np.ndarray | None = None
        self.pca: PCA | None = None
        self._norm_window: tuple[float, float] | None = None

    def fit(self, spectra: Sequence[Spectrum]) -> "SpectrumBasis":
        """Resample, normalize and PCA-decompose the training set."""
        if len(spectra) < 2:
            raise AggregateError("need at least two spectra to fit")
        self.edges = common_grid(spectra, self.n_bins)
        self._norm_window = (float(self.edges[len(self.edges) // 4]),
                             float(self.edges[3 * len(self.edges) // 4]))
        prepared = [self._prepare(s) for s in spectra]
        self.pca = PCA(self.n_components).fit([p.flux for p in prepared])
        return self

    def _require_fitted(self) -> None:
        if self.pca is None:
            raise AggregateError("basis is not fitted yet")

    def _prepare(self, spectrum: Spectrum) -> _Prepared:
        """Normalize and resample one spectrum onto the common grid,
        carrying its flag mask along (a grid bin is good only if every
        contributing source bin is good)."""
        s = normalize(spectrum, *self._norm_window)
        flux = resample_spectrum(s.wave, s.flux, self.edges)
        w = overlap_matrix(s.bin_edges(), self.edges)
        bad = (~s.good_mask()).astype("f8")
        grid_bad = w @ bad
        mask = (grid_bad < 1e-12).astype(np.int16)
        return _Prepared(flux=flux,
                         mask=SqlArray.from_numpy(mask, "int16"))

    def expand(self, spectrum: Spectrum) -> SqlArray:
        """Coefficient vector of one spectrum on the basis.

        Uses plain dot products when no grid bin is flagged; otherwise
        the masked least-squares expansion (the paper's point that "dot
        product cannot be used" with flags).
        """
        self._require_fitted()
        p = self._prepare(spectrum)
        if bool((p.mask.to_numpy() == 1).all()):
            return self.pca.transform(p.flux)
        return self.pca.transform_masked(p.flux, p.mask)

    def expand_many(self, spectra: Sequence[Spectrum]) -> np.ndarray:
        """Coefficients of several spectra as an ``(n, k)`` array."""
        return np.stack([self.expand(s).to_numpy() for s in spectra])

    def reconstruct(self, coefficients: SqlArray) -> SqlArray:
        """Flux on the common grid rebuilt from coefficients."""
        self._require_fitted()
        return self.pca.reconstruct(coefficients)


def classify_nearest_centroid(
        train_coeffs: np.ndarray, train_labels: Sequence[int],
        query_coeffs: np.ndarray) -> np.ndarray:
    """Nearest-centroid classification in coefficient space.

    A deliberately simple classifier: the point of the paper's pipeline
    is that once spectra are reduced to coefficient vectors inside the
    database, classification and search are ordinary vector problems.
    """
    train_coeffs = np.asarray(train_coeffs, dtype="f8")
    query_coeffs = np.atleast_2d(np.asarray(query_coeffs, dtype="f8"))
    labels = np.asarray(list(train_labels))
    if train_coeffs.shape[0] != labels.shape[0]:
        raise ShapeError("one label per training vector required")
    classes = np.unique(labels)
    centroids = np.stack([train_coeffs[labels == c].mean(axis=0)
                          for c in classes])
    d2 = ((query_coeffs[:, None, :] - centroids[None]) ** 2).sum(axis=2)
    return classes[np.argmin(d2, axis=1)]
