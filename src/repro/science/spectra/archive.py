"""A spectrum archive: the "Spectrum Services" of Section 2.2 over SQL.

The paper's group "developed Spectrum Services for the Virtual
Observatory which already has a prototype of the vector data type
implemented, though it can only handle one dimensional arrays and the
implementation is purely client side".  This archive is the upgraded
version the paper argues for: every spectrum stored as array blobs in
the database, with processing running through the in-database array
functions —

* one row per spectrum (wave/flux/error/flags blobs + metadata),
* retrieval by id or redshift range,
* composite building *in SQL* via the ``FloatArray_AvgAgg`` aggregate
  grouped by redshift bin,
* PCA + kd-tree similarity search layered over the stored rows.
"""

from __future__ import annotations

from typing import Sequence

from ...core.errors import AggregateError
from ...core.sqlarray import SqlArray
from .classify import SpectrumBasis
from .model import Spectrum
from .search import SpectrumSearchService

__all__ = ["SpectrumArchive"]


class SpectrumArchive:
    """SQL-backed spectrum storage and processing.

    Args:
        conn: A :class:`repro.sqlbind.ArrayConnection`.
    """

    def __init__(self, conn):
        self.conn = conn
        conn.execute(
            "CREATE TABLE IF NOT EXISTS spectra ("
            " id INTEGER PRIMARY KEY, class_id INTEGER,"
            " redshift REAL, wave BLOB, flux BLOB, err BLOB,"
            " flags BLOB)")
        self._search: SpectrumSearchService | None = None

    # -- ingest ------------------------------------------------------------

    def add(self, spectrum: Spectrum) -> int:
        """Store one spectrum; returns its archive id."""
        cur = self.conn.execute(
            "INSERT INTO spectra (class_id, redshift, wave, flux, err,"
            " flags) VALUES (?, ?, ?, ?, ?, ?)",
            (spectrum.class_id, spectrum.redshift,
             spectrum.wave.to_blob(), spectrum.flux.to_blob(),
             spectrum.error.to_blob(), spectrum.flags.to_blob()))
        return int(cur.lastrowid)

    def add_many(self, spectra: Sequence[Spectrum]) -> list[int]:
        """Store several spectra; returns their ids."""
        return [self.add(s) for s in spectra]

    @property
    def size(self) -> int:
        return self.conn.execute(
            "SELECT COUNT(*) FROM spectra").fetchone()[0]

    # -- retrieval ------------------------------------------------------------

    def _row_to_spectrum(self, row) -> Spectrum:
        class_id, redshift, wave, flux, err, flags = row
        return Spectrum(
            wave=SqlArray.from_blob(wave),
            flux=SqlArray.from_blob(flux),
            error=SqlArray.from_blob(err),
            flags=SqlArray.from_blob(flags),
            redshift=redshift,
            class_id=class_id,
        )

    def get(self, spectrum_id: int) -> Spectrum:
        """Load one spectrum by archive id."""
        row = self.conn.execute(
            "SELECT class_id, redshift, wave, flux, err, flags "
            "FROM spectra WHERE id = ?", (spectrum_id,)).fetchone()
        if row is None:
            raise KeyError(f"no spectrum with id {spectrum_id}")
        return self._row_to_spectrum(row)

    def by_redshift(self, z_min: float, z_max: float) -> list[Spectrum]:
        """Spectra with redshift in ``[z_min, z_max)``."""
        rows = self.conn.execute(
            "SELECT class_id, redshift, wave, flux, err, flags "
            "FROM spectra WHERE redshift >= ? AND redshift < ? "
            "ORDER BY id", (z_min, z_max)).fetchall()
        return [self._row_to_spectrum(r) for r in rows]

    def all_spectra(self) -> list[Spectrum]:
        rows = self.conn.execute(
            "SELECT class_id, redshift, wave, flux, err, flags "
            "FROM spectra ORDER BY id").fetchall()
        return [self._row_to_spectrum(r) for r in rows]

    # -- in-SQL processing -------------------------------------------------------

    def sql_composites_by_redshift(self, bin_width: float
                                   ) -> list[tuple[int, int, SqlArray]]:
        """Composite flux per redshift bin, computed *inside SQL*.

        The exact query shape Section 2.2 motivates: "the averaging
        could be very easily solved using an aggregate function.
        [It] would allow us to group spectra by certain parameters
        (for example redshift of the observed galaxies) so composite
        spectra of objects at different cosmological distances could be
        computed with a simple SQL query."

        All stored spectra must share one grid length (resample before
        ingestion otherwise).  Returns ``(bin, count, composite)``
        rows.
        """
        if bin_width <= 0:
            raise AggregateError("bin_width must be positive")
        rows = self.conn.execute(
            "SELECT CAST(redshift / ? AS INTEGER) AS zbin, COUNT(*), "
            "FloatArray_AvgAgg(flux) FROM spectra "
            "GROUP BY zbin ORDER BY zbin", (bin_width,)).fetchall()
        return [(int(zbin), int(count), SqlArray.from_blob(blob))
                for zbin, count, blob in rows]

    def sql_flux_statistics(self) -> dict:
        """Archive-wide statistics through the array UDFs."""
        row = self.conn.execute(
            "SELECT COUNT(*), AVG(FloatArray_Mean(flux)), "
            "MIN(FloatArray_Min(flux)), MAX(FloatArray_Max(flux)) "
            "FROM spectra").fetchone()
        return {"count": row[0], "mean_flux": row[1],
                "min_flux": row[2], "max_flux": row[3]}

    # -- search ------------------------------------------------------------

    def build_search_index(self, n_components: int = 5,
                           n_bins: int = 128) -> None:
        """Fit a PCA basis over the archive and build the kd-tree."""
        spectra = self.all_spectra()
        self._search = SpectrumSearchService(
            SpectrumBasis(n_components, n_bins), conn=self.conn)
        self._search.build(spectra)

    def find_similar(self, query: Spectrum, k: int = 5
                     ) -> list[tuple[int, float, Spectrum]]:
        """k most similar archived spectra (requires a built index)."""
        if self._search is None:
            raise AggregateError(
                "call build_search_index() before find_similar()")
        return self._search.search(query, k)
