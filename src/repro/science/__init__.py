"""The paper's three scientific use cases, end to end (Section 2):
:mod:`~repro.science.turbulence` (2.1), :mod:`~repro.science.spectra`
(2.2), and :mod:`~repro.science.nbody` (2.3)."""

from . import nbody, spectra, turbulence

__all__ = ["turbulence", "spectra", "nbody"]
