"""The N-body particle database: bucket rows of array blobs in SQL.

Paper Section 2.3's storage plan: storing 1.6 trillion particles row by
row "does not seem feasible", so particles are grouped "an order of a
few thousand particles per bucket" along a space-filling curve, with
each bucket one table row holding ID/position/velocity arrays, keyed by
"a hash bucket ID, a time step, and simulation ID".

:class:`ParticleDatabase` is that table over SQLite: one row per
``(sim, step, bucket)`` with three array blobs.  Spatial retrieval
("retrieve points from within ... geometric primitives") works by
enumerating the z-order cells a box overlaps, pulling only those bucket
rows, and filtering inside the decoded arrays — array-based data access
for individual particles, exactly as the paper predicts.
"""

from __future__ import annotations

import numpy as np

from ...core.sqlarray import SqlArray
from ...spatial.zorder import encode3
from .snapshots import Snapshot, bucketize

__all__ = ["ParticleDatabase"]


class ParticleDatabase:
    """Bucketed particle storage over an array-aware SQLite connection.

    Args:
        conn: A :class:`repro.sqlbind.ArrayConnection`.
        cells_per_axis: Z-order grid resolution used for bucketing.
    """

    def __init__(self, conn, cells_per_axis: int = 4):
        if cells_per_axis < 1:
            raise ValueError("cells_per_axis must be >= 1")
        self.conn = conn
        self.cells_per_axis = cells_per_axis
        conn.execute(
            "CREATE TABLE IF NOT EXISTS particle_buckets ("
            " sim INTEGER, step INTEGER, bucket INTEGER,"
            " ids BLOB, pos BLOB, vel BLOB,"
            " PRIMARY KEY (sim, step, bucket))")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS snapshot_meta ("
            " sim INTEGER, step INTEGER, growth REAL, box_size REAL,"
            " n_particles INTEGER, PRIMARY KEY (sim, step))")

    # -- writes ------------------------------------------------------------

    def store_snapshot(self, snapshot: Snapshot) -> int:
        """Bucketize and store one snapshot; returns the bucket count."""
        buckets = bucketize(snapshot, self.cells_per_axis)
        for b in buckets:
            self.conn.execute(
                "INSERT INTO particle_buckets VALUES (?, ?, ?, ?, ?, ?)",
                (b.sim_id, b.step, b.bucket_id, b.ids.to_blob(),
                 b.positions.to_blob(), b.velocities.to_blob()))
        self.conn.execute(
            "INSERT INTO snapshot_meta VALUES (?, ?, ?, ?, ?)",
            (snapshot.sim_id, snapshot.step, snapshot.growth,
             snapshot.box_size, snapshot.n_particles))
        return len(buckets)

    # -- metadata ------------------------------------------------------------

    def snapshots(self, sim: int) -> list[int]:
        """Stored step numbers of one simulation, ascending."""
        return [r[0] for r in self.conn.execute(
            "SELECT step FROM snapshot_meta WHERE sim = ? ORDER BY step",
            (sim,))]

    def meta(self, sim: int, step: int) -> dict:
        row = self.conn.execute(
            "SELECT growth, box_size, n_particles FROM snapshot_meta "
            "WHERE sim = ? AND step = ?", (sim, step)).fetchone()
        if row is None:
            raise KeyError(f"no snapshot (sim={sim}, step={step})")
        return {"growth": row[0], "box_size": row[1],
                "n_particles": row[2]}

    def bucket_count(self, sim: int, step: int) -> int:
        return self.conn.execute(
            "SELECT COUNT(*) FROM particle_buckets WHERE sim = ? AND "
            "step = ?", (sim, step)).fetchone()[0]

    # -- reads ------------------------------------------------------------

    def _decode_rows(self, rows) -> tuple[np.ndarray, np.ndarray,
                                          np.ndarray]:
        ids, pos, vel = [], [], []
        for ids_b, pos_b, vel_b in rows:
            ids.append(SqlArray.from_blob(ids_b).to_numpy())
            pos.append(SqlArray.from_blob(pos_b).to_numpy())
            vel.append(SqlArray.from_blob(vel_b).to_numpy())
        if not ids:
            return (np.empty(0, dtype=np.int64), np.empty((0, 3)),
                    np.empty((0, 3)))
        return (np.concatenate(ids), np.concatenate(pos),
                np.concatenate(vel))

    def load_snapshot(self, sim: int, step: int
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All particles of one snapshot as ``(ids, positions,
        velocities)`` (bucket order = z-order)."""
        rows = self.conn.execute(
            "SELECT ids, pos, vel FROM particle_buckets "
            "WHERE sim = ? AND step = ? ORDER BY bucket",
            (sim, step)).fetchall()
        return self._decode_rows(rows)

    def _cells_overlapping(self, lo, hi, box_size: float) -> list[int]:
        """Z-order codes of the grid cells a box overlaps."""
        n = self.cells_per_axis
        cell = box_size / n
        ranges = []
        for a in range(3):
            first = max(int(np.floor(lo[a] / cell)), 0)
            last = min(int(np.ceil(hi[a] / cell)) - 1, n - 1)
            if last < first:
                return []
            ranges.append(range(first, last + 1))
        return [encode3(x, y, z)
                for x in ranges[0] for y in ranges[1]
                for z in ranges[2]]

    def particles_in_box(self, sim: int, step: int, lo, hi
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Particles with ``lo <= p < hi``, touching only the bucket
        rows whose cells overlap the box.

        Returns ``(ids, positions, velocities)``.
        """
        lo = np.asarray(lo, dtype="f8")
        hi = np.asarray(hi, dtype="f8")
        box = self.meta(sim, step)["box_size"]
        candidates = self._cells_overlapping(lo, hi, box)
        if not candidates:
            return self._decode_rows([])
        marks = ",".join("?" * len(candidates))
        rows = self.conn.execute(
            f"SELECT ids, pos, vel FROM particle_buckets "
            f"WHERE sim = ? AND step = ? AND bucket IN ({marks}) "
            "ORDER BY bucket",
            (sim, step, *candidates)).fetchall()
        ids, pos, vel = self._decode_rows(rows)
        inside = ((pos >= lo) & (pos < hi)).all(axis=1)
        return ids[inside], pos[inside], vel[inside]

    def buckets_touched_by_box(self, sim: int, step: int, lo, hi) -> int:
        """How many bucket rows a box query reads (the IO-selectivity
        the bucketing exists for)."""
        box = self.meta(sim, step)["box_size"]
        candidates = self._cells_overlapping(
            np.asarray(lo, dtype="f8"), np.asarray(hi, dtype="f8"), box)
        if not candidates:
            return 0
        marks = ",".join("?" * len(candidates))
        return self.conn.execute(
            f"SELECT COUNT(*) FROM particle_buckets WHERE sim = ? AND "
            f"step = ? AND bucket IN ({marks})",
            (sim, step, *candidates)).fetchone()[0]

    def particle_track(self, sim: int, particle_id: int
                       ) -> tuple[np.ndarray, np.ndarray]:
        """One particle's trajectory across every stored snapshot
        ("retrieving information about individual particles will
        require array-based data access").

        Returns ``(steps, positions)``.
        """
        steps_out, positions = [], []
        for step in self.snapshots(sim):
            rows = self.conn.execute(
                "SELECT ids, pos FROM particle_buckets "
                "WHERE sim = ? AND step = ?", (sim, step)).fetchall()
            for ids_b, pos_b in rows:
                ids = SqlArray.from_blob(ids_b).to_numpy()
                hit = np.nonzero(ids == particle_id)[0]
                if hit.size:
                    pos = SqlArray.from_blob(pos_b).to_numpy()
                    steps_out.append(step)
                    positions.append(pos[hit[0]])
                    break
        if not steps_out:
            raise KeyError(f"particle {particle_id} not found in "
                           f"simulation {sim}")
        return np.array(steps_out), np.stack(positions)
