"""Matter power spectrum from gridded density fields.

The second half of the Section 2.3 pipeline: "Fourier transform it and
compute its power spectrum".  The overdensity grid goes through the
library's FFTW wrapper (:mod:`repro.mathlib.fftw`), mode powers are
binned in spherical shells of ``|k|``, and the standard normalization
``P(k) = V <|delta_k|^2> / N^2`` is applied.

Section 2.3 also mentions storing "the Fourier transform of the density
field on large scales which is a 100^3 complex cube" — that is
:func:`density_fourier_modes`, returned as a complex SQL array.
"""

from __future__ import annotations

import numpy as np

from ...core.sqlarray import SqlArray
from ...mathlib.fftw import fft_forward

__all__ = ["power_spectrum", "density_fourier_modes"]


def density_fourier_modes(delta: np.ndarray, keep: int | None = None
                          ) -> SqlArray:
    """FFT of an overdensity grid as a complex SQL array.

    Args:
        delta: ``(g, g, g)`` overdensity field.
        keep: Optionally keep only the ``keep^3`` lowest-frequency cube
            (the paper's "Fourier transform of the density field on
            large scales ... a 100^3 complex cube").
    """
    delta = np.asarray(delta, dtype="f8")
    modes = fft_forward(SqlArray.from_numpy(
        np.asfortranarray(delta))).to_numpy()
    if keep is not None:
        if not 0 < keep <= delta.shape[0]:
            raise ValueError(f"keep={keep} out of range")
        half = keep // 2
        sel = np.concatenate([np.arange(0, half + keep % 2),
                              np.arange(-half, 0)])
        modes = modes[np.ix_(sel, sel, sel)]
    return SqlArray.from_numpy(np.asfortranarray(modes))


def power_spectrum(delta: np.ndarray, box_size: float,
                   n_bins: int | None = None
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Spherically averaged power spectrum of an overdensity grid.

    Args:
        delta: ``(g, g, g)`` overdensity field (zero mean).
        box_size: Physical box edge (sets the k units).
        n_bins: Number of shells between the fundamental mode and the
            Nyquist frequency (default ``g // 2``).

    Returns:
        ``(k_centers, P(k), mode_counts)``; shells with no modes get
        ``P = 0`` and count 0.
    """
    delta = np.asarray(delta, dtype="f8")
    if delta.ndim != 3 or len(set(delta.shape)) != 1:
        raise ValueError("delta must be a cubic (g, g, g) array")
    g = delta.shape[0]
    if n_bins is None:
        n_bins = g // 2
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")

    modes = fft_forward(SqlArray.from_numpy(
        np.asfortranarray(delta))).to_numpy()
    power = np.abs(modes) ** 2

    kf = 2 * np.pi / box_size                 # fundamental mode
    k1 = np.fft.fftfreq(g, d=1.0 / g) * kf
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    kmag = np.sqrt(kx ** 2 + ky ** 2 + kz ** 2)

    k_nyquist = kf * (g // 2)
    edges = np.linspace(kf / 2, k_nyquist, n_bins + 1)
    which = np.digitize(kmag.ravel(), edges) - 1
    valid = (which >= 0) & (which < n_bins)

    counts = np.bincount(which[valid], minlength=n_bins)
    sums = np.bincount(which[valid], weights=power.ravel()[valid],
                       minlength=n_bins)
    with np.errstate(invalid="ignore"):
        mean_power = np.where(counts > 0, sums / np.maximum(counts, 1),
                              0.0)
    # Normalization: P(k) = V * <|delta_k|^2> / N_cells^2.
    volume = box_size ** 3
    pk = mean_power * volume / g ** 6
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, pk, counts
