"""Halo merger history across snapshots.

Paper Section 2.3: "These FOF halos need to be linked up between the
different time steps to determine the so called merger history.  This
can be best done by comparing the particle labels in the halos at
different time steps."

:func:`link_halos` matches halos of consecutive snapshots by shared
particle IDs; :class:`MergerTree` accumulates the links over a snapshot
sequence and answers progenitor/descendant queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .fof import Halo

__all__ = ["HaloLink", "link_halos", "MergerTree"]


@dataclass(frozen=True)
class HaloLink:
    """One progenitor -> descendant link.

    Attributes:
        progenitor: Halo index in the earlier snapshot's halo list.
        descendant: Halo index in the later snapshot's halo list.
        shared: Number of shared particle IDs.
        fraction: Shared particles as a fraction of the progenitor's
            size.
    """

    progenitor: int
    descendant: int
    shared: int
    fraction: float


def link_halos(earlier: Sequence[Halo], later: Sequence[Halo],
               min_fraction: float = 0.5) -> list[HaloLink]:
    """Match halos by comparing particle labels.

    A link is made from each earlier halo to the later halo holding the
    largest share of its particles, provided at least ``min_fraction``
    of them went there.
    """
    if not 0 < min_fraction <= 1:
        raise ValueError("min_fraction must be in (0, 1]")
    owner: dict[int, int] = {}
    for j, halo in enumerate(later):
        for pid in halo.member_ids:
            owner[int(pid)] = j
    links = []
    for i, halo in enumerate(earlier):
        counts: dict[int, int] = {}
        for pid in halo.member_ids:
            j = owner.get(int(pid))
            if j is not None:
                counts[j] = counts.get(j, 0) + 1
        if not counts:
            continue
        j, shared = max(counts.items(), key=lambda kv: kv[1])
        fraction = shared / halo.n_members
        if fraction >= min_fraction:
            links.append(HaloLink(progenitor=i, descendant=j,
                                  shared=shared, fraction=fraction))
    return links


@dataclass
class MergerTree:
    """Merger history over a sequence of snapshots.

    Build with :meth:`from_halo_lists`; nodes are ``(step, halo_index)``
    pairs.
    """

    halos_per_step: list[list[Halo]] = field(default_factory=list)
    links_per_step: list[list[HaloLink]] = field(default_factory=list)

    @classmethod
    def from_halo_lists(cls, halo_lists: Sequence[Sequence[Halo]],
                        min_fraction: float = 0.5) -> "MergerTree":
        """Link each consecutive pair of snapshot halo lists."""
        tree = cls(halos_per_step=[list(h) for h in halo_lists])
        for earlier, later in zip(halo_lists[:-1], halo_lists[1:]):
            tree.links_per_step.append(
                link_halos(earlier, later, min_fraction))
        return tree

    @property
    def n_steps(self) -> int:
        return len(self.halos_per_step)

    def progenitors(self, step: int, halo_index: int) -> list[int]:
        """Indices of step-1 halos that merged into this halo."""
        if step == 0:
            return []
        return [l.progenitor for l in self.links_per_step[step - 1]
                if l.descendant == halo_index]

    def descendant(self, step: int, halo_index: int) -> int | None:
        """Index of the step+1 halo this halo went into, if any."""
        if step >= self.n_steps - 1:
            return None
        for link in self.links_per_step[step]:
            if link.progenitor == halo_index:
                return link.descendant
        return None

    def main_branch(self, step: int, halo_index: int
                    ) -> list[tuple[int, int]]:
        """Follow the most-massive-progenitor branch back in time.

        Returns ``(step, halo_index)`` pairs from the given halo to its
        earliest traced ancestor.
        """
        branch = [(step, halo_index)]
        current = halo_index
        for s in range(step, 0, -1):
            progs = self.progenitors(s, current)
            if not progs:
                break
            current = max(
                progs,
                key=lambda i: self.halos_per_step[s - 1][i].n_members)
            branch.append((s - 1, current))
        return branch

    def merger_counts(self) -> list[int]:
        """Number of halos per step that absorbed >= 2 progenitors —
        a simple merger-rate summary."""
        out = []
        for s in range(self.n_steps):
            if s == 0:
                out.append(0)
                continue
            absorbed = {}
            for link in self.links_per_step[s - 1]:
                absorbed[link.descendant] = \
                    absorbed.get(link.descendant, 0) + 1
            out.append(sum(1 for v in absorbed.values() if v >= 2))
        return out
