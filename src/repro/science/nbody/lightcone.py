"""Light-cone construction through a snapshot sequence.

Paper Section 2.3: "We will need to build light-cones through the
simulations where we look at the cube from a distant viewpoint and
follow light rays back into the simulation and recreate the galaxy
velocities in an expanding universe including the Doppler-shift of the
galaxies along the radial direction due to their velocities.
Furthermore, as we look farther, the simulation box needs to be taken
from an earlier time step since the light coming to us was emitted by
those galaxies at a much earlier epoch.  This requires a spatial index
that can retrieve points from within a cone."

:func:`build_lightcone` does exactly that with a simplified (linear)
distance-epoch mapping: space is cut into comoving-distance shells, each
shell is filled from the snapshot whose epoch matches the shell's
look-back time, particles inside the viewing cone are selected with the
octree's cone query, and each selected particle gets a redshift made of
the Hubble term plus the radial Doppler shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...spatial.octree import Octree
from .snapshots import Snapshot

__all__ = ["LightconeEntry", "build_lightcone"]

#: Effective speed of light in simulation velocity units (sets the
#: scale of the Doppler term; arbitrary but fixed).
SPEED_OF_LIGHT = 1000.0


@dataclass
class LightconeEntry:
    """One particle on the light cone.

    Attributes:
        particle_id: ID in its source snapshot.
        step: Snapshot (epoch) it was taken from.
        position: Comoving position relative to the observer.
        distance: Comoving distance from the observer.
        redshift: Hubble + Doppler redshift.
    """

    particle_id: int
    step: int
    position: np.ndarray
    distance: float
    redshift: float


def build_lightcone(snapshots: Sequence[Snapshot],
                    observer, direction, half_angle: float,
                    max_distance: float,
                    hubble: float = 0.1) -> list[LightconeEntry]:
    """Select cone particles shell by shell, earlier epochs farther out.

    Args:
        snapshots: Snapshot sequence ordered by time, latest *first*
            (index 0 is "now"; higher indices are earlier epochs whose
            light comes from farther away).
        observer: Observer position (box coordinates).
        direction: Cone axis.
        half_angle: Cone half-opening angle in radians.
        max_distance: How far out to build the cone; the range
            ``[0, max_distance]`` is split into ``len(snapshots)``
            equal shells, shell ``i`` drawn from ``snapshots[i]``.
        hubble: Linear Hubble constant (velocity per unit distance)
            for the cosmological part of the redshift.

    Returns:
        Light-cone entries ordered by increasing distance.
    """
    if not snapshots:
        raise ValueError("at least one snapshot is required")
    if max_distance <= 0:
        raise ValueError("max_distance must be positive")
    observer = np.asarray(observer, dtype="f8")
    direction = np.asarray(direction, dtype="f8")
    norm = np.linalg.norm(direction)
    if norm == 0:
        raise ValueError("direction must be nonzero")
    direction = direction / norm

    shells = np.linspace(0.0, max_distance, len(snapshots) + 1)
    entries: list[LightconeEntry] = []
    for i, snap in enumerate(snapshots):
        lo, hi = shells[i], shells[i + 1]
        tree = Octree(snap.positions, snap.box_size, max_points=64)
        in_cone = tree.query_cone(observer, direction, half_angle,
                                  max_distance=hi)
        for idx in in_cone:
            rel = snap.positions[idx] - observer
            dist = float(np.linalg.norm(rel))
            if dist < lo or dist >= hi or dist == 0.0:
                continue
            radial = rel / dist
            v_los = float(snap.velocities[idx] @ radial)
            redshift = hubble * dist / SPEED_OF_LIGHT \
                + v_los / SPEED_OF_LIGHT
            entries.append(LightconeEntry(
                particle_id=int(snap.ids[idx]),
                step=snap.step,
                position=rel,
                distance=dist,
                redshift=redshift,
            ))
    entries.sort(key=lambda e: e.distance)
    return entries
