"""Friends-of-friends halo finding.

Paper Section 2.3: "At each snapshot we need to compute the so-called
halos, clusters of particles identified by friends of friends (FOF)
algorithms within a certain distance.  This requires a lot of parallel
neighbor calculations."

Standard FOF: particles closer than the linking length are friends;
halos are the connected components of the friendship graph.  Neighbour
pairs are found with a periodic cell grid (cell edge >= linking length,
so only the 27 neighbouring cells need checking) and components with a
union-find structure — both from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UnionFind", "friends_of_friends", "Halo", "find_halos"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, n: int):
        self._parent = np.arange(n)
        self._size = np.ones(n, dtype=np.int64)

    def find(self, i: int) -> int:
        """Representative of ``i``'s set (with path compression)."""
        root = i
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return int(root)

    def union(self, a: int, b: int) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def labels(self) -> np.ndarray:
        """Canonical component label per element (root indices)."""
        return np.array([self.find(i) for i in range(len(self._parent))])


def friends_of_friends(positions: np.ndarray, box_size: float,
                       linking_length: float) -> np.ndarray:
    """Connected-component labels of the FOF graph.

    Args:
        positions: ``(n, 3)`` coordinates in a periodic ``[0, box)^3``.
        box_size: Periodic box edge.
        linking_length: Friendship distance ``b``.

    Returns:
        ``(n,)`` integer labels; equal label = same halo.
    """
    positions = np.asarray(positions, dtype="f8")
    n = len(positions)
    if n == 0:
        return np.empty(0, dtype=int)
    if linking_length <= 0:
        raise ValueError("linking_length must be positive")
    if linking_length * 3 > box_size:
        raise ValueError(
            "linking_length too large relative to the box for the "
            "periodic cell grid")

    cells_per_axis = max(int(box_size / linking_length), 3)
    cell_size = box_size / cells_per_axis
    cell = np.mod((positions // cell_size).astype(np.int64),
                  cells_per_axis)
    flat = (cell[:, 0] * cells_per_axis + cell[:, 1]) * cells_per_axis \
        + cell[:, 2]
    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    starts = np.searchsorted(flat_sorted, np.arange(
        cells_per_axis ** 3))
    ends = np.searchsorted(flat_sorted, np.arange(
        cells_per_axis ** 3) + 1)

    def members(cx, cy, cz):
        f = (cx % cells_per_axis * cells_per_axis
             + cy % cells_per_axis) * cells_per_axis \
            + cz % cells_per_axis
        return order[starts[f]:ends[f]]

    uf = UnionFind(n)
    b2 = linking_length ** 2
    half = box_size / 2.0
    # For every occupied cell, link pairs within the cell and with the
    # 13 "forward" neighbour cells (each unordered cell pair once).
    forward = [(dx, dy, dz)
               for dx in (-1, 0, 1) for dy in (-1, 0, 1)
               for dz in (-1, 0, 1)
               if (dx, dy, dz) > (0, 0, 0) or (dx, dy, dz) == (0, 0, 0)]
    occupied = np.unique(flat_sorted)
    for f in occupied:
        cz = int(f % cells_per_axis)
        cy = int(f // cells_per_axis % cells_per_axis)
        cx = int(f // (cells_per_axis ** 2))
        own = members(cx, cy, cz)
        for dx, dy, dz in forward:
            other = (own if (dx, dy, dz) == (0, 0, 0)
                     else members(cx + dx, cy + dy, cz + dz))
            if len(other) == 0:
                continue
            diff = positions[own][:, None, :] - positions[other][None]
            diff = np.where(diff > half, diff - box_size, diff)
            diff = np.where(diff < -half, diff + box_size, diff)
            d2 = (diff ** 2).sum(axis=2)
            ii, jj = np.nonzero(d2 <= b2)
            for a, b in zip(own[ii], other[jj]):
                if a != b:
                    uf.union(int(a), int(b))
    return uf.labels()


@dataclass
class Halo:
    """One FOF halo.

    Attributes:
        label: Component label from :func:`friends_of_friends`.
        member_ids: Particle IDs of the members.
        center: Periodic center of mass.
        n_members: Member count.
    """

    label: int
    member_ids: np.ndarray
    center: np.ndarray

    @property
    def n_members(self) -> int:
        return len(self.member_ids)


def _periodic_mean(points: np.ndarray, box_size: float) -> np.ndarray:
    """Center of mass on a periodic domain (circular mean per axis)."""
    angles = points / box_size * 2 * np.pi
    mean_angle = np.arctan2(np.sin(angles).mean(axis=0),
                            np.cos(angles).mean(axis=0))
    return np.mod(mean_angle / (2 * np.pi) * box_size, box_size)


def find_halos(positions: np.ndarray, ids: np.ndarray, box_size: float,
               linking_length: float, min_members: int = 8
               ) -> list[Halo]:
    """FOF halos with at least ``min_members`` particles, largest
    first."""
    labels = friends_of_friends(positions, box_size, linking_length)
    ids = np.asarray(ids)
    halos = []
    for label in np.unique(labels):
        members = np.nonzero(labels == label)[0]
        if len(members) < min_members:
            continue
        halos.append(Halo(
            label=int(label),
            member_ids=ids[members],
            center=_periodic_mean(positions[members], box_size),
        ))
    halos.sort(key=lambda h: -h.n_members)
    return halos
