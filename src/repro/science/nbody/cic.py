"""Cloud-in-cell density assignment.

Paper Section 2.3: "We will also need to compute the density over a
640^3 grid, interpolating over the particle positions, using a
cloud-in-cell (CIC) algorithm, then Fourier transform it and compute
its power spectrum."

CIC spreads each particle's mass over the 8 grid cells its unit cube
overlaps (trilinear weights), on a periodic grid.  The implementation
is vectorized over particles and verified in tests by exact mass
conservation and against direct per-particle assignment.
"""

from __future__ import annotations

import numpy as np

from ...core.sqlarray import SqlArray

__all__ = ["cic_density", "cic_density_array", "density_contrast"]


def cic_density(positions: np.ndarray, box_size: float,
                grid_size: int, weights: np.ndarray | None = None
                ) -> np.ndarray:
    """CIC mass assignment onto a periodic ``grid_size^3`` mesh.

    Args:
        positions: ``(n, 3)`` coordinates in ``[0, box)^3``.
        box_size: Periodic box edge.
        grid_size: Cells per axis.
        weights: Optional per-particle masses (default 1).

    Returns:
        ``(g, g, g)`` array whose sum equals the total assigned mass.
    """
    positions = np.asarray(positions, dtype="f8")
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must be an (n, 3) array")
    if grid_size < 2:
        raise ValueError("grid_size must be at least 2")
    n = len(positions)
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype="f8")
        if weights.shape != (n,):
            raise ValueError("one weight per particle required")

    g = grid_size
    # Cell coordinates with the particle's cloud centered on it: the
    # cloud of a particle at grid coordinate x spans [x - .5, x + .5].
    x = positions / box_size * g - 0.5
    i0 = np.floor(x).astype(np.int64)
    frac = x - i0                      # weight toward the upper cell
    density = np.zeros((g, g, g))
    for dx in (0, 1):
        wx = frac[:, 0] if dx else 1.0 - frac[:, 0]
        ix = np.mod(i0[:, 0] + dx, g)
        for dy in (0, 1):
            wy = frac[:, 1] if dy else 1.0 - frac[:, 1]
            iy = np.mod(i0[:, 1] + dy, g)
            for dz in (0, 1):
                wz = frac[:, 2] if dz else 1.0 - frac[:, 2]
                iz = np.mod(i0[:, 2] + dz, g)
                np.add.at(density, (ix, iy, iz),
                          weights * wx * wy * wz)
    return density


def cic_density_array(positions: np.ndarray, box_size: float,
                      grid_size: int) -> SqlArray:
    """:func:`cic_density` wrapped as a max SQL array (the gridded
    density is exactly the kind of large dense array the library
    stores)."""
    return SqlArray.from_numpy(
        np.asfortranarray(cic_density(positions, box_size, grid_size)))


def density_contrast(density: np.ndarray) -> np.ndarray:
    """Overdensity field ``delta = rho / <rho> - 1`` (the field whose
    Fourier transform gives the power spectrum)."""
    density = np.asarray(density, dtype="f8")
    mean = density.mean()
    if mean == 0:
        raise ValueError("empty density field")
    return density / mean - 1.0
