"""Cosmological N-body use case (paper Section 2.3): Zel'dovich
snapshot generation, z-order particle buckets as array blobs, FOF halo
finding, merger trees, CIC density, power spectra, correlation
functions, and light cones."""

from .cic import cic_density, cic_density_array, density_contrast
from .database import ParticleDatabase
from .correlation import (
    pair_counts,
    periodic_distance,
    three_point_counts,
    two_point_correlation,
)
from .fof import Halo, UnionFind, find_halos, friends_of_friends
from .lightcone import LightconeEntry, build_lightcone
from .mergertree import HaloLink, MergerTree, link_halos
from .power import density_fourier_modes, power_spectrum
from .snapshots import (
    ParticleBucket,
    Snapshot,
    ZeldovichSimulation,
    bucketize,
)

__all__ = [
    "ParticleDatabase",
    "Snapshot",
    "ZeldovichSimulation",
    "ParticleBucket",
    "bucketize",
    "UnionFind",
    "friends_of_friends",
    "Halo",
    "find_halos",
    "HaloLink",
    "link_halos",
    "MergerTree",
    "cic_density",
    "cic_density_array",
    "density_contrast",
    "power_spectrum",
    "density_fourier_modes",
    "pair_counts",
    "two_point_correlation",
    "three_point_counts",
    "periodic_distance",
    "LightconeEntry",
    "build_lightcone",
]
