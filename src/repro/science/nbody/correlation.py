"""Two- and three-point correlation functions.

Paper Section 2.3: "we need to be able to compute various statistical
functions like two and three point correlations over these point sets".

The two-point function uses the Landy-Szalay estimator
``xi = (DD - 2 DR + RR) / RR`` with pair counts accelerated by the
octree's sphere queries; the three-point function is the simple
triangle-count (natural) estimator on a small set of scales.  A
pluggable metric supports the paper's curved-geometry remark: distances
default to the periodic Euclidean metric but any callable can be
supplied ("with distances calculated in the curved geometry of the
universe").
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ...spatial.kdtree import KdTree

__all__ = ["pair_counts", "two_point_correlation",
           "three_point_counts", "periodic_distance"]


def periodic_distance(a: np.ndarray, b: np.ndarray,
                      box_size: float) -> np.ndarray:
    """Minimum-image Euclidean distances between rows of ``a`` and one
    point (or matching rows) ``b``."""
    diff = np.abs(a - b)
    diff = np.minimum(diff, box_size - diff)
    return np.sqrt((diff ** 2).sum(axis=-1))


def _replicate_periodic(points: np.ndarray, box_size: float,
                        margin: float) -> np.ndarray:
    """Append ghost images of points within ``margin`` of the box faces
    so plain (non-periodic) trees see periodic neighbours."""
    images = [points]
    shifts = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if (dx, dy, dz) != (0, 0, 0):
                    shifts.append((dx, dy, dz))
    for shift in shifts:
        moved = points + np.array(shift) * box_size
        near = ((moved > -margin) & (moved < box_size + margin)).all(
            axis=1)
        if near.any():
            images.append(moved[near])
    return np.concatenate(images)


def pair_counts(points: np.ndarray, edges: np.ndarray,
                box_size: float,
                other: np.ndarray | None = None) -> np.ndarray:
    """Histogram of (cross-)pair separations on a periodic box.

    Auto counts (``other is None``) count each unordered pair once.
    Uses a kd-tree over periodic ghost images for the radius searches.
    """
    points = np.asarray(points, dtype="f8")
    edges = np.asarray(edges, dtype="f8")
    rmax = float(edges[-1])
    if rmax >= box_size / 2:
        raise ValueError("largest separation must be < box_size / 2")
    targets = points if other is None else np.asarray(other, dtype="f8")
    ghosted = _replicate_periodic(targets, box_size, rmax)
    tree = KdTree(ghosted)
    counts = np.zeros(len(edges) - 1, dtype=np.int64)
    for p in points:
        idx = tree.query_radius(p, rmax)
        d = np.linalg.norm(ghosted[idx] - p, axis=1)
        d = d[(d > 0) | (other is not None)]
        if other is None:
            # Unordered pairs: every pair found twice in auto mode.
            counts += np.histogram(d, bins=edges)[0]
        else:
            counts += np.histogram(d, bins=edges)[0]
    if other is None:
        counts //= 2
    return counts


def two_point_correlation(points: np.ndarray, box_size: float,
                          edges: np.ndarray,
                          n_random: int | None = None,
                          seed: int = 0
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Landy-Szalay two-point correlation function.

    Args:
        points: ``(n, 3)`` data points in a periodic box.
        box_size: Box edge.
        edges: Separation bin edges (max < box/2).
        n_random: Random-catalog size (default ``2 n``).
        seed: RNG seed for the random catalog.

    Returns:
        ``(bin_centers, xi)``.
    """
    points = np.asarray(points, dtype="f8")
    n = len(points)
    if n < 2:
        raise ValueError("need at least two points")
    if n_random is None:
        n_random = 2 * n
    rng = np.random.default_rng(seed)
    randoms = rng.random((n_random, 3)) * box_size

    dd = pair_counts(points, edges, box_size).astype("f8")
    rr = pair_counts(randoms, edges, box_size).astype("f8")
    dr = pair_counts(points, edges, box_size, other=randoms
                     ).astype("f8")

    # Normalize counts by the number of pairs in each catalog.
    dd /= n * (n - 1) / 2
    rr /= n_random * (n_random - 1) / 2
    dr /= n * n_random
    with np.errstate(divide="ignore", invalid="ignore"):
        xi = np.where(rr > 0, (dd - 2 * dr + rr) / rr, 0.0)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, xi


def three_point_counts(points: np.ndarray, box_size: float,
                       r1: float, r2: float, tolerance: float = 0.2,
                       metric: Callable | None = None) -> int:
    """Count triangles with side lengths ``~r1, ~r1, ~r2``.

    The natural three-point estimator on one configuration: for every
    point, neighbours at distance ``r1 (1 +- tol)`` are paired and the
    pair's mutual distance checked against ``r2 (1 +- tol)``.  A custom
    ``metric(a, b) -> distance`` may be supplied for non-Euclidean
    geometries; the default is the periodic minimum-image metric.
    """
    points = np.asarray(points, dtype="f8")
    if metric is None:
        def metric(a, b):
            return periodic_distance(a, b, box_size)
    lo1, hi1 = r1 * (1 - tolerance), r1 * (1 + tolerance)
    lo2, hi2 = r2 * (1 - tolerance), r2 * (1 + tolerance)
    ghosted = _replicate_periodic(points, box_size, hi1)
    tree = KdTree(ghosted)
    triangles = 0
    for p in points:
        idx = tree.query_radius(p, hi1)
        neigh = ghosted[idx]
        d = np.linalg.norm(neigh - p, axis=1)
        ring = neigh[(d >= lo1) & (d <= hi1)]
        for i in range(len(ring)):
            d12 = metric(ring[i + 1:], ring[i])
            triangles += int(((d12 >= lo2) & (d12 <= hi2)).sum())
    return triangles
