"""Synthetic cosmological N-body snapshots (Zel'dovich approximation).

The paper's plan (Section 2.3): 500 simulations of 320^3 particles with
100 snapshots each, "dumping the ID, position and velocity for each
particle, and a hash bucket ID, a time step, and simulation ID", with
particles grouped "an order of a few thousand particles per bucket"
along a space-filling curve so each bucket is one array-blob row.

Real simulation outputs are unavailable, so snapshots are generated with
the Zel'dovich approximation: particles start on a uniform grid and move
along a Gaussian random displacement field scaled by a growth factor —
cheap, deterministic, and it develops genuine clustering (caustics,
proto-halos), which is what FOF/CIC/correlation analyses need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.sqlarray import SqlArray
from ...spatial.zorder import points_to_codes

__all__ = ["Snapshot", "ZeldovichSimulation", "ParticleBucket",
           "bucketize"]


@dataclass
class Snapshot:
    """One simulation snapshot.

    Attributes:
        sim_id: Simulation identifier.
        step: Time-step index.
        growth: Growth factor D(t) used for the displacement.
        ids: ``(n,)`` int64 particle IDs (stable across snapshots).
        positions: ``(n, 3)`` comoving positions in ``[0, box)^3``.
        velocities: ``(n, 3)`` peculiar velocities.
        box_size: Box edge length.
    """

    sim_id: int
    step: int
    growth: float
    ids: np.ndarray
    positions: np.ndarray
    velocities: np.ndarray
    box_size: float

    @property
    def n_particles(self) -> int:
        return len(self.ids)


class ZeldovichSimulation:
    """A reproducible Zel'dovich-approximation simulation.

    Args:
        particles_per_axis: Cube root of the particle count (the paper
            uses 320; scale down for laptop runs).
        box_size: Comoving box edge.
        spectral_index: Power-law slope of the displacement power
            spectrum (more negative = more large-scale power).
        seed / sim_id: Identity of this realization.
    """

    def __init__(self, particles_per_axis: int = 16,
                 box_size: float = 100.0, spectral_index: float = -2.0,
                 seed: int = 0, sim_id: int = 0):
        if particles_per_axis < 4:
            raise ValueError("particles_per_axis must be at least 4")
        self.n_axis = particles_per_axis
        self.box_size = float(box_size)
        self.sim_id = sim_id
        n = particles_per_axis
        rng = np.random.default_rng(seed)

        # Lagrangian grid positions q.
        grid = (np.arange(n) + 0.5) * (box_size / n)
        qx, qy, qz = np.meshgrid(grid, grid, grid, indexing="ij")
        self._q = np.stack([qx, qy, qz], axis=-1).reshape(-1, 3)
        self.ids = np.arange(self._q.shape[0], dtype=np.int64)

        # Displacement field psi = grad(phi), phi a Gaussian random
        # potential with power-law spectrum; gradient taken in Fourier
        # space so psi is curl-free (as Zel'dovich requires).
        k1 = np.fft.fftfreq(n, d=1.0 / n) * (2 * np.pi / box_size)
        kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
        k2 = kx ** 2 + ky ** 2 + kz ** 2
        k2[0, 0, 0] = 1.0
        kmag = np.sqrt(k2)
        amp = kmag ** (spectral_index / 2.0) / k2
        amp[0, 0, 0] = 0.0
        phase = rng.standard_normal((n, n, n)) \
            + 1j * rng.standard_normal((n, n, n))
        phi_k = phase * amp
        psi = np.stack([
            np.fft.ifftn(1j * kx * phi_k).real,
            np.fft.ifftn(1j * ky * phi_k).real,
            np.fft.ifftn(1j * kz * phi_k).real,
        ], axis=-1).reshape(-1, 3)
        # Normalize so growth = 1 gives rms displacement of ~4 % of the
        # box (well clustered but not fully shell-crossed).
        rms = np.sqrt((psi ** 2).sum(axis=1).mean())
        if rms > 0:
            psi *= 0.04 * box_size / rms
        self._psi = psi

    def snapshot(self, growth: float, step: int | None = None,
                 growth_rate: float = 1.0) -> Snapshot:
        """Realize the snapshot at growth factor ``D``.

        Positions: ``x = q + D psi`` (periodic wrap); velocities:
        ``v = dD/dt psi = growth_rate * D * psi`` in simulation units.
        """
        if growth < 0:
            raise ValueError("growth must be non-negative")
        positions = np.mod(self._q + growth * self._psi, self.box_size)
        velocities = growth_rate * growth * self._psi
        return Snapshot(
            sim_id=self.sim_id,
            step=step if step is not None else 0,
            growth=float(growth),
            ids=self.ids.copy(),
            positions=positions,
            velocities=velocities,
            box_size=self.box_size,
        )

    def snapshots(self, growths, growth_rate: float = 1.0
                  ) -> list[Snapshot]:
        """Snapshots at a sequence of growth factors (time steps)."""
        return [self.snapshot(g, step=i, growth_rate=growth_rate)
                for i, g in enumerate(growths)]


@dataclass
class ParticleBucket:
    """One bucket row: a few thousand particles as array blobs.

    This is the storage layout of Section 2.3 — "if we group together
    and store an order of a few thousand particles per bucket we can
    reduce the number of data table rows ... but retrieving information
    about individual particles will require array-based data access."
    """

    sim_id: int
    step: int
    bucket_id: int
    ids: SqlArray          # (n,) int64
    positions: SqlArray    # (n, 3) float64
    velocities: SqlArray   # (n, 3) float64

    @property
    def n_particles(self) -> int:
        return self.ids.shape[0]


def bucketize(snapshot: Snapshot, cells_per_axis: int = 4
              ) -> list[ParticleBucket]:
    """Group a snapshot into z-order hash buckets of array blobs.

    The bucket id is the Morton code of the particle's spatial cell, so
    bucket order follows the space-filling curve.
    """
    codes = points_to_codes(snapshot.positions, snapshot.box_size,
                            cells_per_axis)
    order = np.argsort(codes, kind="stable")
    codes_sorted = codes[order]
    buckets = []
    boundaries = np.concatenate([
        [0], np.nonzero(np.diff(codes_sorted))[0] + 1,
        [len(codes_sorted)]])
    for b in range(len(boundaries) - 1):
        members = order[boundaries[b]:boundaries[b + 1]]
        buckets.append(ParticleBucket(
            sim_id=snapshot.sim_id,
            step=snapshot.step,
            bucket_id=int(codes_sorted[boundaries[b]]),
            ids=SqlArray.from_numpy(snapshot.ids[members], "int64"),
            positions=SqlArray.from_numpy(
                np.asfortranarray(snapshot.positions[members])),
            velocities=SqlArray.from_numpy(
                np.asfortranarray(snapshot.velocities[members])),
        ))
    return buckets
