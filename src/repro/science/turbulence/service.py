"""The particle-query service over a partitioned turbulence database.

Paper Section 2.1: "users can submit a set of about 10,000 particle
positions ... and then can retrieve the interpolated values of the
velocity field at those positions.  This can be considered as the
equivalent of placing small sensors into the simulation instead of
downloading all the data."  And the motivating inefficiency: "Accessing
the whole blob (6 MB) for an 8-point 3D interpolation is obviously
overkill."

:class:`ParticleQueryService` implements the service loop: group the
requested positions by their z-order cube, open each cube's blob stream
once, and for every particle read *only* the ``m^3`` kernel neighborhood
(4 components) through a partial subarray read, then apply the chosen
interpolation kernel.  :class:`QueryStats` records exactly how many
bytes traveled versus the whole-blob alternative — the paper's argument,
quantified.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ...core.partial import read_subarray
from .blobs import TurbulenceStore
from .interp import interpolate_neighborhood, kernel_width, \
    neighborhood_origin

__all__ = ["QueryStats", "ParticleQueryService"]


@dataclass
class QueryStats:
    """IO accounting of one particle batch.

    Attributes:
        particles: Positions interpolated.
        blobs_opened: Distinct cube blobs touched.
        bytes_read: Payload bytes actually read from blob streams.
        full_blob_bytes: What reading every touched blob end-to-end
            would have cost (the paper's "overkill" baseline).
        read_calls: Stream read invocations.
    """

    particles: int = 0
    blobs_opened: int = 0
    bytes_read: int = 0
    full_blob_bytes: int = 0
    read_calls: int = 0

    @property
    def savings_factor(self) -> float:
        """How many times cheaper partial reads were."""
        if self.bytes_read == 0:
            return float("inf")
        return self.full_blob_bytes / self.bytes_read


class ParticleQueryService:
    """Interpolates field values at arbitrary particle positions.

    Args:
        store: A loaded :class:`~repro.science.turbulence.blobs.
            TurbulenceStore`.
        kernel: ``nearest``, ``lagrange4``, ``lagrange6``,
            ``lagrange8`` or ``pchip``.

    Raises:
        ValueError: if the store's ghost zone is too thin for the
            kernel (the paper sizes ghosts at half the widest kernel).
    """

    def __init__(self, store: TurbulenceStore, kernel: str = "lagrange8"):
        self.store = store
        self.kernel = kernel
        self._m = kernel_width(kernel)
        ghost = store.partitioner.ghost
        if self._m > 1 and ghost < self._m // 2:
            raise ValueError(
                f"kernel {kernel} needs a ghost zone of at least "
                f"{self._m // 2} voxels, store has {ghost}")
        if store.box_size is None:
            raise ValueError("store has no loaded field")

    # -- geometry ------------------------------------------------------------

    def _locate(self, position: np.ndarray):
        """Cube coordinate, local window origin and in-stencil offsets
        for one (periodic-wrapped) position."""
        p = self.store.partitioner
        box = self.store.box_size
        voxel = box / p.grid_size
        pos = np.mod(position, box)
        cube = tuple(
            min(int(pos[a] / (p.cube_size * voxel)), p.cubes_per_axis - 1)
            for a in range(3))
        local_origin = []
        ts = []
        for a in range(3):
            i0, t = neighborhood_origin(pos[a], voxel, self._m)
            # Voxel index of the blob's first (ghost) voxel on axis a.
            blob_start = cube[a] * p.cube_size - p.ghost
            local_origin.append(i0 - blob_start)
            ts.append(t)
        return cube, local_origin, ts

    # -- queries ------------------------------------------------------------

    def query(self, positions, include_pressure: bool = False,
              n_components: int | None = None
              ) -> tuple[np.ndarray, QueryStats]:
        """Interpolate field values at each position.

        Args:
            positions: ``(n, 3)`` array of physical coordinates
                (wrapped periodically into the box).
            include_pressure: Append the interpolated pressure as a
                fourth output column (shorthand for
                ``n_components=4``).
            n_components: Interpolate the first N stored components
                (e.g. 8 for an MHD store); overrides
                ``include_pressure``.

        Returns:
            ``(values, stats)`` with values of shape
            ``(n, n_components)``.
        """
        positions = np.atleast_2d(np.asarray(positions, dtype="f8"))
        if positions.shape[1] != 3:
            raise ValueError("positions must be an (n, 3) array")
        m = self._m
        components = n_components if n_components is not None \
            else (4 if include_pressure else 3)
        if not 1 <= components <= self.store.n_components:
            raise ValueError(
                f"store holds {self.store.n_components} components, "
                f"cannot interpolate {components}")
        out = np.empty((len(positions), components))
        stats = QueryStats(particles=len(positions))

        by_cube: dict[tuple, list[int]] = defaultdict(list)
        located = []
        for i, pos in enumerate(positions):
            cube, origin, ts = self._locate(pos)
            located.append((origin, ts))
            by_cube[cube].append(i)

        for cube, members in sorted(by_cube.items()):
            stream = self.store.open_cube(*cube)
            stats.blobs_opened += 1
            stats.full_blob_bytes += stream.length()
            for i in members:
                origin, ts = located[i]
                window = read_subarray(
                    stream, (0, *origin), (components, m, m, m))
                cube_vals = window.to_numpy()
                for c in range(components):
                    out[i, c] = interpolate_neighborhood(
                        cube_vals[c], self.kernel, *ts)
            stats.bytes_read += stream.bytes_read
            stats.read_calls += getattr(stream, "read_calls",
                                        getattr(stream, "stream_calls", 0))
        return out, stats

    def query_full_read(self, positions, include_pressure: bool = False,
                        n_components: int | None = None
                        ) -> tuple[np.ndarray, QueryStats]:
        """The baseline the paper calls overkill: materialize every
        touched blob in full, then interpolate in memory.

        Produces identical values to :meth:`query`; only the IO
        accounting differs.
        """
        positions = np.atleast_2d(np.asarray(positions, dtype="f8"))
        m = self._m
        components = n_components if n_components is not None \
            else (4 if include_pressure else 3)
        out = np.empty((len(positions), components))
        stats = QueryStats(particles=len(positions))

        by_cube: dict[tuple, list[int]] = defaultdict(list)
        located = []
        for i, pos in enumerate(positions):
            cube, origin, ts = self._locate(pos)
            located.append((origin, ts))
            by_cube[cube].append(i)

        from ...core.sqlarray import SqlArray

        for cube, members in sorted(by_cube.items()):
            stream = self.store.open_cube(*cube)
            stats.blobs_opened += 1
            stats.full_blob_bytes += stream.length()
            whole = SqlArray.from_blob(
                stream.read_at(0, stream.length())).to_numpy()
            stats.bytes_read += stream.bytes_read
            stats.read_calls += 1
            for i in members:
                origin, ts = located[i]
                window = whole[(slice(0, components),)
                               + tuple(slice(o, o + m) for o in origin)]
                for c in range(components):
                    out[i, c] = interpolate_neighborhood(
                        window[c], self.kernel, *ts)
        return out, stats
