"""Sub-domain retrieval from a partitioned turbulence store.

Paper Section 2.1: "we are also considering enabling users to easily
grab a sub-domain of the data."  :func:`extract_subdomain` reassembles
an arbitrary axis-aligned voxel box from a blob store, reading from
each overlapped cube only the byte ranges the box covers (partial
subarray reads per blob), so the cost scales with the requested volume,
not with the number of touched blobs' full sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.partial import read_subarray
from .blobs import TurbulenceStore

__all__ = ["SubdomainStats", "extract_subdomain"]


@dataclass
class SubdomainStats:
    """IO accounting of one sub-domain extraction."""

    blobs_opened: int = 0
    bytes_read: int = 0
    full_blob_bytes: int = 0

    @property
    def savings_factor(self) -> float:
        if self.bytes_read == 0:
            return float("inf")
        return self.full_blob_bytes / self.bytes_read


def extract_subdomain(store: TurbulenceStore, lo_voxel, hi_voxel,
                      components=(0, 1, 2, 3)
                      ) -> tuple[np.ndarray, SubdomainStats]:
    """Assemble the field over ``[lo_voxel, hi_voxel)`` from the store.

    Args:
        store: A loaded blob store.
        lo_voxel / hi_voxel: Inclusive-exclusive voxel bounds, inside
            the grid (no periodic wrap — sub-domain grabs are for
            in-box regions).
        components: Which of the four per-voxel values to return.

    Returns:
        ``(data, stats)`` where data has shape
        ``(len(components), *box_shape)``.
    """
    p = store.partitioner
    lo = np.asarray(lo_voxel, dtype=np.int64)
    hi = np.asarray(hi_voxel, dtype=np.int64)
    if lo.shape != (3,) or hi.shape != (3,):
        raise ValueError("bounds must be 3-vectors")
    if (lo < 0).any() or (hi > p.grid_size).any() or (hi <= lo).any():
        raise ValueError(
            f"bounds [{lo}, {hi}) must be non-empty and inside the "
            f"{p.grid_size}^3 grid")
    components = tuple(int(c) for c in components)
    n_stored = store.n_components
    if any(not 0 <= c < n_stored for c in components):
        raise ValueError(f"components must be in 0..{n_stored - 1}")
    # Components must form one contiguous run for a single subarray
    # window per blob; arbitrary subsets are read as the covering run.
    c_lo, c_hi = min(components), max(components) + 1

    shape = tuple((hi - lo).tolist())
    out = np.empty((len(components),) + shape, dtype=np.float32)
    stats = SubdomainStats()

    cube_lo = lo // p.cube_size
    cube_hi = (hi - 1) // p.cube_size
    for cx in range(cube_lo[0], cube_hi[0] + 1):
        for cy in range(cube_lo[1], cube_hi[1] + 1):
            for cz in range(cube_lo[2], cube_hi[2] + 1):
                cube = np.array([cx, cy, cz])
                core_lo = cube * p.cube_size
                core_hi = core_lo + p.cube_size
                sel_lo = np.maximum(lo, core_lo)
                sel_hi = np.minimum(hi, core_hi)
                # Window inside the ghost-padded blob.
                win_off = sel_lo - core_lo + p.ghost
                win_size = sel_hi - sel_lo
                stream = store.open_cube(cx, cy, cz)
                stats.blobs_opened += 1
                stats.full_blob_bytes += stream.length()
                window = read_subarray(
                    stream,
                    (c_lo, *win_off.tolist()),
                    (c_hi - c_lo, *win_size.tolist()))
                stats.bytes_read += stream.bytes_read
                values = window.to_numpy()
                dest = tuple(
                    slice(int(a), int(b))
                    for a, b in zip(sel_lo - lo, sel_hi - lo))
                for i, c in enumerate(components):
                    out[(i,) + dest] = values[c - c_lo]
    return out, stats
