"""Time-dependent turbulence queries.

The paper's database holds "2,000 time steps" and the public service
lets users "submit a set of about 10,000 particle positions and times
and then retrieve the interpolated values of the velocity field at
those positions" (Section 2.1).  This module adds the time axis:

* :class:`SnapshotSeries` — a sequence of snapshots, each partitioned
  into its own z-order blob store (one storage row per (time step,
  cube), exactly the layout a time-step column gives the blob table);
* :class:`TemporalQueryService` — spatial interpolation inside the two
  bracketing snapshots plus linear or PCHIP interpolation in time
  (PCHIP in time is what the production JHU service offers, using four
  bracketing steps).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .blobs import BlobPartitioner, MemoryBlobBackend, TurbulenceStore
from .field import TurbulenceField
from .interp import pchip_interpolate_1d
from .service import ParticleQueryService, QueryStats

__all__ = ["SnapshotSeries", "TemporalQueryService"]


class SnapshotSeries:
    """Time-ordered snapshots, each in its own blob store.

    Args:
        partitioner: Shared blob geometry for all snapshots.
        backend_factory: Called once per snapshot to create its blob
            store backend (defaults to in-memory).
    """

    def __init__(self, partitioner: BlobPartitioner,
                 backend_factory: Callable | None = None):
        self.partitioner = partitioner
        self._backend_factory = backend_factory or MemoryBlobBackend
        self._times: list[float] = []
        self._stores: list[TurbulenceStore] = []

    @property
    def times(self) -> list[float]:
        return list(self._times)

    @property
    def n_snapshots(self) -> int:
        return len(self._times)

    def add_snapshot(self, time: float, field: TurbulenceField) -> None:
        """Partition and store one snapshot.

        Snapshots must be added in strictly increasing time order and
        share one grid geometry.
        """
        if self._times and time <= self._times[-1]:
            raise ValueError(
                f"snapshot times must increase; {time} after "
                f"{self._times[-1]}")
        store = TurbulenceStore(self.partitioner,
                                self._backend_factory())
        store.load_field(field)
        if self._stores and store.box_size != self._stores[0].box_size:
            raise ValueError("snapshots must share one box size")
        self._times.append(float(time))
        self._stores.append(store)

    def store_at(self, index: int) -> TurbulenceStore:
        return self._stores[index]

    def bracketing(self, time: float) -> tuple[int, int, float]:
        """Snapshot indices around ``time`` and the blend weight.

        Returns ``(i0, i1, w)`` with the query time at
        ``(1 - w) * t[i0] + w * t[i1]``.  Times outside the covered
        range are rejected (no extrapolation, like the service).
        """
        times = self._times
        if not times:
            raise ValueError("the series holds no snapshots")
        if time < times[0] or time > times[-1]:
            raise ValueError(
                f"time {time} outside the stored range "
                f"[{times[0]}, {times[-1]}]")
        i1 = int(np.searchsorted(times, time, side="right"))
        if i1 > 0 and times[i1 - 1] == time:
            return i1 - 1, i1 - 1, 0.0
        i0 = i1 - 1
        w = (time - times[i0]) / (times[i1] - times[i0])
        return i0, i1, float(w)


class TemporalQueryService:
    """Interpolates the field at arbitrary positions *and times*.

    Args:
        series: A loaded :class:`SnapshotSeries`.
        kernel: Spatial kernel (see
            :data:`repro.science.turbulence.interp.KERNELS`).
        time_interp: ``"linear"`` (two bracketing snapshots) or
            ``"pchip"`` (four, overshoot-free — the production
            service's temporal PCHIP).
    """

    def __init__(self, series: SnapshotSeries, kernel: str = "lagrange8",
                 time_interp: str = "linear"):
        if series.n_snapshots < 1:
            raise ValueError("the series holds no snapshots")
        if time_interp not in ("linear", "pchip"):
            raise ValueError("time_interp must be 'linear' or 'pchip'")
        if time_interp == "pchip" and series.n_snapshots < 4:
            raise ValueError("temporal PCHIP needs at least 4 snapshots")
        self.series = series
        self.kernel = kernel
        self.time_interp = time_interp
        self._spatial = [ParticleQueryService(series.store_at(i), kernel)
                         for i in range(series.n_snapshots)]

    def _spatial_at(self, snapshot_index: int, positions: np.ndarray,
                    stats: QueryStats) -> np.ndarray:
        values, s = self._spatial[snapshot_index].query(positions)
        stats.blobs_opened += s.blobs_opened
        stats.bytes_read += s.bytes_read
        stats.full_blob_bytes += s.full_blob_bytes
        stats.read_calls += s.read_calls
        return values

    def query(self, positions, times) -> tuple[np.ndarray, QueryStats]:
        """Velocities at ``(position, time)`` pairs.

        Args:
            positions: ``(n, 3)`` coordinates.
            times: Length-n times inside the stored range.

        Returns:
            ``(velocities, stats)`` with shape ``(n, 3)``.
        """
        positions = np.atleast_2d(np.asarray(positions, dtype="f8"))
        times = np.asarray(times, dtype="f8").reshape(-1)
        if times.shape[0] != positions.shape[0]:
            raise ValueError("one time per position required")
        out = np.empty((len(positions), 3))
        stats = QueryStats(particles=len(positions))

        if self.time_interp == "linear":
            self._query_linear(positions, times, out, stats)
        else:
            self._query_pchip(positions, times, out, stats)
        return out, stats

    def _query_linear(self, positions, times, out, stats) -> None:
        # Group particles by bracketing snapshot pair so each snapshot
        # is queried in batches.
        groups: dict[tuple[int, int], list[int]] = {}
        weights = np.empty(len(positions))
        for i, t in enumerate(times):
            i0, i1, w = self.series.bracketing(float(t))
            groups.setdefault((i0, i1), []).append(i)
            weights[i] = w
        for (i0, i1), members in sorted(groups.items()):
            idx = np.array(members)
            v0 = self._spatial_at(i0, positions[idx], stats)
            if i1 == i0:
                out[idx] = v0
                continue
            v1 = self._spatial_at(i1, positions[idx], stats)
            w = weights[idx][:, None]
            out[idx] = (1.0 - w) * v0 + w * v1

    def _query_pchip(self, positions, times, out, stats) -> None:
        series_times = np.array(self.series.times)
        n = len(series_times)
        groups: dict[int, list[int]] = {}
        for i, t in enumerate(times):
            i0, i1, _w = self.series.bracketing(float(t))
            # Four-point stencil [k, k+1, k+2, k+3] with the query in
            # the middle interval, clamped at the series ends.
            k = min(max(i0 - 1, 0), n - 4)
            groups.setdefault(k, []).append(i)
        for k, members in sorted(groups.items()):
            idx = np.array(members)
            stencil = [self._spatial_at(k + j, positions[idx], stats)
                       for j in range(4)]
            for row, i in enumerate(idx):
                # Map the query time onto stencil coordinates where the
                # four nodes sit at 0..3 (non-uniform steps handled by
                # a local linear rescale of the middle interval).
                t = times[i]
                t0, t1 = series_times[k + 1], series_times[k + 2]
                if t <= t0:
                    s = 1.0
                elif t >= t1:
                    s = 2.0
                else:
                    s = 1.0 + (t - t0) / (t1 - t0)
                for c in range(3):
                    y = np.array([stencil[j][row, c] for j in range(4)])
                    out[i, c] = pchip_interpolate_1d(y, s)
