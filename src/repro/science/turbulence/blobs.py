"""Z-order blob partitioning of turbulence snapshots.

Paper Section 2.1: "The data is partitioned along a space filling curve
(z-index) into cubes of (64+8)^3.  The +8 means that each cube contains
an extra 8 voxel wide buffer so that particles on the edge of the
original cube still have their neighbors within 4 voxels in the same
blob.  Each blob is about 6 MB and stored in a separate row."

:class:`BlobPartitioner` cuts a :class:`~repro.science.turbulence.field.
TurbulenceField` into cubes of ``cube_size`` voxels with a ``ghost``
voxel overlap on every face (periodic wrap), serializes each cube —
ghost zones included — as a max array of shape
``(4, cube+2g, cube+2g, cube+2g)``, and keys it by the Morton code of
its cube coordinate, so blobs that are close in space are close in key
order (and therefore on disk).

Storage backends: an in-memory dict, the storage-engine database (blobs
as out-of-page ``varbinary_max`` rows supporting *partial* reads), or a
SQLite database through :mod:`repro.sqlbind` (partial reads via
incremental blob IO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ...core.partial import BlobStream, BytesBlobStream
from ...core.sqlarray import SqlArray
from ...spatial.zorder import decode3, encode3
from .field import TurbulenceField

__all__ = [
    "BlobPartitioner",
    "BlobStore",
    "MemoryBlobBackend",
    "EngineBlobBackend",
    "SqliteBlobBackend",
    "TurbulenceStore",
]


class BlobStore(Protocol):
    """Backend interface: store blobs by z-index key, reopen them as
    streams."""

    def put(self, zindex: int, blob: bytes) -> None: ...

    def open(self, zindex: int) -> BlobStream: ...

    def keys(self) -> list[int]: ...


class MemoryBlobBackend:
    """Dict-backed store (unit tests, quick examples)."""

    def __init__(self):
        self._blobs: dict[int, bytes] = {}

    def put(self, zindex: int, blob: bytes) -> None:
        self._blobs[zindex] = blob

    def open(self, zindex: int) -> BytesBlobStream:
        return BytesBlobStream(self._blobs[zindex])

    def keys(self) -> list[int]:
        return sorted(self._blobs)


class EngineBlobBackend:
    """Blob rows in the storage-engine simulator.

    Each blob is a ``(zindex BIGINT PK, data VARBINARY(MAX))`` row;
    opening a key returns the out-of-page blob-tree stream, so partial
    reads touch only the pages the requested window covers — with full
    IO accounting through the database's buffer pool.
    """

    def __init__(self, db, table_name: str = "turbulence"):
        from ...engine import Column
        self._db = db
        self._table = db.create_table(table_name, [
            Column("zindex", "bigint"),
            Column("data", "varbinary_max"),
        ])
        self._keys: list[int] = []

    @property
    def table(self):
        return self._table

    def put(self, zindex: int, blob: bytes) -> None:
        self._table.insert((zindex, blob))
        self._keys.append(zindex)

    def open(self, zindex: int) -> BlobStream:
        row = self._table.get(zindex, self._db.pool)
        if row is None:
            raise KeyError(f"no blob with z-index {zindex}")
        handle = row[1]
        if isinstance(handle, (bytes, bytearray)):
            return BytesBlobStream(handle)
        return handle.open_stream(self._db.pool)

    def keys(self) -> list[int]:
        return sorted(self._keys)


class SqliteBlobBackend:
    """Blob rows in SQLite, streamed via incremental blob handles."""

    def __init__(self, conn, table_name: str = "turbulence"):
        self._conn = conn
        self._table = table_name
        conn.execute(f"CREATE TABLE IF NOT EXISTS {table_name} "
                     "(zindex INTEGER PRIMARY KEY, data BLOB)")

    def put(self, zindex: int, blob: bytes) -> None:
        self._conn.execute(
            f"INSERT INTO {self._table} VALUES (?, ?)", (zindex, blob))

    def open(self, zindex: int) -> BlobStream:
        row = self._conn.execute(
            f"SELECT rowid FROM {self._table} WHERE zindex = ?",
            (zindex,)).fetchone()
        if row is None:
            raise KeyError(f"no blob with z-index {zindex}")
        return self._conn.open_array_blob(self._table, "data", row[0])

    def keys(self) -> list[int]:
        return [r[0] for r in self._conn.execute(
            f"SELECT zindex FROM {self._table} ORDER BY zindex")]


@dataclass(frozen=True)
class BlobPartitioner:
    """Geometry of the z-order blob decomposition.

    Args:
        grid_size: Field voxels per axis.
        cube_size: Core voxels per blob axis (the paper's 64).
        ghost: Overlap voxels on *each* face (the paper's 4, giving the
            "+8" total).
    """

    grid_size: int
    cube_size: int
    ghost: int

    def __post_init__(self):
        if self.grid_size % self.cube_size != 0:
            raise ValueError(
                f"cube_size {self.cube_size} must divide grid_size "
                f"{self.grid_size}")
        if not 0 <= self.ghost < self.cube_size:
            raise ValueError("ghost must be in [0, cube_size)")

    @property
    def cubes_per_axis(self) -> int:
        return self.grid_size // self.cube_size

    @property
    def blob_edge(self) -> int:
        """Stored blob edge length in voxels (core + both ghosts)."""
        return self.cube_size + 2 * self.ghost

    def zindex_of_cube(self, cx: int, cy: int, cz: int) -> int:
        return encode3(cx, cy, cz)

    def cube_of_voxel(self, i: int, j: int, k: int) -> tuple[int, int, int]:
        n = self.cubes_per_axis
        return ((i // self.cube_size) % n, (j // self.cube_size) % n,
                (k // self.cube_size) % n)

    def extract_blob(self, field: TurbulenceField,
                     cx: int, cy: int, cz: int) -> SqlArray:
        """Cut one cube (with periodic ghost zones) out of a field and
        wrap it as a max array of shape ``(n_components, e, e, e)``."""
        n = self.grid_size
        e = self.blob_edge
        idx = [np.mod(np.arange(c * self.cube_size - self.ghost,
                                c * self.cube_size - self.ghost + e), n)
               for c in (cx, cy, cz)]
        cube = field.data[
            :, idx[0][:, None, None], idx[1][None, :, None],
            idx[2][None, None, :]]
        return SqlArray.from_numpy(np.asfortranarray(cube), "float32")


class TurbulenceStore:
    """A partitioned snapshot in a blob store.

    This is the database of Section 2.1 in miniature: one row per
    z-order cube, the blob holding the ghost-padded ``(4, e, e, e)``
    array.
    """

    def __init__(self, partitioner: BlobPartitioner, backend: BlobStore):
        self.partitioner = partitioner
        self.backend = backend
        self.box_size: float | None = None
        self.n_components: int = 4

    def load_field(self, field: TurbulenceField) -> int:
        """Partition and store a snapshot; returns the blob count.

        Blobs are inserted in Morton order, so clustered storage lays
        them out along the space-filling curve (the paper's layout).
        """
        p = self.partitioner
        if field.grid_size != p.grid_size:
            raise ValueError(
                f"field grid {field.grid_size} does not match "
                f"partitioner grid {p.grid_size}")
        self.box_size = field.box_size
        self.n_components = field.n_components
        cubes = []
        n = p.cubes_per_axis
        for cx in range(n):
            for cy in range(n):
                for cz in range(n):
                    cubes.append((p.zindex_of_cube(cx, cy, cz),
                                  cx, cy, cz))
        cubes.sort()
        for zindex, cx, cy, cz in cubes:
            blob = p.extract_blob(field, cx, cy, cz)
            self.backend.put(zindex, blob.to_blob())
        return len(cubes)

    def open_cube(self, cx: int, cy: int, cz: int) -> BlobStream:
        """Open the blob stream of one cube."""
        return self.backend.open(
            self.partitioner.zindex_of_cube(cx, cy, cz))

    def cube_coordinates(self) -> list[tuple[int, int, int]]:
        """Cube coordinates of every stored blob (Morton order)."""
        return [decode3(z) for z in self.backend.keys()]
