"""Synthetic isotropic turbulence fields.

The paper's turbulence database (Section 2.1) holds snapshots of "a
1024^3 simulation of a box with isotropic turbulence" — velocity (three
components) and pressure on a regular periodic grid.  The actual JHU
simulation output is not available offline, so this module generates the
standard synthetic stand-in: a divergence-free (solenoidal) Gaussian
random velocity field with a Kolmogorov-like energy spectrum
``E(k) ~ k^(-5/3)``, plus a consistent pressure-like scalar field.

What matters for the reproduction is *access-pattern equivalence*: the
field is a dense ``(4, n, n, n)`` array (u, v, w, p per voxel) that gets
partitioned into z-order blobs and interpolated at particle positions —
the same code path the paper's service exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TurbulenceField", "make_field", "make_mhd_field"]


@dataclass(frozen=True)
class TurbulenceField:
    """One snapshot of a periodic turbulence box.

    Attributes:
        data: ``(4, n, n, n)`` float32 array — components
            ``u, v, w, p`` per voxel, with voxel ``(i, j, k)`` centered
            at ``((i + .5) h, (j + .5) h, (k + .5) h)``, ``h = box_size / n``.
        box_size: Physical box edge length.
    """

    data: np.ndarray
    box_size: float

    @property
    def n_components(self) -> int:
        """Per-voxel values stored (4 for hydro: u, v, w, p; 8 for MHD:
        + Bx, By, Bz, magnetic pressure)."""
        return self.data.shape[0]

    @property
    def grid_size(self) -> int:
        return self.data.shape[1]

    @property
    def voxel_size(self) -> float:
        return self.box_size / self.grid_size

    def velocity_at_voxels(self, indices: np.ndarray) -> np.ndarray:
        """Velocity vectors at integer voxel indices (``(m, 3)`` in,
        ``(m, 3)`` out; periodic wrapping)."""
        idx = np.mod(np.asarray(indices, dtype=np.int64), self.grid_size)
        return np.stack([self.data[c, idx[:, 0], idx[:, 1], idx[:, 2]]
                         for c in range(3)], axis=1)


def _solenoidal_spectrum_field(n: int, rng: np.random.Generator,
                               slope: float) -> np.ndarray:
    """Three-component divergence-free Gaussian random field with
    ``E(k) ~ k^slope`` on an ``n^3`` periodic grid."""
    k1 = np.fft.fftfreq(n, d=1.0 / n)
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    k2 = kx ** 2 + ky ** 2 + kz ** 2
    k2[0, 0, 0] = 1.0  # avoid division by zero; mode zeroed below
    kmag = np.sqrt(k2)

    # Amplitude per mode: E(k) ~ k^slope distributed over ~k^2 modes
    # per shell gives |u_k| ~ k^((slope - 2) / 2).
    amp = kmag ** ((slope - 2.0) / 2.0)
    amp[0, 0, 0] = 0.0
    # Truncate near the Nyquist shell to keep the field smooth enough
    # for high-order interpolation.
    amp[kmag > n / 3.0] = 0.0

    shape = (3, n, n, n)
    field_k = (rng.standard_normal(shape)
               + 1j * rng.standard_normal(shape)) * amp

    # Project out the compressive part: u_k -> (I - k k^T / k^2) u_k.
    kdotu = kx * field_k[0] + ky * field_k[1] + kz * field_k[2]
    field_k[0] -= kx * kdotu / k2
    field_k[1] -= ky * kdotu / k2
    field_k[2] -= kz * kdotu / k2

    velocity = np.fft.ifftn(field_k, axes=(1, 2, 3)).real
    rms = velocity.std()
    if rms > 0:
        velocity /= rms
    return velocity


def make_field(grid_size: int = 64, box_size: float = 2 * np.pi,
               seed: int = 0, slope: float = -5.0 / 3.0
               ) -> TurbulenceField:
    """Generate a synthetic turbulence snapshot.

    Args:
        grid_size: Voxels per axis (the paper uses 1024; scaled down
            for laptop runs).
        box_size: Physical edge length.
        seed: RNG seed (fields are reproducible).
        slope: Energy spectrum exponent (Kolmogorov: -5/3).
    """
    if grid_size < 8:
        raise ValueError("grid_size must be at least 8")
    rng = np.random.default_rng(seed)
    velocity = _solenoidal_spectrum_field(grid_size, rng, slope)
    # Pressure stand-in: smooth scalar field correlated with the local
    # kinetic energy (the real field solves a Poisson equation; the
    # access pattern only needs a fourth per-voxel scalar).
    kinetic = (velocity ** 2).sum(axis=0)
    pressure = -(kinetic - kinetic.mean())
    data = np.concatenate(
        [velocity, pressure[None]], axis=0).astype(np.float32)
    return TurbulenceField(data=data, box_size=float(box_size))


def make_mhd_field(grid_size: int = 64, box_size: float = 2 * np.pi,
                   seed: int = 0, slope: float = -5.0 / 3.0
                   ) -> TurbulenceField:
    """Generate a synthetic magneto-hydrodynamic snapshot.

    The paper's database is growing beyond hydro: "Currently we are
    adding a 70 TB simulation of a magneto-hydrodynamic system."  An
    MHD snapshot carries eight per-voxel values — velocity (3),
    pressure, magnetic field (3, also divergence-free), and magnetic
    pressure |B|^2/2 — exercising the variable-component blob layout.
    """
    if grid_size < 8:
        raise ValueError("grid_size must be at least 8")
    rng = np.random.default_rng(seed)
    velocity = _solenoidal_spectrum_field(grid_size, rng, slope)
    bfield = _solenoidal_spectrum_field(grid_size, rng, slope)
    kinetic = (velocity ** 2).sum(axis=0)
    pressure = -(kinetic - kinetic.mean())
    magnetic_pressure = 0.5 * (bfield ** 2).sum(axis=0)
    data = np.concatenate(
        [velocity, pressure[None], bfield, magnetic_pressure[None]],
        axis=0).astype(np.float32)
    return TurbulenceField(data=data, box_size=float(box_size))
