"""Interpolation kernels for the turbulence service.

"The interpolation method provided by the service can be chosen from
nearest point, PCHIP, and 4-6-8 point Lagrangian interpolation schemes.
For the 8 point interpolation we need to convolve an 8^3 neighborhood
with an 8^3 interpolation kernel for each point." (paper Section 2.1)

All kernels are separable tensor products of 1-D weights over a uniform
grid, so interpolating one point costs one ``m^3`` neighborhood read and
one weighted sum — precisely the access pattern that motivates partial
blob reads.  PCHIP (monotone piecewise cubic Hermite, Fritsch-Carlson
slopes) is implemented from scratch.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KERNELS",
    "kernel_width",
    "lagrange_weights",
    "pchip_weights_from_values",
    "interpolate_neighborhood",
    "neighborhood_origin",
]

#: Supported kernel names mapped to their 1-D support width ``m``:
#: the kernel needs an ``m^3`` voxel neighborhood per point.
KERNELS = {
    "nearest": 1,
    "lagrange4": 4,
    "lagrange6": 6,
    "lagrange8": 8,
    "pchip": 4,
}


def kernel_width(kernel: str) -> int:
    """Support width ``m`` of a kernel (``m^3`` voxels per point)."""
    try:
        return KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {sorted(KERNELS)}")


def lagrange_weights(m: int, t: float) -> np.ndarray:
    """1-D Lagrange interpolation weights on ``m`` equispaced nodes.

    Nodes sit at integer offsets ``0 .. m-1`` and ``t`` is the query
    position on that axis (the interval of interest is between nodes
    ``m/2 - 1`` and ``m/2``, i.e. ``t`` in ``[m/2 - 1, m/2]``).  The
    weights sum to one and reproduce polynomials up to degree ``m - 1``
    exactly.
    """
    if m < 2:
        raise ValueError("Lagrange interpolation needs at least 2 nodes")
    nodes = np.arange(m, dtype="f8")
    weights = np.ones(m)
    for j in range(m):
        others = nodes[nodes != j]
        weights[j] = np.prod((t - others) / (j - others))
    return weights


def _pchip_slopes(y: np.ndarray) -> tuple[float, float]:
    """Fritsch-Carlson monotone slopes at the two interior nodes of a
    4-point stencil with unit spacing."""
    d = np.diff(y)  # secant slopes d0, d1, d2

    def slope(dl, dr):
        if dl * dr <= 0:
            return 0.0
        # Weighted harmonic mean (equal spacing -> weights 1/2, 1/2).
        return 2.0 * dl * dr / (dl + dr)

    return slope(d[0], d[1]), slope(d[1], d[2])


def pchip_interpolate_1d(y: np.ndarray, t: float) -> float:
    """Monotone cubic Hermite interpolation on a 4-point stencil.

    ``y`` holds values at nodes 0..3; ``t`` must lie in ``[1, 2]`` (the
    central interval).  Overshoot-free: the result stays within
    ``[min(y1, y2), max(y1, y2)]`` — the property PCHIP is chosen for.
    """
    m1, m2 = _pchip_slopes(np.asarray(y, dtype="f8"))
    s = t - 1.0
    h00 = (1 + 2 * s) * (1 - s) ** 2
    h10 = s * (1 - s) ** 2
    h01 = s * s * (3 - 2 * s)
    h11 = s * s * (s - 1)
    return float(h00 * y[1] + h10 * m1 + h01 * y[2] + h11 * m2)


def pchip_weights_from_values(y: np.ndarray, t: float) -> float:
    """Alias of :func:`pchip_interpolate_1d` (PCHIP is value-dependent,
    so unlike Lagrange it has no fixed weight vector)."""
    return pchip_interpolate_1d(y, t)


def neighborhood_origin(position: float, voxel_size: float, m: int,
                        ) -> tuple[int, float]:
    """Neighborhood start index and in-stencil coordinate on one axis.

    For a kernel of width ``m`` the stencil covers voxels
    ``i0 .. i0+m-1`` where the query falls between the two central
    nodes.  Returns ``(i0, t)`` with ``t`` the query position in stencil
    coordinates (voxel centers at integer offsets).
    """
    # Continuous voxel coordinate: voxel i is centered at (i + 0.5) h.
    x = position / voxel_size - 0.5
    if m == 1:
        i0 = int(np.floor(x + 0.5))  # nearest voxel center
        return i0, x - i0
    base = int(np.floor(x))
    i0 = base - (m // 2 - 1)
    return i0, x - i0


def interpolate_neighborhood(values: np.ndarray, kernel: str,
                             tx: float, ty: float, tz: float) -> float:
    """Interpolate one scalar from an ``m^3`` neighborhood.

    Args:
        values: ``(m, m, m)`` voxel values (axis order x, y, z).
        kernel: Kernel name from :data:`KERNELS`.
        tx/ty/tz: In-stencil coordinates from
            :func:`neighborhood_origin`.
    """
    m = kernel_width(kernel)
    values = np.asarray(values, dtype="f8")
    if values.shape != (m, m, m):
        raise ValueError(
            f"kernel {kernel} needs a {(m, m, m)} neighborhood, got "
            f"{values.shape}")
    if kernel == "nearest":
        return float(values[0, 0, 0])
    if kernel == "pchip":
        # Separable: collapse z, then y, then x with 1-D PCHIP.
        along_z = np.empty((m, m))
        for i in range(m):
            for j in range(m):
                along_z[i, j] = pchip_interpolate_1d(values[i, j], tz)
        along_y = np.empty(m)
        for i in range(m):
            along_y[i] = pchip_interpolate_1d(along_z[i], ty)
        return pchip_interpolate_1d(along_y, tx)
    # Lagrange m-point: tensor product of 1-D weight vectors — the
    # "convolve an 8^3 neighborhood with an 8^3 interpolation kernel".
    wx = lagrange_weights(m, tx)
    wy = lagrange_weights(m, ty)
    wz = lagrange_weights(m, tz)
    return float(np.einsum("i,j,k,ijk->", wx, wy, wz, values))
