"""Turbulence use case (paper Section 2.1): synthetic isotropic
turbulence snapshots, z-order blob partitioning with ghost zones, and
the particle-interpolation query service with partial blob reads."""

from .blobs import (
    BlobPartitioner,
    EngineBlobBackend,
    MemoryBlobBackend,
    SqliteBlobBackend,
    TurbulenceStore,
)
from .field import TurbulenceField, make_field, make_mhd_field
from .interp import (
    KERNELS,
    interpolate_neighborhood,
    kernel_width,
    lagrange_weights,
    neighborhood_origin,
    pchip_interpolate_1d,
)
from .service import ParticleQueryService, QueryStats
from .subdomain import SubdomainStats, extract_subdomain
from .temporal import SnapshotSeries, TemporalQueryService

__all__ = [
    "TurbulenceField",
    "make_field",
    "make_mhd_field",
    "BlobPartitioner",
    "TurbulenceStore",
    "MemoryBlobBackend",
    "EngineBlobBackend",
    "SqliteBlobBackend",
    "KERNELS",
    "kernel_width",
    "lagrange_weights",
    "pchip_interpolate_1d",
    "neighborhood_origin",
    "interpolate_neighborhood",
    "ParticleQueryService",
    "QueryStats",
    "SnapshotSeries",
    "TemporalQueryService",
    "extract_subdomain",
    "SubdomainStats",
]
