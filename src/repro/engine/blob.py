"""Out-of-page blob storage and the binary stream wrapper.

SQL Server stores ``VARBINARY(MAX)`` values larger than a page
out-of-page "as B-trees", and user code reaches them through a binary
stream wrapper.  The paper attributes the slowness of max arrays to
exactly two things (Section 3.3): "(a) traversing B-trees is more
expensive than simply addressing on-page data, and (b) out-of-page data
has to go through the ... binary stream wrapper" — while crediting the
wrapper with the ability to read blobs *partially*.

This module reproduces that structure: a blob is split into page-sized
chunks hanging off a chain of pointer pages, and
:class:`BlobTreeStream` exposes the :class:`~repro.core.partial.BlobStream`
interface over it.  Every traversal page touch is counted through the
buffer pool and every ``read_at`` call is counted as a stream-wrapper
invocation, so the cost model can charge both effects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .bufferpool import BufferPool
from .constants import BLOB_CHUNK_SIZE, PAGE_BLOB
from .page import PageFile

__all__ = ["BlobRef", "BlobStore", "BlobTreeStream"]

_PTR_STRUCT = struct.Struct("<i")
#: Chunk page ids stored per pointer page (one packed record).
_PTRS_PER_PAGE = 1800


@dataclass(frozen=True)
class BlobRef:
    """Pointer left in a data row for an out-of-page blob.

    Attributes:
        first_pointer_page: Page id of the first pointer page.
        length: Blob length in bytes.
    """

    first_pointer_page: int
    length: int


class BlobStore:
    """Allocates and reads out-of-page blobs in a page file."""

    def __init__(self, pagefile: PageFile, tag: str = "blobs"):
        self._pagefile = pagefile
        self._tag = tag

    def store(self, blob: bytes) -> BlobRef:
        """Write a blob out-of-page; returns the row pointer.

        The blob is cut into :data:`~repro.engine.constants.BLOB_CHUNK_SIZE`
        chunks, one chunk per blob page; chunk page ids are recorded in a
        chain of pointer pages.
        """
        blob = bytes(blob)
        chunk_ids = []
        for start in range(0, len(blob), BLOB_CHUNK_SIZE):
            page = self._pagefile.allocate(PAGE_BLOB, level=0,
                                           tag=self._tag)
            page.add_record(blob[start:start + BLOB_CHUNK_SIZE])
            chunk_ids.append(page.page_id)
        if not chunk_ids:
            # Zero-length blob: a single empty chunk keeps reads simple.
            page = self._pagefile.allocate(PAGE_BLOB, level=0,
                                           tag=self._tag)
            page.add_record(b"")
            chunk_ids.append(page.page_id)

        first_ptr = -1
        prev = None
        for start in range(0, len(chunk_ids), _PTRS_PER_PAGE):
            ptr_page = self._pagefile.allocate(PAGE_BLOB, level=1,
                                               tag=self._tag)
            ids = chunk_ids[start:start + _PTRS_PER_PAGE]
            ptr_page.add_record(struct.pack(f"<{len(ids)}i", *ids))
            if prev is None:
                first_ptr = ptr_page.page_id
            else:
                prev.next_page = ptr_page.page_id
            prev = ptr_page
        return BlobRef(first_pointer_page=first_ptr, length=len(blob))

    def open(self, ref: BlobRef, pool: BufferPool) -> "BlobTreeStream":
        """Open a stream over a stored blob; reads are charged to
        ``pool``."""
        return BlobTreeStream(self._pagefile, ref, pool)

    def read_all(self, ref: BlobRef, pool: BufferPool) -> bytes:
        """Materialize the whole blob (what a full-array operation
        does)."""
        stream = self.open(ref, pool)
        return stream.read_at(0, ref.length)

    def read_range(self, ref: BlobRef, pool: BufferPool,
                   offset: int, size: int) -> bytes:
        """Read one byte range of a stored blob, touching only the
        chunk pages the range covers (the wire layer's partial-read
        path: a ``bquery`` slice never walks pages outside the
        slice)."""
        return self.open(ref, pool).read_at(offset, size)


class BlobTreeStream:
    """Random-access stream over an out-of-page blob.

    Implements the :class:`repro.core.partial.BlobStream` protocol, so
    :func:`repro.core.partial.read_subarray` can subset stored max arrays
    without materializing them.

    Attributes:
        stream_calls: ``read_at`` invocations (each models one trip
            through the .NET binary stream wrapper).
        bytes_read: Payload bytes returned.
    """

    def __init__(self, pagefile: PageFile, ref: BlobRef, pool: BufferPool):
        self._pagefile = pagefile
        self._ref = ref
        self._pool = pool
        self.stream_calls = 0
        self.bytes_read = 0

    def length(self) -> int:
        return self._ref.length

    def _chunk_page_id(self, chunk_index: int) -> int:
        """Resolve a chunk's page id by walking the pointer chain.

        Each pointer page visited is a (counted) page fetch — the B-tree
        traversal cost of out-of-page access.
        """
        ptr_page = self._pool.fetch(self._ref.first_pointer_page)
        while chunk_index >= _PTRS_PER_PAGE:
            chunk_index -= _PTRS_PER_PAGE
            ptr_page = self._pool.fetch(ptr_page.next_page)
        record = ptr_page.get_record(0)
        return _PTR_STRUCT.unpack_from(record, 4 * chunk_index)[0]

    def read_at(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset``, touching only the chunk
        pages the range covers."""
        if offset < 0 or offset + size > self._ref.length:
            raise ValueError(
                f"read [{offset}, {offset + size}) beyond blob of "
                f"{self._ref.length} bytes")
        self.stream_calls += 1
        self.bytes_read += size
        parts = []
        pos = offset
        end = offset + size
        while pos < end:
            chunk_index, within = divmod(pos, BLOB_CHUNK_SIZE)
            page = self._pool.fetch(self._chunk_page_id(chunk_index))
            chunk = page.get_record(0)
            take = min(len(chunk) - within, end - pos)
            parts.append(chunk[within:within + take])
            pos += take
        return b"".join(parts)
