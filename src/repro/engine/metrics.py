"""Query metrics: the three columns of the paper's Table 1.

The paper reports, per query: execution time (s), CPU load (%), and IO
throughput (MB/s).  :class:`QueryMetrics` carries those plus the raw
counters they derive from, and :func:`format_table` prints a set of
metrics rows the way Table 1 is laid out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["QueryMetrics", "format_table"]


@dataclass
class QueryMetrics:
    """Simulated and measured metrics of one query execution.

    Attributes:
        label: Query name ("Query 1", ...).
        rows: Rows processed.
        io_bytes: Physical bytes read.
        physical_reads / sequential_reads / random_reads: Page-level
            counters from the buffer pool.
        stream_calls: Trips through the blob stream wrapper.
        udf_calls: Scalar UDF invocations.
        sim_io_seconds: IO busy time under the cost model.
        sim_io_seq_seconds / sim_io_random_seconds: Its decomposition
            into streaming-read time and seek time.
        sim_cpu_core_seconds: Total CPU work across all cores.
        sim_exec_seconds: Modeled wall-clock execution time.
        wall_seconds: Actual Python wall time (for the scaled-down run;
            not comparable to the paper's numbers, reported for
            completeness).
    """

    label: str = ""
    rows: int = 0
    io_bytes: int = 0
    physical_reads: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    stream_calls: int = 0
    udf_calls: int = 0
    sim_io_seconds: float = 0.0
    sim_io_seq_seconds: float = 0.0
    sim_io_random_seconds: float = 0.0
    sim_cpu_core_seconds: float = 0.0
    sim_exec_seconds: float = 0.0
    cores: int = 8
    wall_seconds: float = 0.0
    #: Which execution path produced the result: ``"row"`` (tuple at a
    #: time), ``"vector"`` (columnar batches) or ``"parallel"``
    #: (morsel-driven multi-process).  Purely diagnostic — all paths
    #: return identical results and cold-run IO counters.
    engine: str = "row"
    #: Worker processes used by the parallel engine (0 for the serial
    #: engines).
    workers: int = 0

    @property
    def cpu_percent(self) -> float:
        """CPU load in percent of all cores, as Table 1 reports it."""
        if self.sim_exec_seconds == 0:
            return 0.0
        return min(
            100.0,
            100.0 * self.sim_cpu_core_seconds
            / (self.sim_exec_seconds * self.cores))

    @property
    def io_mb_per_s(self) -> float:
        """IO throughput in MB/s (decimal megabytes, like the paper)."""
        if self.sim_exec_seconds == 0:
            return 0.0
        return self.io_bytes / self.sim_exec_seconds / 1e6

    def to_dict(self) -> dict:
        """All fields plus the derived Table 1 columns, as a plain
        JSON-serializable dict.

        This is the one canonical flattening of a metrics object — the
        wire protocol's metrics payload (:mod:`repro.server.protocol`)
        and the benchmark collectors both use it instead of plucking
        fields ad hoc.
        """
        return {
            "label": self.label,
            "rows": self.rows,
            "io_bytes": self.io_bytes,
            "physical_reads": self.physical_reads,
            "sequential_reads": self.sequential_reads,
            "random_reads": self.random_reads,
            "stream_calls": self.stream_calls,
            "udf_calls": self.udf_calls,
            "sim_io_seconds": self.sim_io_seconds,
            "sim_io_seq_seconds": self.sim_io_seq_seconds,
            "sim_io_random_seconds": self.sim_io_random_seconds,
            "sim_cpu_core_seconds": self.sim_cpu_core_seconds,
            "sim_exec_seconds": self.sim_exec_seconds,
            "cores": self.cores,
            "wall_seconds": self.wall_seconds,
            "engine": self.engine,
            "workers": self.workers,
            # Derived Table 1 columns.
            "cpu_percent": self.cpu_percent,
            "io_mb_per_s": self.io_mb_per_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryMetrics":
        """Rebuild a metrics object from :meth:`to_dict` output
        (derived keys are ignored; unknown keys rejected)."""
        fields = {k: v for k, v in data.items()
                  if k not in ("cpu_percent", "io_mb_per_s")}
        return cls(**fields)

    def scaled(self, row_factor: float,
               fixed_random_reads: int = 0) -> "QueryMetrics":
        """Project the metrics to a dataset ``row_factor`` times larger.

        IO bytes and CPU work scale linearly with rows; the derived
        time/percent/throughput columns are recomputed from the scaled
        totals.  This is how the harness reports paper-scale (357 M row)
        predictions from a laptop-scale run.

        Args:
            row_factor: Data-size multiplier.
            fixed_random_reads: Random page reads that do *not* grow
                with the data (an index descent to the first leaf is a
                constant few seeks at any scale); the rest of the
                random reads are scaled like everything else.
        """
        fixed = min(int(fixed_random_reads), self.random_reads)
        scaling_random = self.random_reads - fixed
        # Seek time per random read, from the unscaled decomposition.
        per_seek = (self.sim_io_random_seconds / self.random_reads
                    if self.random_reads else 0.0)
        cpu = self.sim_cpu_core_seconds * row_factor
        io_b = int(self.io_bytes * row_factor)
        random_total = fixed + int(scaling_random * row_factor)
        io_s = (self.sim_io_seq_seconds * row_factor
                + per_seek * random_total)
        return QueryMetrics(
            label=self.label,
            rows=int(self.rows * row_factor),
            io_bytes=io_b,
            physical_reads=int(self.physical_reads * row_factor),
            sequential_reads=int(self.sequential_reads * row_factor),
            random_reads=random_total,
            stream_calls=int(self.stream_calls * row_factor),
            udf_calls=int(self.udf_calls * row_factor),
            sim_io_seconds=io_s,
            sim_io_seq_seconds=self.sim_io_seq_seconds * row_factor,
            sim_io_random_seconds=per_seek * random_total,
            sim_cpu_core_seconds=cpu,
            sim_exec_seconds=max(io_s, cpu / self.cores),
            cores=self.cores,
            wall_seconds=self.wall_seconds,
            engine=self.engine,
            workers=self.workers,
        )


def format_table(rows: Sequence[QueryMetrics],
                 title: str = "Query performance test results") -> str:
    """Render metrics like the paper's Table 1."""
    lines = [title,
             f"{'Query':<28} {'Execution time [s]':>19} "
             f"{'CPU load [%]':>13} {'I/O [MB/s]':>11}"]
    for m in rows:
        lines.append(
            f"{m.label:<28} {m.sim_exec_seconds:>19.0f} "
            f"{m.cpu_percent:>13.0f} {m.io_mb_per_s:>11.0f}")
    return "\n".join(lines)
