"""Reader/writer lock for the shared engine.

The paper's array library runs inside SQL Server, whose lock manager
lets any number of readers scan a table while writers are serialized
(the Table 1 queries even opt *out* of shared locks with ``WITH
(NOLOCK)``).  The reproduction's engine was single-threaded until the
serving layer (:mod:`repro.server`) started multiplexing per-connection
sessions over one shared :class:`~repro.engine.executor.Database`; this
module supplies the equivalent coarse-grained protection: a
writer-preferring reader/writer lock taken at statement granularity.

Readers (SELECT) share; writers (CREATE/INSERT/DELETE, index builds)
are exclusive.  Writer preference keeps a steady stream of analytical
scans from starving catalog changes.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from . import lockcheck

__all__ = ["RWLock"]


class RWLock:
    """A writer-preferring reader/writer lock.

    Any number of threads may hold the read side at once; the write
    side is exclusive against both readers and other writers.  Once a
    writer is waiting, new readers queue behind it.

    Not reentrant on the write side, and a read holder must not try to
    take the write side (classic upgrade deadlock) — callers lock at
    statement granularity, entering once per statement.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        # Sentinel identity (REPRO_LOCK_CHECK=1): owners re-stamp —
        # the LatchManager marks its catalog latch "catalog" and each
        # per-table latch "table" with the table name.
        self.lock_class = "db"
        self.lock_name: str | None = None

    # -- read side -----------------------------------------------------------

    def acquire_read(self, timeout: float | None = None) -> bool:
        """Take the shared side; returns False on timeout."""
        lockcheck.note_acquire(self.lock_class, self.lock_name)
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer and not self._writers_waiting,
                timeout)
            if not ok:
                lockcheck.note_release(self.lock_class, self.lock_name)
                return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a read holder")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        lockcheck.note_release(self.lock_class, self.lock_name)

    @contextmanager
    def read_lock(self) -> Iterator["RWLock"]:
        """``with lock.read_lock(): ...`` — shared access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # -- write side -----------------------------------------------------------

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Take the exclusive side; returns False on timeout."""
        lockcheck.note_acquire(self.lock_class, self.lock_name)
        with self._cond:
            self._writers_waiting += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer and self._readers == 0,
                    timeout)
                if not ok:
                    lockcheck.note_release(self.lock_class,
                                           self.lock_name)
                    return False
                self._writer = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            if not self._writer:
                raise RuntimeError("release_write without the write holder")
            self._writer = False
            self._cond.notify_all()
        lockcheck.note_release(self.lock_class, self.lock_name)

    @contextmanager
    def write_lock(self) -> Iterator["RWLock"]:
        """``with lock.write_lock(): ...`` — exclusive access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
