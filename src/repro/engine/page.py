"""Slotted 8 kB pages and the page file that holds them.

A :class:`Page` is a fixed-size byte buffer with a slot array growing
backwards from the end, exactly like a SQL Server data page: records are
appended to the body and located through 2-byte slot entries, so records
can be variable length and pages report precisely how full they are.

The :class:`PageFile` is the flat page address space ("the database
file"); every page is reachable by id.  All access goes through the
buffer pool (:mod:`repro.engine.bufferpool`) so reads are counted and
charged to the IO model.
"""

from __future__ import annotations

import struct
from typing import Iterator

from . import lockcheck
from .constants import (
    EXTENT_PAGES,
    PAGE_BODY_SIZE,
    PAGE_HEADER_SIZE,
    PAGE_SIZE,
    SLOT_SIZE,
)

__all__ = ["Page", "PageFile", "PageFullError"]

_HEADER_STRUCT = struct.Struct("<IBBHiiH")  # page_id, kind, level,
# slot_count, prev_page, next_page, free_offset


class PageFullError(Exception):
    """Raised when a record does not fit in the page's free space."""


class Page:
    """One fixed-size slotted page.

    Attributes:
        page_id: Address of this page in the page file.
        kind: One of the ``PAGE_*`` tags from
            :mod:`repro.engine.constants`.
        level: B-tree level (0 for leaves and plain data pages).
        prev_page / next_page: Sibling links for leaf-level scans
            (-1 when absent).
        pv: Table version that created this page object (0 for pages
            never touched by an MVCC writer).  The page *id* is stable
            across versions — copy-on-write clones keep the id and bump
            only ``pv`` — so sibling and parent links never need
            cross-page rewrites when a page is versioned.
    """

    __slots__ = ("page_id", "kind", "level", "prev_page", "next_page",
                 "pv", "_body", "_slots")

    def __init__(self, page_id: int, kind: int, level: int = 0,
                 pv: int = 0):
        self.page_id = page_id
        self.kind = kind
        self.level = level
        self.prev_page = -1
        self.next_page = -1
        self.pv = pv
        self._body = bytearray()
        self._slots: list[tuple[int, int]] = []  # (offset, length)

    def clone(self, pv: int) -> "Page":
        """Copy-on-write twin: same id and content, new version stamp."""
        twin = Page(self.page_id, self.kind, self.level, pv=pv)
        twin.prev_page = self.prev_page
        twin.next_page = self.next_page
        twin._body = bytearray(self._body)
        twin._slots = list(self._slots)
        return twin

    # -- capacity ---------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return len(self._slots)

    @property
    def used_bytes(self) -> int:
        """Bytes consumed, header and slot array included."""
        return (PAGE_HEADER_SIZE + len(self._body)
                + SLOT_SIZE * len(self._slots))

    @property
    def free_bytes(self) -> int:
        return PAGE_SIZE - self.used_bytes

    def fits(self, record_size: int) -> bool:
        """Whether a record of ``record_size`` bytes fits (with its
        slot entry)."""
        return record_size + SLOT_SIZE <= self.free_bytes

    # -- records ------------------------------------------------------------

    def add_record(self, record: bytes) -> int:
        """Append a record; returns its slot number.

        Raises:
            PageFullError: if the record does not fit.
        """
        if len(record) > PAGE_BODY_SIZE:
            raise PageFullError(
                f"record of {len(record)} bytes can never fit a page "
                f"(body is {PAGE_BODY_SIZE} bytes)")
        if not self.fits(len(record)):
            raise PageFullError(
                f"record of {len(record)} bytes does not fit in "
                f"{self.free_bytes} free bytes")
        offset = len(self._body)
        self._body += record
        self._slots.append((offset, len(record)))
        return len(self._slots) - 1

    def insert_record(self, slot: int, record: bytes) -> None:
        """Insert a record at a slot position, shifting later slots
        (B-tree pages keep records in key order)."""
        if not self.fits(len(record)):
            raise PageFullError(
                f"record of {len(record)} bytes does not fit in "
                f"{self.free_bytes} free bytes")
        offset = len(self._body)
        self._body += record
        self._slots.insert(slot, (offset, len(record)))

    def get_record(self, slot: int) -> bytes:
        """Read the record in one slot."""
        offset, length = self._slots[slot]
        return bytes(self._body[offset:offset + length])

    def replace_record(self, slot: int, record: bytes) -> None:
        """Replace the record in a slot (used by B-tree maintenance).

        The old bytes are left as garbage in the body, like a real
        slotted page before compaction; compaction happens implicitly on
        :meth:`split_records`.
        """
        growth = len(record)
        if growth + SLOT_SIZE > self.free_bytes + 0:
            raise PageFullError("replacement record does not fit")
        offset = len(self._body)
        self._body += record
        self._slots[slot] = (offset, len(record))

    def delete_record(self, slot: int) -> None:
        """Remove a slot (bytes become garbage until compaction)."""
        del self._slots[slot]

    def records(self) -> Iterator[bytes]:
        """Iterate all records in slot order."""
        for offset, length in self._slots:
            yield bytes(self._body[offset:offset + length])

    def take_all_records(self) -> list[bytes]:
        """Return all records and clear the page (used when splitting)."""
        records = [self.get_record(i) for i in range(len(self._slots))]
        self._body = bytearray()
        self._slots = []
        return records

    def compact(self) -> None:
        """Rewrite the body dropping garbage left by replace/delete."""
        records = [self.get_record(i) for i in range(len(self._slots))]
        self._body = bytearray()
        self._slots = []
        for record in records:
            self.add_record(record)

    def header_bytes(self) -> bytes:
        """Serialize the page header (for size accounting and tests)."""
        return _HEADER_STRUCT.pack(
            self.page_id, self.kind, self.level, len(self._slots),
            self.prev_page, self.next_page, len(self._body))


class PageFile:
    """The flat page address space of one database.

    Pages are allocated from per-tag *extents*
    (:data:`~repro.engine.constants.EXTENT_PAGES` contiguous pages per
    extent): all pages carrying the same allocation tag — one table's
    B-tree, one blob store — form long contiguous runs even when several
    objects are loaded concurrently, so clustered scans read
    sequentially.  ``page_count * PAGE_SIZE`` is the database size,
    unused extent slack included (as in a real data file).
    """

    def __init__(self):
        self._pages: list[Page | None] = []
        self._extents: dict[str | None, list[int]] = {}
        # Superseded page versions, keyed by page id, ascending ``pv``.
        # Written only by MVCC writers (under their table's exclusive
        # mutate step) and pruned by version retirement; readers resolve
        # against it without any lock — every update replaces the list
        # object wholesale, so a racing reader holding an old list still
        # sees a consistent chain.
        self._history: dict[int, list[Page]] = {}
        # Leaf mutex: extent bookkeeping is shared across tables (and
        # all tables' blobs share one allocation tag), so overlapping
        # writers — legal under per-table latches — must serialize
        # allocation.  Nothing is acquired while it is held.
        self._lock = lockcheck.tracked_lock("pagefile")

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_lock"] = None
        # Snapshots ship only the committed current pages; version
        # history is a live-process structure (pins die with the
        # process, so a worker could never resolve into it anyway).
        state["_history"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = lockcheck.tracked_lock("pagefile")

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def allocated_page_count(self) -> int:
        """Pages actually holding data (extent slack excluded)."""
        return sum(1 for p in self._pages if p is not None)

    @property
    def total_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def allocate(self, kind: int, level: int = 0,
                 tag: str | None = None, pv: int = 0) -> Page:
        """Allocate a fresh page of the given kind within ``tag``'s
        current extent (a new extent is opened when it fills).
        Thread-safe: concurrent writers on different tables allocate
        under the internal mutex."""
        with self._lock:
            free = self._extents.get(tag)
            if not free:
                start = len(self._pages)
                self._pages.extend([None] * EXTENT_PAGES)
                # Keep ascending order so pages of one tag are read
                # forward.
                free = list(range(start + EXTENT_PAGES - 1, start - 1, -1))
                self._extents[tag] = free
            page_id = free.pop()
            page = Page(page_id, kind, level, pv=pv)
            self._pages[page_id] = page
            return page

    def get(self, page_id: int) -> Page:
        """Fetch a page by id (no IO accounting — use the buffer pool)."""
        page = self._pages[page_id]
        if page is None:
            raise IndexError(f"page {page_id} is unallocated extent slack")
        return page

    # -- copy-on-write versions (MVCC) ----------------------------------------

    def get_for_write(self, page_id: int, version: int
                      ) -> tuple[Page, bool]:
        """Writable page for a mutation publishing ``version``.

        If the current page was already created at ``version`` it is
        returned as-is; otherwise it is cloned (same id, ``pv`` set to
        ``version``), the old page is chained into the version history,
        and the clone is installed as current.  Returns ``(page,
        cloned)``.  The install order — history first, then the clone —
        is what keeps latch-free readers safe: a reader that sees the
        too-new clone is guaranteed to find the superseded page in the
        history already.
        """
        page = self.get(page_id)
        if page.pv == version:
            return page, False
        clone = page.clone(version)
        with self._lock:
            hist = self._history.get(page_id)
            self._history[page_id] = ([*hist, page] if hist else [page])
        self._pages[page_id] = clone
        return clone, True

    def resolve(self, page_id: int, version: int) -> Page:
        """The newest page for ``page_id`` visible at ``version``
        (``page.pv <= version``), walking the version history when the
        current page is too new.  Latch-free: see :meth:`get_for_write`
        for the ordering argument.
        """
        page = self.get(page_id)
        if page.pv <= version:
            return page
        for old in reversed(self._history.get(page_id, ())):
            if old.pv <= version:
                return old
        raise KeyError(
            f"page {page_id} has no version visible at {version} "
            "(pin retired too early?)")

    def history_len(self, page_id: int) -> int:
        """Superseded versions currently retained for one page."""
        return len(self._history.get(page_id, ()))

    def prune_history(self, page_ids, live_versions
                      ) -> list[tuple[int, int]]:
        """Drop history entries no live pinned version can resolve to.

        ``live_versions`` are the owning table's currently pinned
        versions (readers at the published tip resolve to the current
        pages and never need history).  Returns the ``(page_id, pv)``
        pairs dropped, so the buffer pool can evict their cache entries.
        Lists are replaced wholesale, never mutated, so racing readers
        stay consistent.
        """
        live = sorted(live_versions)
        dropped: list[tuple[int, int]] = []
        with self._lock:
            for pid in page_ids:
                hist = self._history.get(pid)
                if not hist:
                    continue
                current = self._pages[pid]
                bounds = [p.pv for p in hist[1:]]
                bounds.append(current.pv if current is not None
                              else hist[-1].pv + 1)
                keep = []
                for page, until in zip(hist, bounds):
                    # The entry serves reads pinned in [page.pv, until).
                    if any(page.pv <= v < until for v in live):
                        keep.append(page)
                    else:
                        dropped.append((pid, page.pv))
                if keep:
                    self._history[pid] = keep
                else:
                    del self._history[pid]
        return dropped

    def pages_of_kind(self, kind: int) -> Iterator[Page]:
        """Iterate pages with a given kind tag."""
        return (p for p in self._pages if p is not None and p.kind == kind)
