"""Clustered tables: schema, row codec, insert and scan paths.

A table is a B+tree clustered on a ``bigint`` primary key — the layout
of both evaluation tables in the paper (Section 6.2: "an ID (Int64,
clustered index)").  Rows are encoded with a SQL Server-flavoured
format: a fixed per-row overhead, a null bitmap, packed fixed-width
columns, then variable-width columns with length prefixes.
``VARBINARY(MAX)`` values larger than the in-row limit are replaced by a
16-byte pointer into the out-of-page blob store
(:mod:`repro.engine.blob`).

The size accounting is real — every byte of overhead exists in the
encoded records — which is what lets the storage-overhead benchmark
reproduce the paper's "43 % bigger" observation from first principles.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import Iterator, Sequence

from . import lockcheck
from .blob import BlobRef, BlobStore, BlobTreeStream
from .bufferpool import BufferPool
from .btree import BTree, BTreeReader
from .constants import MAX_IN_ROW_BYTES, PAGE_DATA, ROW_OVERHEAD
from .page import PageFile

__all__ = ["Column", "MaxBlobHandle", "Table", "TableSnapshot",
           "SchemaError"]

#: Sentinel bounds for write intents covering an unbounded key range.
_KEY_MIN = -(2 ** 63)
_KEY_MAX = 2 ** 63


class SchemaError(Exception):
    """Raised for invalid schemas or rows that do not match the schema."""


_FIXED_TYPES = {
    "bigint": struct.Struct("<q"),
    "int": struct.Struct("<i"),
    "smallint": struct.Struct("<h"),
    "tinyint": struct.Struct("<b"),
    "float": struct.Struct("<d"),
    "real": struct.Struct("<f"),
}
_VAR_TYPES = {"varbinary", "varbinary_max"}


@dataclass(frozen=True)
class Column:
    """One column of a table schema.

    Attributes:
        name: Column name.
        type: ``bigint``/``int``/``smallint``/``tinyint``/``float``/
            ``real``/``varbinary``/``varbinary_max``.
        cap: Byte capacity for ``varbinary`` (ignored otherwise);
            values above the cap are rejected, like ``VARBINARY(n)``.
    """

    name: str
    type: str
    cap: int = 0

    def __post_init__(self):
        if self.type not in _FIXED_TYPES and self.type not in _VAR_TYPES:
            raise SchemaError(f"unknown column type {self.type!r}")
        if self.type == "varbinary" and not 0 < self.cap <= MAX_IN_ROW_BYTES:
            raise SchemaError(
                f"varbinary cap must be in (0, {MAX_IN_ROW_BYTES}], "
                f"got {self.cap}")


@dataclass(frozen=True)
class MaxBlobHandle:
    """Value returned for an out-of-page ``varbinary_max`` cell.

    The blob is *not* materialized on scan; callers either stream it
    (:meth:`open_stream`, the partial-read path) or read it fully
    (:meth:`read_all`).
    """

    store: BlobStore
    ref: BlobRef

    @property
    def length(self) -> int:
        return self.ref.length

    def open_stream(self, pool: BufferPool) -> BlobTreeStream:
        """Open a random-access stream (reads charged to ``pool``)."""
        return self.store.open(self.ref, pool)

    def read_all(self, pool: BufferPool) -> bytes:
        """Materialize the whole blob through the stream wrapper."""
        return self.store.read_all(self.ref, pool)

    def read_range(self, pool: BufferPool, offset: int,
                   size: int) -> bytes:
        """Read one byte range without materializing the rest — the
        handle-not-bytes surface ``bquery`` serves over the wire."""
        return self.store.read_range(self.ref, pool, offset, size)


class Table:
    """A clustered table.

    Args:
        name: Table name (for messages and metrics).
        columns: Schema; the first column must be the ``bigint``
            primary key.
        pagefile: Page space shared by the database.
        blob_store: Out-of-page blob store (required if the schema has a
            ``varbinary_max`` column).
    """

    #: Set on tables of a read-only snapshot (a parallel worker's
    #: database copy); mutators refuse to run.
    _read_only = False

    def __init__(self, name: str, columns: Sequence[Column],
                 pagefile: PageFile, blob_store: BlobStore | None = None,
                 *, mvcc: bool = False):
        if not columns:
            raise SchemaError("a table needs at least one column")
        if columns[0].type != "bigint":
            raise SchemaError("the first column must be the bigint "
                              "primary key")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self.name = name
        self.columns = tuple(columns)
        self._by_name = {c.name: i for i, c in enumerate(columns)}
        self._pagefile = pagefile
        self._blob_store = blob_store
        if any(c.type == "varbinary_max" for c in columns) and \
                blob_store is None:
            raise SchemaError(
                f"table {name} has a varbinary_max column but no blob "
                "store")
        self._tree = BTree(pagefile, PAGE_DATA, tag=name)
        self._nonkey = self.columns[1:]
        self._bitmap_bytes = (len(self._nonkey) + 7) // 8
        self._indexes: dict[str, "SecondaryIndex"] = {}
        #: Count of completed write operations; the database's
        #: ``write_version`` sums these so the parallel engine can tell
        #: when its worker snapshots have gone stale.
        self.mutations = 0
        #: MVCC switch: when true, mutators copy-on-write the pages
        #: they touch and publish a new version atomically, and readers
        #: pin frozen snapshots instead of latching the table.
        self.mvcc = mvcc
        #: Last published version; 0 is the empty table as created.
        self.version = 0
        #: ``version -> (root_page_id, height, count)`` for the current
        #: version plus every version still pinned by a reader.
        self._published: dict[int, tuple[int, int, int]] = {
            0: (self._tree.root_page_id, self._tree.height,
                self._tree.count)}
        self._pins: dict[int, int] = {}
        self._pin_lock = threading.Lock()
        #: Serializes copy-on-write mutations for direct ``Table``
        #: users; under SQL the session's write latch already does, so
        #: it is uncontended there.
        self._mutate_lock = threading.Lock()
        self._intent_cond = threading.Condition()
        self._intents: list[tuple[int, int, int]] = []
        self._intent_seq = 0
        #: Page ids that currently carry version history — the pruning
        #: work-list for retirement.
        self._cow_pids: set[int] = set()
        #: Buffer pool to purge retired page versions from (wired by
        #: the owning database; ``None`` for standalone tables).
        self._pool_ref: BufferPool | None = None

    def __getstate__(self):
        state = self.__dict__.copy()
        # Locks are process-local, pins and intents die with the
        # process, and a worker snapshot only ever reads the committed
        # tip — so ship only that.
        state["_pin_lock"] = None
        state["_mutate_lock"] = None
        state["_intent_cond"] = None
        state["_pool_ref"] = None
        state["_pins"] = {}
        state["_intents"] = []
        state["_cow_pids"] = set()
        state["_published"] = {
            self.version: self._published[self.version]}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._pin_lock = threading.Lock()
        self._mutate_lock = threading.Lock()
        self._intent_cond = threading.Condition()

    # -- metadata -----------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._tree.count

    @property
    def tree(self) -> BTree:
        return self._tree

    def column_index(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name} has no column {name!r}")

    def data_page_ids(self) -> list[int]:
        """Leaf (data) page ids in key order."""
        return self._tree.leaf_page_ids()

    def data_bytes(self) -> int:
        """Bytes of leaf-level pages — what a clustered index scan
        reads."""
        from .constants import PAGE_SIZE
        return len(self.data_page_ids()) * PAGE_SIZE

    # -- row codec ------------------------------------------------------------

    def _encode_row(self, values: Sequence) -> bytes:
        if len(values) != len(self.columns):
            raise SchemaError(
                f"row has {len(values)} values for {len(self.columns)} "
                "columns")
        bitmap = bytearray(self._bitmap_bytes)
        fixed = bytearray()
        variable = bytearray()
        for i, (col, value) in enumerate(zip(self._nonkey, values[1:])):
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
                if col.type in _FIXED_TYPES:
                    fixed += bytes(_FIXED_TYPES[col.type].size)
                elif col.type == "varbinary":
                    variable += struct.pack("<H", 0)
                else:  # varbinary_max: inline flag + zero length
                    variable += struct.pack("<BH", 0, 0)
                continue
            if col.type in _FIXED_TYPES:
                fixed += _FIXED_TYPES[col.type].pack(value)
            elif col.type == "varbinary":
                data = bytes(value)
                if len(data) > col.cap:
                    raise SchemaError(
                        f"value of {len(data)} bytes exceeds "
                        f"varbinary({col.cap}) column {col.name}")
                variable += struct.pack("<H", len(data)) + data
            else:  # varbinary_max
                data = bytes(value)
                if len(data) <= MAX_IN_ROW_BYTES - 64:
                    variable += struct.pack("<BH", 0, len(data)) + data
                else:
                    ref = self._blob_store.store(data)
                    variable += struct.pack(
                        "<BHiq", 1, 0, ref.first_pointer_page, ref.length)
        # ROW_OVERHEAD bytes of record header make the stored sizes
        # honest; contents are irrelevant.
        return bytes(ROW_OVERHEAD) + bytes(bitmap) + bytes(fixed) \
            + bytes(variable)

    def _decode_row(self, key: int, payload: bytes) -> tuple:
        pos = ROW_OVERHEAD
        bitmap = payload[pos:pos + self._bitmap_bytes]
        pos += self._bitmap_bytes
        out = [key]
        var_cols = []
        for i, col in enumerate(self._nonkey):
            is_null = bool(bitmap[i // 8] >> (i % 8) & 1)
            if col.type in _FIXED_TYPES:
                s = _FIXED_TYPES[col.type]
                out.append(None if is_null
                           else s.unpack_from(payload, pos)[0])
                pos += s.size
            else:
                out.append(None)  # placeholder, filled below in order
                var_cols.append((len(out) - 1, col, is_null))
        for out_index, col, is_null in var_cols:
            if col.type == "varbinary":
                (length,) = struct.unpack_from("<H", payload, pos)
                pos += 2
                value = None if is_null else payload[pos:pos + length]
                pos += length
                out[out_index] = value
            else:
                (flag,) = struct.unpack_from("<B", payload, pos)
                pos += 1
                if flag == 0:
                    (length,) = struct.unpack_from("<H", payload, pos)
                    pos += 2
                    value = None if is_null else payload[pos:pos + length]
                    pos += length
                else:
                    (_zero, ptr, length) = struct.unpack_from(
                        "<Hiq", payload, pos)
                    pos += 2 + 4 + 8
                    value = MaxBlobHandle(self._blob_store,
                                          BlobRef(ptr, length))
                out[out_index] = value
        return tuple(out)

    def page_fill_stats(self) -> dict:
        """Leaf-page utilization (a DBCC SHOWCONTIG-style summary).

        Returns row count, leaf pages, data bytes, average page fill
        fraction, and the B-tree height.
        """
        from .constants import PAGE_SIZE
        leaf_ids = self.data_page_ids()
        used = sum(self._pagefile.get(pid).used_bytes
                   for pid in leaf_ids)
        return {
            "rows": self.row_count,
            "leaf_pages": len(leaf_ids),
            "data_bytes": len(leaf_ids) * PAGE_SIZE,
            "avg_fill": (used / (len(leaf_ids) * PAGE_SIZE)
                         if leaf_ids else 0.0),
            "height": self._tree.height,
            "indexes": sorted(self._indexes),
        }

    def decode(self, key: int, payload: bytes) -> tuple:
        """Decode a raw leaf payload into a row tuple (public wrapper
        used by the executor, which scans raw records to know their
        stored size)."""
        return self._decode_row(key, payload)

    # -- secondary indexes --------------------------------------------------

    def create_index(self, column_name: str) -> "SecondaryIndex":
        """Create (and backfill) a nonclustered index on one column.

        The index is maintained automatically by insert/delete/update.
        """
        from .indexes import SecondaryIndex

        if column_name in self._indexes:
            raise SchemaError(
                f"column {column_name!r} is already indexed")
        if self.column_index(column_name) == 0:
            raise SchemaError(
                "the primary key is the clustered index already")
        index = SecondaryIndex(self, column_name, self._pagefile)
        col = self.column_index(column_name)
        for row in self.scan():
            index.add(row[col], row[0])
        self._indexes[column_name] = index
        return index

    def index_on(self, column_name: str) -> "SecondaryIndex | None":
        """The index on a column, if one exists."""
        return self._indexes.get(column_name)

    # -- MVCC: version chain, pins, retirement ------------------------------

    def pin_snapshot(self) -> "TableSnapshot":
        """Pin the current published version and return a frozen read
        view over it.

        The pin keeps every page of that version (including superseded
        pages in the version history) resolvable until
        :meth:`TableSnapshot.unpin`; the snapshot itself is scanned
        without holding any table latch.
        """
        with self._pin_lock:
            version = self.version
            root_id, height, count = self._published[version]
            self._pins[version] = self._pins.get(version, 0) + 1
        return TableSnapshot(self, version, root_id, height, count)

    def unpin(self, version: int,
              pool: BufferPool | None = None) -> None:
        """Drop one pin on ``version``; when it was the last, retire
        page versions nothing can read any more."""
        with self._pin_lock:
            remaining = self._pins.get(version, 0) - 1
            if remaining > 0:
                self._pins[version] = remaining
                return
            self._pins.pop(version, None)
        self._retire(pool)

    def pinned_versions(self) -> dict[int, int]:
        """Current pin counts by version (diagnostics and tests)."""
        with self._pin_lock:
            return dict(self._pins)

    def _publish(self, version: int, cow_pids: set[int]) -> None:
        """Atomically expose a completed mutation as the new tip.

        This is the only point where readers change what they pin: a
        ``pin_snapshot`` racing this publish gets either the old or the
        new version, never a torn mix, because the root/height/count
        triple swaps under ``_pin_lock``.
        """
        with self._pin_lock:
            self._cow_pids |= cow_pids
            self._published[version] = (
                self._tree.root_page_id, self._tree.height,
                self._tree.count)
            self.version = version
            self.mutations += 1
        self._retire(None)

    def _retire(self, pool: BufferPool | None) -> None:
        """Drop version metadata and page history nothing can read.

        A history entry stays live while a pinned version — or the
        published tip, whose readers may still race an in-flight
        writer's fresh clones — falls inside the half-open version
        window the entry serves.
        """
        if pool is None:
            pool = self._pool_ref
        with self._pin_lock:
            live = set(self._pins)
            live.add(self.version)
            for version in [v for v in self._published
                            if v not in live]:
                del self._published[version]
            if not self._cow_pids:
                return
            dropped = self._pagefile.prune_history(
                list(self._cow_pids), live)
            self._cow_pids = {
                pid for pid in self._cow_pids
                if self._pagefile.history_len(pid)}
        if pool is not None and dropped:
            pool.discard_keys(
                [pid if pv == 0 else (pid, pv) for pid, pv in dropped])

    # -- MVCC: row-level write intents --------------------------------------

    def acquire_intent(self, lo: int | None, hi: int | None) -> int:
        """Declare intent to write keys in ``[lo, hi)`` (``None`` =
        unbounded on that side); blocks while an overlapping intent is
        held, so disjoint-range writers overlap and overlapping ones
        serialize before either takes the table's write latch.  Returns
        a token for :meth:`release_intent`.
        """
        lo = _KEY_MIN if lo is None else int(lo)
        hi = _KEY_MAX if hi is None else int(hi)
        # Validate-before-block: the sentinel raises here if any latch
        # or leaf mutex is already held (intents rank above them all).
        lockcheck.note_acquire("intent", self.name)
        try:
            with self._intent_cond:
                while any(lo < other_hi and other_lo < hi
                          for other_lo, other_hi, _ in self._intents):
                    self._intent_cond.wait()
                self._intent_seq += 1
                token = self._intent_seq
                self._intents.append((lo, hi, token))
                return token
        except BaseException:
            lockcheck.note_release("intent", self.name)
            raise

    def release_intent(self, token: int) -> None:
        """Release a held write intent and wake blocked writers."""
        with self._intent_cond:
            self._intents = [entry for entry in self._intents
                             if entry[2] != token]
            self._intent_cond.notify_all()
        lockcheck.note_release("intent", self.name)

    # -- data access ------------------------------------------------------------

    def _check_writable(self) -> None:
        if self._read_only:
            raise PermissionError(
                f"table {self.name} belongs to a read-only database "
                "snapshot")

    def insert(self, values: Sequence) -> None:
        """Insert one row (values in schema order, PK first)."""
        self._check_writable()
        if self.mvcc:
            self.apply_insert(self.prepare_insert([values]))
            return
        key = int(values[0])
        self._tree.insert(key, self._encode_row(values))
        for name, index in self._indexes.items():
            index.add(values[self.column_index(name)], key)
        self.mutations += 1

    def prepare_insert(self, rows) -> "_PreparedInsert":
        """Encode rows — blob writes included — without touching the
        tree: the part of an MVCC INSERT that needs no latch, so two
        writers of one table overlap their encoding work."""
        self._check_writable()
        rows = [row if isinstance(row, (tuple, list)) else tuple(row)
                for row in rows]
        keys = [int(row[0]) for row in rows]
        encoded = [self._encode_row(row) for row in rows]
        return _PreparedInsert(rows, keys, encoded)

    def apply_insert(self, prep: "_PreparedInsert") -> int:
        """Copy-on-write the tree with prepared rows and publish one
        new version — the (briefly) latched step of an MVCC INSERT.

        On a mid-statement error (say a duplicate key) the rows already
        inserted are published, mirroring the legacy per-row path where
        earlier rows stay visible.
        """
        self._check_writable()
        if not prep.keys:
            return 0
        with self._mutate_lock:
            version = self.version + 1
            self._tree.begin_write(version)
            done = 0
            try:
                keys = prep.keys
                if self._tree.count == 0 and all(
                        b > a for a, b in zip(keys, keys[1:])):
                    self._tree.bulk_load(list(zip(keys, prep.encoded)))
                    done = len(keys)
                    for name, index in self._indexes.items():
                        col = self.column_index(name)
                        for key, row in zip(keys, prep.rows):
                            index.add(row[col], key)
                else:
                    for key, row, payload in zip(keys, prep.rows,
                                                 prep.encoded):
                        self._tree.insert(key, payload)
                        done += 1
                        for name, index in self._indexes.items():
                            index.add(row[self.column_index(name)],
                                      key)
            finally:
                cow = self._tree.end_write()
                if done:
                    self._publish(version, cow)
        return done

    def insert_many(self, rows) -> int:
        """Insert an iterable of rows; returns how many were inserted.

        When the table is empty and the keys arrive strictly ascending
        (the clustered-key bulk-load pattern both evaluation tables
        use), rows are packed page-at-a-time through
        :meth:`BTree.bulk_load` instead of descending the tree once per
        row — same page layout, same duplicate-key semantics, far fewer
        page touches.  Any other shape falls back to per-row inserts.
        """
        self._check_writable()
        if self.mvcc:
            return self.apply_insert(self.prepare_insert(rows))
        rows = [row if isinstance(row, (tuple, list)) else tuple(row)
                for row in rows]
        if not rows:
            return 0
        if self._tree.count == 0:
            keys = [int(row[0]) for row in rows]
            if all(b > a for a, b in zip(keys, keys[1:])):
                # Encode before touching the tree: a schema error on
                # row k must not leave a half-built bulk load behind.
                encoded = [(key, self._encode_row(row))
                           for key, row in zip(keys, rows)]
                self._tree.bulk_load(encoded)
                for name, index in self._indexes.items():
                    col = self.column_index(name)
                    for key, row in zip(keys, rows):
                        index.add(row[col], key)
                self.mutations += 1
                return len(rows)
        for row in rows:
            self.insert(row)
        return len(rows)

    def delete(self, key: int) -> bool:
        """Delete a row by primary key; returns whether it existed.

        Out-of-page blob pages referenced by the row are left in place
        (like deallocated-lazily LOB pages); the row itself disappears
        from every scan and from every secondary index.
        """
        self._check_writable()
        key = int(key)
        if self.mvcc:
            return self._mvcc_delete(key)
        old = self.get(key) if self._indexes else None
        deleted = self._tree.delete(key)
        if deleted and old is not None:
            for name, index in self._indexes.items():
                index.remove(old[self.column_index(name)], key)
        if deleted:
            self.mutations += 1
        return deleted

    def _mvcc_delete(self, key: int) -> bool:
        with self._mutate_lock:
            old = self.get(key) if self._indexes else None
            version = self.version + 1
            self._tree.begin_write(version)
            try:
                deleted = self._tree.delete(key)
            finally:
                cow = self._tree.end_write()
            if deleted:
                if old is not None:
                    for name, index in self._indexes.items():
                        index.remove(old[self.column_index(name)], key)
                self._publish(version, cow)
        return deleted

    def update(self, values: Sequence) -> bool:
        """Replace an existing row (matched by its primary key);
        returns whether the key existed."""
        self._check_writable()
        key = int(values[0])
        if self.mvcc:
            return self._mvcc_update(key, tuple(values))
        old = self.get(key) if self._indexes else None
        updated = self._tree.update(key, self._encode_row(values))
        if updated:
            self.mutations += 1
        if updated and old is not None:
            for name, index in self._indexes.items():
                col = self.column_index(name)
                if old[col] != values[col]:
                    index.remove(old[col], key)
                    index.add(values[col], key)
        return updated

    def _mvcc_update(self, key: int, values: tuple) -> bool:
        payload = self._encode_row(values)
        with self._mutate_lock:
            old = self.get(key) if self._indexes else None
            version = self.version + 1
            self._tree.begin_write(version)
            try:
                updated = self._tree.update(key, payload)
            finally:
                cow = self._tree.end_write()
            if updated:
                if old is not None:
                    for name, index in self._indexes.items():
                        col = self.column_index(name)
                        if old[col] != values[col]:
                            index.remove(old[col], key)
                            index.add(values[col], key)
                self._publish(version, cow)
        return updated

    def get(self, key: int, pool: BufferPool | None = None
            ) -> tuple | None:
        """Point lookup by primary key."""
        payload = self._tree.search(int(key), pool)
        if payload is None:
            return None
        return self._decode_row(int(key), payload)

    def scan(self, pool: BufferPool | None = None,
             start: int | None = None, stop: int | None = None
             ) -> Iterator[tuple]:
        """Clustered index scan yielding decoded rows in key order."""
        for key, payload in self._tree.scan(pool, start, stop):
            yield self._decode_row(key, payload)

    def scan_raw(self, pool: BufferPool | None = None
                 ) -> Iterator[tuple[int, bytes]]:
        """Scan without decoding (COUNT(*)-style access)."""
        return self._tree.scan(pool)

    def scan_batches(self, pool: BufferPool | None = None,
                     batch_pages: int | None = None) -> Iterator:
        """Clustered index scan yielding columnar
        :class:`~repro.engine.vectorized.RowBatch` chunks.

        Each batch covers a run of whole leaf pages.  Page touches are
        charged to the pool exactly as :meth:`scan` charges them (the
        descent, then every leaf once, in chain order), so a batch scan
        and a row scan of the same table produce identical IO counters.
        """
        from .vectorized import DEFAULT_BATCH_PAGES, RowBatch

        if batch_pages is None:
            batch_pages = DEFAULT_BATCH_PAGES
        key_size = struct.calcsize("<q")
        unpack_key = struct.Struct("<q").unpack_from
        for pages in self._tree.scan_leaf_batches(
                pool, batch_pages=batch_pages):
            keys: list[int] = []
            payloads: list[bytes] = []
            for page in pages:
                for slot in range(page.slot_count):
                    record = page.get_record(slot)
                    keys.append(unpack_key(record)[0])
                    payloads.append(record[key_size:])
            if payloads:
                yield RowBatch(self, keys, payloads)

    def batches_for_pages(self, pool: BufferPool | None, page_ids,
                          batch_pages: int | None = None,
                          skip_charge_first: bool = False) -> Iterator:
        """Decode an explicit run of leaf page ids into ``RowBatch``es.

        The morsel-scan primitive of the parallel engine: the
        coordinator hands each worker a slice of
        :meth:`data_page_ids`, and the worker charges its pool exactly
        as :meth:`scan_batches` would for those pages — each chunk of
        ``batch_pages`` pages goes through one
        :meth:`BufferPool.fetch_many` call, in list order.

        Args:
            page_ids: Leaf page ids in key order (a contiguous slice of
                the sibling chain).
            skip_charge_first: Do not charge the first page (the serial
                scan charges the first leaf during its root descent;
                the coordinator replays that descent itself, so the
                first morsel must not charge it again).
        """
        from .vectorized import DEFAULT_BATCH_PAGES, RowBatch

        if batch_pages is None:
            batch_pages = DEFAULT_BATCH_PAGES
        key_size = struct.calcsize("<q")
        unpack_key = struct.Struct("<q").unpack_from
        page_ids = list(page_ids)
        for start in range(0, len(page_ids), batch_pages):
            chunk = page_ids[start:start + batch_pages]
            charged = chunk
            pages = []
            if start == 0 and skip_charge_first:
                pages.append(self._pagefile.get(chunk[0]))
                charged = chunk[1:]
            if pool is not None and charged:
                pages.extend(pool.fetch_many(charged))
            else:
                pages.extend(self._pagefile.get(pid) for pid in charged)
            keys: list[int] = []
            payloads: list[bytes] = []
            for page in pages:
                for slot in range(page.slot_count):
                    record = page.get_record(slot)
                    keys.append(unpack_key(record)[0])
                    payloads.append(record[key_size:])
            if payloads:
                yield RowBatch(self, keys, payloads)


@dataclass(frozen=True)
class _PreparedInsert:
    """Rows encoded ahead of the latched apply step of an MVCC INSERT."""

    rows: list[tuple]
    keys: list[int]
    encoded: list[bytes]


class TableSnapshot:
    """A pinned, frozen ``(table → version)`` read view.

    Duck-types the read surface of :class:`Table` that the executor and
    the vectorized scan kernels use — ``scan_batches``, ``tree`` (a
    :class:`~repro.engine.btree.BTreeReader`), ``data_page_ids``,
    ``get``/``scan``/``scan_raw``, ``row_count`` — so query plans run
    against it unchanged.  All page reads resolve through the page
    file's version history, never blocking on (or being torn by) a
    concurrent writer.  Must be unpinned exactly once; use it as a
    context manager or call :meth:`unpin` in a ``finally``.
    """

    def __init__(self, table: Table, version: int, root_id: int,
                 height: int, count: int):
        self.table = table
        self.version = version
        self._reader = BTreeReader(table._pagefile, version, root_id,
                                   height, count)
        self._unpinned = False

    # -- lifecycle ----------------------------------------------------------

    def unpin(self, pool: BufferPool | None = None) -> None:
        """Release the pin (idempotent); the last unpin of a dead
        version retires its pages from the page file and ``pool``."""
        if not self._unpinned:
            self._unpinned = True
            self.table.unpin(self.version, pool)

    def __enter__(self) -> "TableSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.unpin()

    # -- Table read surface -------------------------------------------------

    @property
    def name(self) -> str:
        return self.table.name

    @property
    def columns(self):
        return self.table.columns

    @property
    def row_count(self) -> int:
        return self._reader.count

    @property
    def tree(self) -> BTreeReader:
        return self._reader

    def column_index(self, name: str) -> int:
        return self.table.column_index(name)

    def index_on(self, column_name: str):
        return self.table.index_on(column_name)

    def decode(self, key: int, payload: bytes) -> tuple:
        return self.table.decode(key, payload)

    def data_page_ids(self) -> list[int]:
        return self._reader.leaf_page_ids()

    def get(self, key: int, pool: BufferPool | None = None
            ) -> tuple | None:
        payload = self._reader.search(int(key), pool)
        if payload is None:
            return None
        return self.table.decode(int(key), payload)

    def scan(self, pool: BufferPool | None = None,
             start: int | None = None, stop: int | None = None
             ) -> Iterator[tuple]:
        for key, payload in self._reader.scan(pool, start, stop):
            yield self.table.decode(key, payload)

    def scan_raw(self, pool: BufferPool | None = None
                 ) -> Iterator[tuple[int, bytes]]:
        return self._reader.scan(pool)

    def scan_batches(self, pool: BufferPool | None = None,
                     batch_pages: int | None = None) -> Iterator:
        """Columnar scan of the pinned version; IO charges match
        :meth:`Table.scan_batches` page for page."""
        from .vectorized import DEFAULT_BATCH_PAGES, RowBatch

        if batch_pages is None:
            batch_pages = DEFAULT_BATCH_PAGES
        key_size = struct.calcsize("<q")
        unpack_key = struct.Struct("<q").unpack_from
        for pages in self._reader.scan_leaf_batches(
                pool, batch_pages=batch_pages):
            keys: list[int] = []
            payloads: list[bytes] = []
            for page in pages:
                for slot in range(page.slot_count):
                    record = page.get_record(slot)
                    keys.append(unpack_key(record)[0])
                    payloads.append(record[key_size:])
            if payloads:
                yield RowBatch(self.table, keys, payloads)
