"""Runtime lock-order sentinel (``REPRO_LOCK_CHECK=1``).

The static analyzer (:mod:`repro.analysis.flow.lockgraph`) exports the
whole-program lock-order graph to ``lock_graph.json`` — lock classes
(``catalog``, ``table``, ``pool``, ``pagefile``, ``intent``, per-class
mutexes) and a deterministic topological order over them.  This module
is the *dynamic* half of that contract: with ``REPRO_LOCK_CHECK=1``
every instrumented acquisition records its lock class on a per-thread
stack and validates, **before blocking**, that the new class does not
rank above any class already held.  A violation raises
:class:`LockOrderViolation` naming both classes immediately — turning
a would-be deadlock (reproducible only under hostile timing) into a
deterministic test failure at the first out-of-order acquisition, on
any schedule.

Same-class rules mirror the engine's discipline:

- ``table`` latches may nest only in ascending lower-cased table-name
  order (the sorted latch-set loop in
  :class:`~repro.engine.latches.LatchManager`);
- the buffer pool's ``pool`` mutex is an ``RLock`` and may re-enter;
- ``intent`` range-intents may stack (disjoint ranges on one or more
  tables);
- any other same-class re-acquisition (the non-reentrant RWLocks:
  ``catalog``, ``db``, a single table latch by the same name) is the
  classic self-deadlock and raises.

The worker-pool mutex is deliberately **not** instrumented: its two
acquisition orders (legacy latch-then-pool vs MVCC pool-then-latch)
are mode-exclusive at runtime, which is exactly why the static graph
exempts edges into ``workerpool`` (see docs/LOCKING.md).

The check is off by default and the disabled fast path is one global
boolean test per acquisition.  Enable with the environment variable or
:func:`set_active` (tests).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Optional

__all__ = [
    "LockOrderViolation",
    "DEFAULT_ORDER",
    "is_active",
    "set_active",
    "note_acquire",
    "note_release",
    "held",
    "tracked_lock",
    "load_order",
]


class LockOrderViolation(RuntimeError):
    """An instrumented acquisition contradicted the exported order."""


#: Fallback acquisition order, kept in sync with the ``order`` field of
#: the checked-in ``lock_graph.json`` (used when the file is absent,
#: e.g. an installed package without the analysis data).
DEFAULT_ORDER: tuple[str, ...] = (
    "intent",
    "mutex:ShardRouter",
    "workerpool",
    "catalog",
    "db",
    "mutex:Database",
    "table",
    "mutex:Table",
    "pagefile",
    "pool",
    "mutex:AdmissionController",
    "mutex:ServerStats",
)

#: Classes whose same-class re-acquisition is always allowed.
_STACKABLE = frozenset({"intent"})

_active = os.environ.get("REPRO_LOCK_CHECK", "").strip() == "1"
_ranks: dict[str, int] | None = None
_tls = threading.local()


def load_order(path: Optional[str] = None) -> tuple[str, ...]:
    """The acquisition order from ``lock_graph.json`` (the analysis
    package's checked-in export), falling back to :data:`DEFAULT_ORDER`
    when the file is missing or malformed."""
    if path is None:
        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "analysis", "lock_graph.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        order = data.get("order") if isinstance(data, dict) else None
        if isinstance(order, list) and order and \
                all(isinstance(cls, str) for cls in order):
            return tuple(order)
    except (OSError, ValueError):
        pass
    return DEFAULT_ORDER


def _rank_table() -> dict[str, int]:
    global _ranks
    if _ranks is None:
        _ranks = {cls: idx for idx, cls in enumerate(load_order())}
    return _ranks


def is_active() -> bool:
    return _active


def set_active(flag: bool) -> None:
    """Enable/disable the sentinel at runtime (tests).  Clears this
    thread's held stack so a test starts from a clean slate."""
    global _active
    _active = bool(flag)
    _tls.stack = []


def _stack() -> list[tuple[str, Optional[str]]]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def held() -> tuple[tuple[str, Optional[str]], ...]:
    """This thread's instrumented (class, name) stack, outermost first."""
    return tuple(_stack())


def note_acquire(lock_class: str, name: Optional[str] = None, *,
                 reentrant: bool = False) -> None:
    """Validate and record one acquisition.  Call **before** blocking
    on the real lock; raises :class:`LockOrderViolation` without
    recording anything, so there is nothing to roll back on failure.
    If the real acquisition then fails (timeout), undo the record with
    :func:`note_release`.
    """
    if not _active:
        return
    stack = _stack()
    ranks = _rank_table()
    rank = ranks.get(lock_class)
    for held_class, held_name in stack:
        if held_class == lock_class:
            if reentrant or lock_class in _STACKABLE:
                continue
            if lock_class == "table" and held_name is not None \
                    and name is not None and held_name < name:
                continue  # ascending-name nesting: the sorted latch set
            what = (f"table latch {name!r} under table latch "
                    f"{held_name!r} (latch sets must be taken in one "
                    "sorted call)" if lock_class == "table"
                    else f"non-reentrant {lock_class!r} lock it "
                    "already holds")
            raise LockOrderViolation(
                f"thread {threading.current_thread().name!r} "
                f"re-acquires {what}")
        held_rank = ranks.get(held_class)
        if rank is None or held_rank is None:
            continue  # unknown classes carry no constraints
        if rank < held_rank:
            raise LockOrderViolation(
                f"thread {threading.current_thread().name!r} acquires "
                f"{lock_class!r} while holding {held_class!r}, but the "
                f"lock order ranks {lock_class!r} before "
                f"{held_class!r} (see lock_graph.json; regenerate "
                "with `repro lint --write-lock-graph`)")
    stack.append((lock_class, name))


def note_release(lock_class: str, name: Optional[str] = None) -> None:
    """Drop the most recent matching acquisition record.  Tolerates a
    missing entry (the lock may predate :func:`set_active`)."""
    if not _active:
        return
    stack = _stack()
    for idx in range(len(stack) - 1, -1, -1):
        if stack[idx] == (lock_class, name):
            del stack[idx]
            return


class _TrackedLock:
    """Drop-in for ``threading.Lock``/``RLock`` that reports to the
    sentinel.  Never pickled — owners exclude their mutex from
    ``__getstate__`` and rebuild it in ``__setstate__``."""

    __slots__ = ("_inner", "lock_class", "_reentrant")

    def __init__(self, lock_class: str, reentrant: bool = False) -> None:
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self.lock_class = lock_class
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        note_acquire(self.lock_class, reentrant=self._reentrant)
        ok = self._inner.acquire(blocking, timeout)
        if not ok:
            note_release(self.lock_class)
        return ok

    def release(self) -> None:
        self._inner.release()
        note_release(self.lock_class)

    def __enter__(self) -> "_TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


def tracked_lock(lock_class: str, *,
                 reentrant: bool = False) -> _TrackedLock:
    """A mutex whose acquisitions the sentinel sees (when active)."""
    return _TrackedLock(lock_class, reentrant=reentrant)


def tracking(lock_class: str, name: Optional[str] = None):
    """Context manager for code that acquires a resource by hand but
    wants the sentinel to account for it (e.g. range intents)."""

    class _Note:
        def __enter__(self) -> None:
            note_acquire(lock_class, name)

        def __exit__(self, *exc: object) -> None:
            note_release(lock_class, name)

    return _Note()
