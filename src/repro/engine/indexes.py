"""Nonclustered secondary indexes.

A secondary index is a second B+tree mapping a column's values to the
primary keys of the rows holding them, enabling index seeks and range
scans on non-key columns ("efficient search in these multi-dimensional
datasets is also an important objective", paper Section 1).

Design notes:

* Index keys must be totally ordered 64-bit integers (the B-tree's key
  type).  Integer columns map directly; ``float``/``real`` columns use
  the standard order-preserving IEEE-754 bit transform
  (:func:`float_to_ordered_int`), so range scans over floats work.
* Duplicate column values are handled with *posting lists*: the index
  payload for one value is a ``BigIntArray`` vector of the primary keys
  holding that value — arrays inside the index, the library eating its
  own dog food.
* Indexes are maintained by the owning table on insert/delete/update;
  NULL values are not indexed (SQL semantics: ``col = NULL`` never
  matches).
"""

from __future__ import annotations

import struct
from typing import Iterator

import numpy as np

from ..core.sqlarray import SqlArray
from .btree import BTree
from .bufferpool import BufferPool
from .constants import PAGE_INDEX
from .page import PageFile

__all__ = ["float_to_ordered_int", "ordered_int_to_float",
           "SecondaryIndex"]

_INDEXABLE_TYPES = {"bigint", "int", "smallint", "tinyint", "float",
                    "real"}


def float_to_ordered_int(value: float) -> int:
    """Map a float64 to an int64 preserving numeric order.

    Positive floats sort like their bit patterns; negatives sort
    reversed — flipping all bits of negatives and the sign bit of
    positives gives a total order matching ``<`` on the floats
    (NaNs excluded).
    """
    mask = (1 << 64) - 1
    (bits,) = struct.unpack("<Q", struct.pack("<d", float(value)))
    if bits >> 63:
        bits = ~bits & mask      # negative: flip all (reverses order)
    else:
        bits |= 1 << 63          # positive: set the sign bit
    return bits - (1 << 63)      # shift into signed int64 range


def ordered_int_to_float(key: int) -> float:
    """Inverse of :func:`float_to_ordered_int`."""
    mask = (1 << 64) - 1
    bits = (key + (1 << 63)) & mask
    if bits >> 63:
        bits ^= 1 << 63          # was positive: clear the sign bit
    else:
        bits = ~bits & mask      # was negative: flip back
    (value,) = struct.unpack("<d", struct.pack("<Q", bits))
    return value


class SecondaryIndex:
    """One nonclustered index over a table column.

    Create through :meth:`repro.engine.table.Table.create_index`, which
    also backfills existing rows and hooks maintenance into the write
    path.
    """

    def __init__(self, table, column_name: str, pagefile: PageFile):
        column = table.columns[table.column_index(column_name)]
        if column.type not in _INDEXABLE_TYPES:
            from .table import SchemaError
            raise SchemaError(
                f"cannot index column {column_name!r} of type "
                f"{column.type!r}")
        self.table = table
        self.column_name = column_name
        self._is_float = column.type in ("float", "real")
        self._tree = BTree(pagefile, PAGE_INDEX,
                           tag=f"{table.name}.ix_{column_name}")
        self._entries = 0

    # -- key encoding --------------------------------------------------------

    def _encode(self, value) -> int:
        if self._is_float:
            return float_to_ordered_int(value)
        return int(value)

    @property
    def entry_count(self) -> int:
        """Indexed (non-NULL) row entries."""
        return self._entries

    @property
    def distinct_keys(self) -> int:
        return self._tree.count

    # -- maintenance (called by the table) -------------------------------------

    def add(self, value, pk: int) -> None:
        """Index one row's value."""
        if value is None:
            return
        key = self._encode(value)
        existing = self._tree.search(key)
        if existing is None:
            posting = SqlArray.from_values([pk], "int64")
            self._tree.insert(key, posting.to_blob())
        else:
            pks = SqlArray.from_blob(existing).to_numpy()
            updated = np.append(pks, np.int64(pk))
            self._tree.update(
                key, SqlArray.from_numpy(updated, "int64").to_blob())
        self._entries += 1

    def remove(self, value, pk: int) -> None:
        """Remove one row's entry."""
        if value is None:
            return
        key = self._encode(value)
        existing = self._tree.search(key)
        if existing is None:
            return
        pks = SqlArray.from_blob(existing).to_numpy()
        keep = pks[pks != pk]
        if len(keep) == len(pks):
            return
        self._entries -= 1
        if len(keep) == 0:
            self._tree.delete(key)
        else:
            self._tree.update(
                key, SqlArray.from_numpy(keep, "int64").to_blob())

    # -- queries ------------------------------------------------------------

    def seek(self, value, pool: BufferPool | None = None) -> list[int]:
        """Primary keys of rows where the column equals ``value``."""
        if value is None:
            return []
        posting = self._tree.search(self._encode(value), pool)
        if posting is None:
            return []
        return [int(pk) for pk in SqlArray.from_blob(posting).to_numpy()]

    def range(self, lo=None, hi=None, pool: BufferPool | None = None
              ) -> Iterator[int]:
        """Primary keys of rows with ``lo <= column < hi`` (either
        bound may be ``None``), in column-value order."""
        start = None if lo is None else self._encode(lo)
        stop = None if hi is None else self._encode(hi)
        for _key, posting in self._tree.scan(pool, start=start,
                                             stop=stop):
            for pk in SqlArray.from_blob(posting).to_numpy():
                yield int(pk)
