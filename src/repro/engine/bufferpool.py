"""Buffer pool: the page cache between queries and the page file.

Every page access in the engine goes through :meth:`BufferPool.fetch`.
A miss is a *physical read* — the IO the paper's Table 1 measures in
MB/s — and a hit is a *logical read*.  The paper cleared the server
cache before each test run ("The database server cache was explicitly
cleared before each performance test run"); :meth:`clear` reproduces
that, and the accounting distinguishes sequential from random physical
reads so the cost model can charge them differently.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

from . import lockcheck
from .constants import PAGE_SIZE
from .page import Page, PageFile

#: Maximum forward page-id jump still treated as part of a sequential
#: read stream (32 MB — well within one read-ahead queue depth).
SEQ_READ_WINDOW = 4096

__all__ = ["BufferPool", "IoCounters"]


@dataclass
class IoCounters:
    """Read counters accumulated by a buffer pool.

    Attributes:
        logical_reads: Page fetches served, hit or miss.
        physical_reads: Fetches that missed the cache.
        sequential_reads: Physical reads whose page id immediately
            follows the previous physical read (read-ahead friendly).
        random_reads: The remaining physical reads (seek-bound).
    """

    logical_reads: int = 0
    physical_reads: int = 0
    sequential_reads: int = 0
    random_reads: int = 0

    @property
    def physical_bytes(self) -> int:
        return self.physical_reads * PAGE_SIZE

    def snapshot(self) -> "IoCounters":
        """Copy the current counter values."""
        return IoCounters(self.logical_reads, self.physical_reads,
                          self.sequential_reads, self.random_reads)

    def delta_since(self, before: "IoCounters") -> "IoCounters":
        """Counters accumulated since a snapshot."""
        return IoCounters(
            self.logical_reads - before.logical_reads,
            self.physical_reads - before.physical_reads,
            self.sequential_reads - before.sequential_reads,
            self.random_reads - before.random_reads,
        )


class _ThreadIoState:
    """One thread's private IO accounting: its own counters plus the
    page id of its own previous physical read (per-stream sequential
    classification).

    ``cold_seen`` is the thread's *cold view* (see
    :meth:`BufferPool.begin_cold_view`): while set, the thread's first
    touch of every key is charged as a physical read — in both scopes —
    without evicting the shared cache, so a cold query's counters come
    out exactly as a serial cold run's while concurrent queries keep
    their warm hits.
    """

    __slots__ = ("counters", "last_physical", "cold_seen", "__weakref__")

    def __init__(self):
        self.counters = IoCounters()
        self.last_physical: int | None = None
        self.cold_seen: set | None = None


class BufferPool:
    """LRU page cache with physical/logical read accounting.

    Thread-safe: :meth:`fetch`, :meth:`clear` and
    :meth:`reset_counters` are serialized on an internal lock, so
    concurrent sessions (the :mod:`repro.server` worker pool) never
    corrupt the LRU structure and the counter invariant
    ``physical == sequential + random <= logical`` always holds.

    Accounting is kept at two scopes.  The *global* counters
    (:meth:`snapshot_counters`) aggregate every access by every thread
    — the server-level view.  The *per-thread* counters
    (:meth:`snapshot_thread_counters`) accumulate only the calling
    thread's accesses, so a query executing on one worker thread can
    diff them around its scan and get exact per-query IO even while
    other queries run concurrently.  Sequential/random classification
    is per-scope: global counters judge a read against the previous
    physical read by *anyone* (the disk-arm view), thread counters
    against the thread's own previous read (the per-stream read-ahead
    view, which is what a query's own metrics should reflect).

    Args:
        pagefile: The page address space to serve.
        capacity_pages: Cache size; ``None`` means unbounded (everything
            stays hot after first touch, like a server with more RAM
            than data).
    """

    def __init__(self, pagefile: PageFile,
                 capacity_pages: int | None = None):
        self._pagefile = pagefile
        self._capacity = capacity_pages
        self._cached: OrderedDict[int, None] = OrderedDict()
        self.counters = IoCounters()
        self._last_physical: int | None = None
        self._physical_log: list[int] | None = None
        self._lock = lockcheck.tracked_lock("pool", reentrant=True)
        self._thread = threading.local()
        # Every live thread's IO state, so a cache clear can reset
        # *all* threads' sequential-stream positions, not just the
        # clearing thread's.  Weak: states die with their threads.
        # Mutated and iterated only under the lock (WeakSet is not
        # thread-safe).
        self._thread_states: "weakref.WeakSet[_ThreadIoState]" = \
            weakref.WeakSet()

    def __getstate__(self):
        """Pickle everything but the locks, cache contents and
        accounting state (used by :meth:`Database.save` snapshots).
        The unpickled pool starts *cold* — empty cache, zero counters
        — so a worker process opening a snapshot charges its reads
        exactly like a freshly started server would."""
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_thread"] = None
        state["_thread_states"] = None
        state["_physical_log"] = None
        state["_cached"] = OrderedDict()
        state["counters"] = IoCounters()
        state["_last_physical"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = lockcheck.tracked_lock("pool", reentrant=True)
        self._thread = threading.local()
        self._thread_states = weakref.WeakSet()

    def start_physical_log(self) -> None:
        """Begin recording the ordered page ids of physical reads.

        The parallel engine uses this to replay a worker's physical
        accesses on the coordinator in morsel order, so the global
        sequential/random classification comes out identical to a
        serial scan regardless of how workers interleaved in time.
        """
        with self._lock:
            self._physical_log = []

    def take_physical_log(self) -> list[int]:
        """Stop recording and return the ordered physical-read log."""
        with self._lock:
            log, self._physical_log = self._physical_log, None
            return log if log is not None else []

    def _thread_state(self) -> "_ThreadIoState":
        state = getattr(self._thread, "state", None)
        if state is None:
            state = _ThreadIoState()
            with self._lock:
                self._thread_states.add(state)
            self._thread.state = state
        return state

    @property
    def pagefile(self) -> PageFile:
        return self._pagefile

    @property
    def cached_pages(self) -> int:
        return len(self._cached)

    @staticmethod
    def _key_for(page: Page):
        """Cache key of a page object: plain id for never-versioned
        pages (bit-for-bit the legacy key), ``(id, pv)`` for pages a
        copy-on-write writer has stamped — distinct versions of one
        page id are distinct cache residents."""
        return page.page_id if page.pv == 0 else (page.page_id, page.pv)

    def _record_access(self, key, page_id: int,
                       mine: "_ThreadIoState") -> None:
        """Account one access to cache key ``key`` (classification uses
        ``page_id``).  Caller must hold the lock."""
        self.counters.logical_reads += 1
        mine.counters.logical_reads += 1
        cold = mine.cold_seen
        forced_miss = cold is not None and key not in cold
        if forced_miss:
            cold.add(key)
        if key in self._cached and not forced_miss:
            self._cached.move_to_end(key)
        else:
            self.counters.physical_reads += 1
            mine.counters.physical_reads += 1
            # Short forward jumps ride the read-ahead/elevator
            # stream (skipping another object's extent costs no
            # seek); backward or long jumps are seeks.
            if self._last_physical is not None and \
                    0 < page_id - self._last_physical \
                    <= SEQ_READ_WINDOW:
                self.counters.sequential_reads += 1
            else:
                self.counters.random_reads += 1
            self._last_physical = page_id
            if mine.last_physical is not None and \
                    0 < page_id - mine.last_physical \
                    <= SEQ_READ_WINDOW:
                mine.counters.sequential_reads += 1
            else:
                mine.counters.random_reads += 1
            mine.last_physical = page_id
            if self._physical_log is not None:
                self._physical_log.append(page_id)
            self._cached[key] = None
            self._cached.move_to_end(key)
            if self._capacity is not None and \
                    len(self._cached) > self._capacity:
                self._cached.popitem(last=False)

    def fetch(self, page_id: int) -> Page:
        """Fetch a page, counting the access.

        Returns the page object; whether the fetch was physical is
        visible in :attr:`counters` (and in the calling thread's
        counters, see :meth:`snapshot_thread_counters`).
        """
        mine = self._thread_state()
        with self._lock:
            self._record_access(page_id, page_id, mine)
        return self._pagefile.get(page_id)

    def fetch_many(self, page_ids) -> list[Page]:
        """Fetch a run of pages under a single lock acquisition.

        Classifies and charges each page id exactly as a sequence of
        :meth:`fetch` calls would — same logical/physical counts, same
        sequential/random classification at both the global and the
        per-thread scope — but takes the lock once for the whole run.
        This is the pin-batch API the vectorized scan uses: a leaf run
        of N pages costs one lock round-trip instead of N.
        """
        mine = self._thread_state()
        page_ids = list(page_ids)
        with self._lock:
            for page_id in page_ids:
                self._record_access(page_id, page_id, mine)
        get = self._pagefile.get
        return [get(page_id) for page_id in page_ids]

    def fetch_page(self, page: Page) -> Page:
        """Charge one access to an already-resolved page object.

        The MVCC read path resolves pages against a pinned version
        *before* charging (``PageFile.resolve``), so the pool cannot
        look them up by id; it charges the resolved object under its
        version-aware cache key instead.
        """
        mine = self._thread_state()
        with self._lock:
            self._record_access(self._key_for(page), page.page_id, mine)
        return page

    def fetch_pages(self, pages) -> list[Page]:
        """Charge a run of resolved page objects under one lock
        acquisition — :meth:`fetch_many` for the MVCC read path."""
        pages = list(pages)
        mine = self._thread_state()
        with self._lock:
            for page in pages:
                self._record_access(self._key_for(page), page.page_id,
                                    mine)
        return pages

    # -- cold views (MVCC cold queries) ---------------------------------------

    def begin_cold_view(self) -> None:
        """Enter a per-thread cold view: until :meth:`end_cold_view`,
        the calling thread's first touch of every cache key is charged
        as a physical read (in both counter scopes, entering the
        physical log) *without* evicting the shared cache.

        This replaces :meth:`clear` for MVCC cold queries: the thread's
        own counters come out exactly as a serial post-clear run's —
        same misses, same sequential/random classification against the
        reset stream position — while concurrent warm queries keep
        their hits instead of eating the re-fetch charge (the wart the
        :meth:`clear` docstring describes).
        """
        mine = self._thread_state()
        with self._lock:
            mine.cold_seen = set()
            mine.last_physical = None
            self._last_physical = None

    def end_cold_view(self) -> None:
        """Leave the cold view; subsequent accesses are charged
        normally against the real cache."""
        mine = self._thread_state()
        with self._lock:
            mine.cold_seen = None

    def discard_keys(self, keys) -> None:
        """Evict specific cache keys — version retirement drops the
        ``(page_id, pv)`` residents of dead page versions so the cache
        never leaks retired versions."""
        with self._lock:
            for key in keys:
                self._cached.pop(key, None)

    def clear(self) -> None:
        """Drop every cached page — the paper's explicit cache clear
        before each performance run (DBCC DROPCLEANBUFFERS).

        Note this evicts pages *other* threads' scans are mid-way
        through; their subsequent fetches become physical reads.  A
        ``cold`` query issued concurrently with others therefore
        perturbs their physical-read counts (the counts stay accurate —
        the evictions are real — but cold-cache isolation as in the
        paper's runs needs concurrency 1).

        Every thread's sequential-stream position is reset, not just
        the calling thread's: after the clear, *anyone's* next physical
        read starts a new stream (it cannot ride a read-ahead window
        opened against the pre-clear cache), so classifying it as
        sequential against a pre-clear page would be a lie.
        """
        with self._lock:
            self._cached.clear()
            self._last_physical = None
            for state in self._thread_states:
                state.last_physical = None

    def snapshot_counters(self) -> IoCounters:
        """Consistent copy of the global counters (taken under the
        lock, so a concurrent fetch can never be seen half-applied)."""
        with self._lock:
            return self.counters.snapshot()

    def snapshot_thread_counters(self) -> IoCounters:
        """Copy of the *calling thread's* counters.

        Diffing two of these around a query isolates that query's IO
        even with other threads fetching concurrently — the global
        counters would attribute everyone's reads to everyone.
        """
        mine = self._thread_state()
        with self._lock:
            return mine.counters.snapshot()

    def reset_counters(self) -> IoCounters:
        """Zero the global counters, returning the values they had.

        Per-thread counters are unaffected (they are monotonic and
        only ever consumed as deltas), but every thread's
        sequential-stream position restarts — the same all-threads
        reset :meth:`clear` does, so post-reset classification never
        chains onto a pre-reset read."""
        with self._lock:
            old = self.counters
            self.counters = IoCounters()
            self._last_physical = None
            for state in self._thread_states:
                state.last_physical = None
            return old
