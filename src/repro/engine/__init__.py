"""Storage engine simulator: the Microsoft SQL Server substrate.

A from-scratch paged storage engine — 8 kB slotted pages, B+tree
clustered indexes, on-page vs out-of-page blob storage behind a stream
wrapper, an accounting buffer pool — plus a query executor whose
simulated clock is calibrated to the paper's testbed so the Table 1
experiment can be regenerated (see :mod:`repro.engine.costmodel`).
"""

from .blob import BlobRef, BlobStore, BlobTreeStream
from .btree import BTree, DuplicateKeyError
from .bufferpool import BufferPool, IoCounters
from .constants import (
    BLOB_CHUNK_SIZE,
    MAX_IN_ROW_BYTES,
    PAGE_BLOB,
    PAGE_DATA,
    PAGE_HEADER_SIZE,
    PAGE_INDEX,
    PAGE_SIZE,
)
from .costmodel import PAPER_HARDWARE, CostModel
from .indexes import SecondaryIndex, float_to_ordered_int, \
    ordered_int_to_float
from .latches import LatchManager
from .locks import RWLock
from .executor import (
    Avg,
    Col,
    Const,
    Count,
    Database,
    Executor,
    Max,
    Min,
    ReadBlob,
    ScalarUdf,
    Sum,
)
from .metrics import QueryMetrics, format_table
from .page import Page, PageFile, PageFullError
from .sqlfront import SqlSession, SqlSyntaxError
from .table import Column, MaxBlobHandle, SchemaError, Table

__all__ = [
    "PAGE_SIZE",
    "PAGE_HEADER_SIZE",
    "PAGE_DATA",
    "PAGE_INDEX",
    "PAGE_BLOB",
    "MAX_IN_ROW_BYTES",
    "BLOB_CHUNK_SIZE",
    "Page",
    "PageFile",
    "PageFullError",
    "BufferPool",
    "IoCounters",
    "BTree",
    "DuplicateKeyError",
    "BlobRef",
    "BlobStore",
    "BlobTreeStream",
    "Column",
    "Table",
    "SecondaryIndex",
    "float_to_ordered_int",
    "ordered_int_to_float",
    "MaxBlobHandle",
    "SchemaError",
    "RWLock",
    "LatchManager",
    "CostModel",
    "PAPER_HARDWARE",
    "QueryMetrics",
    "format_table",
    "Database",
    "Executor",
    "SqlSession",
    "SqlSyntaxError",
    "Expression",
    "Col",
    "Const",
    "ReadBlob",
    "ScalarUdf",
    "Count",
    "Sum",
    "Avg",
    "Min",
    "Max",
]

from .executor import Expression  # noqa: E402  (re-export)
