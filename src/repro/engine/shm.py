"""Shared-memory snapshot transport for the parallel engine.

``WorkerPool`` used to ship each ``Database.save()`` snapshot to its
spawned workers as a temp *file*: the coordinator wrote the pickle to
disk and every worker read it back.  This module ships the same pickle
bytes through :mod:`multiprocessing.shared_memory` instead, so a
snapshot is written once to memory and every worker unpickles straight
out of the mapped segment — no disk write, no per-worker file read.

Lifetime discipline (enforced by replint rule RM501):

* The **owner** — :class:`SegmentOwner`, held by the coordinator's
  ``WorkerPool`` — is the only party that may create segments, and it
  must both ``close()`` and ``unlink()`` every segment it created, on
  every path (retire-on-refresh and pool shutdown).
* **Workers** attach read-only and only ever ``close()`` their local
  mapping.  A worker must never ``unlink()``: the segment may still be
  mapped by its siblings, and unlinking is the owner's job.

Honest fallback: ``export`` returns ``None`` when shared memory is
disabled (``REPRO_SHM=off``), the payload exceeds the segment budget
(``REPRO_SHM_BUDGET`` bytes, default 1 GiB), or segment creation
fails — the pool then falls back to the original temp-file path.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

__all__ = [
    "DEFAULT_BUDGET",
    "SegmentOwner",
    "shm_budget",
    "shm_enabled",
    "read_segment",
]

#: Default per-segment byte budget; snapshots above it ship as files.
DEFAULT_BUDGET = 1 << 30

#: A snapshot reference shipped in worker task tuples: either
#: ``("shm", segment_name, payload_len)`` or ``("file", path)``.
SnapshotRef = tuple


def shm_enabled() -> bool:
    """Whether shared-memory shipping is on (``REPRO_SHM`` gate)."""
    return os.environ.get("REPRO_SHM", "on").lower() not in (
        "off", "0", "no", "false")


def shm_budget() -> int:
    """Largest payload (bytes) allowed into one segment."""
    raw = os.environ.get("REPRO_SHM_BUDGET")
    if not raw:
        return DEFAULT_BUDGET
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_BUDGET


class SegmentOwner:
    """Creates and retires shared-memory segments for one pool.

    Every segment created here is tracked until :meth:`release` or
    :meth:`close_all` runs ``close()`` + ``unlink()`` on it.  Callers
    must route *all* segment teardown through those two methods so the
    close/unlink pair cannot be skipped on any path.
    """

    def __init__(self, budget: int | None = None):
        self._budget = budget
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def export(self, payload: bytes) -> SnapshotRef | None:
        """Copy ``payload`` into a fresh segment and return its ref,
        or ``None`` when the caller should fall back to a file."""
        budget = self._budget if self._budget is not None \
            else shm_budget()
        if not shm_enabled() or len(payload) > budget:
            return None
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(payload)))
        except OSError:
            return None
        try:
            shm.buf[:len(payload)] = payload
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        self._segments[shm.name] = shm
        return ("shm", shm.name, len(payload))

    def release(self, ref: SnapshotRef | None) -> None:
        """Retire one segment (close + unlink).  File refs and refs
        from another owner are ignored."""
        if not ref or ref[0] != "shm":
            return
        shm = self._segments.pop(ref[1], None)
        if shm is None:
            return
        shm.close()
        shm.unlink()

    def close_all(self) -> None:
        """Retire every live segment (pool shutdown path)."""
        segments, self._segments = self._segments, {}
        for shm in segments.values():
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass


def _attach(name: str) -> shared_memory.SharedMemory:
    # Attaching registers the name with the resource tracker on
    # Python <= 3.12, but spawned workers share the coordinator's
    # tracker process, so that registration is a set no-op — the
    # name is already tracked by the owner's create.  Do NOT
    # unregister here: the tracker keeps one entry per name, and
    # removing it would orphan the owner's registration.
    return shared_memory.SharedMemory(name=name)


def read_segment(ref: SnapshotRef, loads):
    """Attach a segment read-only, run ``loads`` over its payload
    bytes, detach, and return the loaded object.

    The mapping is closed before returning (``loads`` — typically
    ``pickle.loads`` — copies everything it needs out of the buffer);
    the segment itself is never unlinked here.
    """
    _kind, name, size = ref
    shm = _attach(name)
    try:
        view = shm.buf[:size]
        try:
            return loads(view)
        finally:
            view.release()
    finally:
        shm.close()
