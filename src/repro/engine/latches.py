"""Per-table latches: writers on one table overlap readers on another.

The paper's host (SQL Server) lets any number of readers scan one table
while a writer mutates a different one; until this module landed the
reproduction serialized *every* writer against *all* readers behind one
statement-granularity :class:`~repro.engine.locks.RWLock`.  The
:class:`LatchManager` replaces that coarse lock with a two-level latch
hierarchy:

- a **catalog latch** (one :class:`RWLock` per database): shared by
  every SELECT/INSERT/DELETE, exclusive for DDL (CREATE/DROP), so the
  table set a statement latched cannot change under it;
- one **table latch** (:class:`RWLock`, writer-preferring) per table:
  shared for scans, exclusive for mutation.

Lock hierarchy (acquire strictly downward, never upward)::

    catalog latch  >  table latches (sorted by name)  >
        BufferPool._lock / PageFile._lock (leaf mutexes)

Deadlock avoidance: a statement's *entire* latch set is taken in one
``read_latch(...)`` / ``write_latch(...)`` call, in sorted
lower-cased table-name order, with the catalog latch always first.  No
code path acquires a latch while already holding another latch, so no
cycle can form; replint's RL002 enforces exactly that (no nested latch
acquisition, no latch acquisition under a pool ``_lock``).

The old coarse mode stays available for bisection: constructing the
database with ``latch_mode="coarse"`` (or exporting
``REPRO_LATCH=coarse``) maps every latch onto the single database
RWLock — shared for reads, exclusive for writes and DDL — which is
bit-for-bit the pre-latch behaviour.  ``REPRO_LATCH=table`` (or unset)
selects the per-table latches.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

from .locks import RWLock

__all__ = ["LatchManager", "LATCH_MODES", "MVCC_MODES",
           "mvcc_from_env"]

#: Recognized latch modes: ``"table"`` (per-table latches, the default)
#: and ``"coarse"`` (the legacy single statement-granularity RWLock).
LATCH_MODES = ("table", "coarse")

#: Recognized MVCC modes: ``"on"`` (copy-on-write page versions, the
#: default) and ``"off"`` (latch-per-scan, bit-for-bit the pre-MVCC
#: behaviour).
MVCC_MODES = ("on", "off")


def _mode_from_env() -> str:
    """Latch mode from ``REPRO_LATCH``; unknown values mean ``table``."""
    value = os.environ.get("REPRO_LATCH", "").strip().lower()
    return value if value in LATCH_MODES else "table"


def mvcc_from_env() -> str:
    """MVCC mode from ``REPRO_MVCC``; unknown values mean ``on``."""
    value = os.environ.get("REPRO_MVCC", "").strip().lower()
    return value if value in MVCC_MODES else "on"


class LatchManager:
    """Owns the catalog latch and one writer-preferring RWLock per table.

    Latches are created lazily, keyed by lower-cased table name (the
    front-end resolves tables case-insensitively, so ``T`` and ``t``
    must share a latch).  The internals acquire/release explicitly with
    ``try``/``finally`` rather than nesting ``with`` blocks: the
    acquisition loop over a sorted latch set is *one* level of the
    hierarchy, not a re-entrant stack.

    Args:
        db_lock: The database's coarse RWLock (used verbatim in
            ``coarse`` mode, idle in ``table`` mode).
        table_names: Callable returning the current table names (the
            all-tables latch set for whole-database readers such as the
            parallel engine's snapshots).
        mode: ``"table"`` or ``"coarse"``; ``None`` reads
            ``REPRO_LATCH`` (defaulting to ``"table"``).
    """

    def __init__(self, db_lock: RWLock,
                 table_names: Callable[[], Iterable[str]],
                 mode: str | None = None):
        if mode is None:
            mode = _mode_from_env()
        if mode not in LATCH_MODES:
            raise ValueError(
                f"latch mode must be one of {LATCH_MODES}, got {mode!r}")
        self.mode = mode
        self._db_lock = db_lock
        self._table_names = table_names
        self._catalog = RWLock()
        # Stamp sentinel identities (REPRO_LOCK_CHECK=1): the db-wide
        # RWLock keeps its default "db" class.
        self._catalog.lock_class = "catalog"
        self._latches: dict[str, RWLock] = {}
        # Leaf mutex guarding only the latch dict itself; nothing is
        # acquired while it is held.
        self._registry = threading.Lock()

    def latch_for(self, name: str) -> RWLock:
        """The latch guarding one table (created on first use)."""
        key = name.lower()
        with self._registry:
            latch = self._latches.get(key)
            if latch is None:
                latch = self._latches[key] = RWLock()
                latch.lock_class = "table"
                latch.lock_name = key
            return latch

    def forget(self, name: str) -> None:
        """Drop a table's latch (after DROP TABLE; caller must hold the
        exclusive catalog latch so nobody can be waiting on it)."""
        with self._registry:
            self._latches.pop(name.lower(), None)

    def _sorted_latches(self, names: Iterable[str]) -> list[RWLock]:
        """Latches for a name set, in the canonical acquisition order
        (sorted lower-cased names, duplicates collapsed)."""
        return [self.latch_for(key)
                for key in sorted({name.lower() for name in names})]

    # -- statement-level guards ------------------------------------------------

    @contextmanager
    def read_latch(self, *tables: str) -> Iterator["LatchManager"]:
        """Shared access to the named tables (a SELECT's latch set).

        With no names, latches *every* current table — the guard a
        whole-database reader needs (the parallel engine pickles a
        snapshot of the full database, so all of it must be stable).
        In ``coarse`` mode this is the database read lock regardless of
        the name set.
        """
        if self.mode == "coarse":
            self._db_lock.acquire_read()
            try:
                yield self
            finally:
                self._db_lock.release_read()
            return
        self._catalog.acquire_read()
        held: list[RWLock] = []
        try:
            for latch in self._sorted_latches(
                    tables if tables else self._table_names()):
                latch.acquire_read()
                held.append(latch)
            yield self
        finally:
            for latch in reversed(held):
                latch.release_read()
            self._catalog.release_read()

    @contextmanager
    def write_latch(self, *tables: str) -> Iterator["LatchManager"]:
        """Exclusive access to the named tables (an INSERT/DELETE's
        latch set); readers and writers of *other* tables proceed.
        The catalog latch is taken shared — DML never changes the table
        set.  In ``coarse`` mode this is the database write lock.
        """
        if not tables:
            raise ValueError("write_latch needs at least one table name")
        if self.mode == "coarse":
            self._db_lock.acquire_write()
            try:
                yield self
            finally:
                self._db_lock.release_write()
            return
        self._catalog.acquire_read()
        held: list[RWLock] = []
        try:
            for latch in self._sorted_latches(tables):
                latch.acquire_write()
                held.append(latch)
            yield self
        finally:
            for latch in reversed(held):
                latch.release_write()
            self._catalog.release_read()

    @contextmanager
    def catalog_latch(self) -> Iterator["LatchManager"]:
        """Shared catalog access and *no* table latch — the guard an
        MVCC reader takes: it only needs the table set stable while it
        pins its snapshots; the snapshots themselves are scanned
        latch-free.  In ``coarse`` mode this is the database read lock
        (coarse mode has no finer guard to offer).
        """
        if self.mode == "coarse":
            self._db_lock.acquire_read()
            try:
                yield self
            finally:
                self._db_lock.release_read()
            return
        self._catalog.acquire_read()
        try:
            yield self
        finally:
            self._catalog.release_read()

    @contextmanager
    def ddl_latch(self) -> Iterator["LatchManager"]:
        """Exclusive catalog access (CREATE/DROP TABLE).  Excludes
        every concurrent statement — all of them hold the catalog latch
        shared — without touching any table latch.  In ``coarse`` mode
        this is the database write lock.
        """
        if self.mode == "coarse":
            self._db_lock.acquire_write()
            try:
                yield self
            finally:
                self._db_lock.release_write()
            return
        self._catalog.acquire_write()
        try:
            yield self
        finally:
            self._catalog.release_write()
