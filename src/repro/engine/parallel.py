"""Morsel-driven multi-process parallel execution.

The vectorized engine made single-core scans fast; this module makes
them scale with cores.  A table's leaf pages are split into *morsels*
(contiguous runs of whole batch-sized page chunks) and shipped to a
persistent pool of **spawned worker processes**.  Each worker maps the
database snapshot read-only out of a shared-memory segment (temp-file
fallback when the segment budget is exceeded — see
``repro.engine.shm``), runs the full vectorized pipeline over its
morsel locally — column decode, WHERE, projection
and UDF batch kernels, partial aggregate states — and ships back a
small result.  The coordinator merges partial states **in morsel
order**, which keeps float left-fold SUM/AVG bit-identical to the
serial engines no matter how workers interleaved in time.

Determinism contracts:

* **Values.**  Workers never fold across values that the serial
  engine would fold in a different order: partial states are ordered
  non-NULL value lists (see ``Aggregate.partial_step_values``), and
  the coordinator replays the exact left fold morsel by morsel via
  ``Aggregate.merge``.
* **IO accounting.**  Each worker records the *ordered* page ids of
  its physical reads; the coordinator replays descent + morsel logs
  in morsel order against a single running classification cursor, so
  the sequential/random split of a cold run is identical to a serial
  scan's.  (Warm runs are honest but not reproducible: each worker
  keeps its own page cache.)
* **Fallback.**  Plans that cannot parallelize safely — unpicklable
  expressions, UDFs registered ``parallel_safe=False``, custom
  aggregates without the merge protocol — return ``None`` from the
  ``run_parallel_*`` entry points and the executor honestly runs the
  serial vector path instead, reporting the engine it actually used.
"""

from __future__ import annotations

import atexit
import io
import math
import multiprocessing
import os
import pickle
import queue as queue_mod
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from . import shm, vectorized
from .bufferpool import SEQ_READ_WINDOW, IoCounters

__all__ = [
    "WorkerPool",
    "ParallelResult",
    "run_parallel_scan",
    "run_parallel_grouped",
    "get_pool",
    "active_workers",
    "dumps_plan",
    "loads_plan",
]

#: Target number of morsels per worker: enough that a slow morsel
#: cannot stall the tail badly, few enough to keep dispatch overhead
#: negligible.
MORSELS_PER_WORKER = 4

#: How many worker pools may be live at once across all databases
#: (test suites create many short-lived databases; their pools are
#: retired least-recently-used so processes do not pile up).
MAX_LIVE_POOLS = 2

#: Seconds between liveness checks while waiting on morsel results.
_POLL_SECONDS = 0.2


# -- plan pickling -----------------------------------------------------------


class _PlanPickler(pickle.Pickler):
    """Pickler for query plans crossing the process boundary.

    ``repro.tsql`` publishes its functions as per-instance closures
    and bound methods of the shared ``ArrayNamespace`` instances —
    neither pickles by value.  Both are replaced by symbolic
    ``(schema, name)`` markers and re-resolved from the worker's own
    ``NAMESPACES`` registry, so the worker runs its *own* copies of
    the functions (with their batch kernels attached at import time).
    """

    def persistent_id(self, obj):
        schema = getattr(obj, "_sql_schema", None)
        if schema is not None:
            name = getattr(obj, "_sql_name", None)
            if name is not None:
                return ("tsql", schema, name)
        bound = getattr(obj, "__self__", None)
        if bound is not None and callable(obj) \
                and type(bound).__name__ == "ArrayNamespace":
            return ("tsql", bound.name, obj.__name__)
        return None


class _PlanUnpickler(pickle.Unpickler):
    def persistent_load(self, pid):
        kind, schema, name = pid
        if kind != "tsql":
            raise pickle.UnpicklingError(
                f"unknown persistent id {pid!r}")
        from ..tsql.namespaces import NAMESPACES
        ns = NAMESPACES.get(schema)
        if ns is None:
            raise pickle.UnpicklingError(f"unknown schema {schema!r}")
        fn = getattr(ns, name, None)
        if fn is None:
            raise pickle.UnpicklingError(
                f"schema {schema} has no function {name}")
        return fn


def dumps_plan(obj) -> bytes:
    """Pickle a plan with T-SQL functions as symbolic references."""
    buf = io.BytesIO()
    _PlanPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


def loads_plan(data: bytes):
    """Unpickle a plan, re-resolving T-SQL function references."""
    return _PlanUnpickler(io.BytesIO(data)).load()


# -- parallel-safety checks --------------------------------------------------


def _iter_expr_nodes(expr):
    """Walk an expression tree generically (``args`` tuples plus the
    usual single-child attribute names)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        yield node
        children = getattr(node, "args", None)
        if children:
            stack.extend(children)
        for attr in ("inner", "left", "right", "operand", "expr"):
            child = getattr(node, attr, None)
            if child is not None and hasattr(child, "eval"):
                stack.append(child)


def _plan_exprs(aggregates, where, group_expr):
    exprs = [a.expr for a in aggregates if a.expr is not None]
    if where is not None:
        exprs.append(where)
    if group_expr is not None:
        exprs.append(group_expr)
    return exprs


def _build_plan(table, aggregates, where, group_expr) -> bytes | None:
    """Serialize a scan plan, or return None when it cannot run in
    parallel safely (the executor then falls back to serial vector)."""
    from .executor import ScalarUdf

    for agg in aggregates:
        for method in ("merge", "partial_start", "partial_step_values"):
            if getattr(agg, method, None) is None:
                return None
    for root in _plan_exprs(aggregates, where, group_expr):
        for node in _iter_expr_nodes(root):
            if isinstance(node, ScalarUdf) and (
                    getattr(node, "parallel_safe", True) is False
                    or getattr(node.func, "_parallel_safe", True) is False):
                # The registry flag rides on the plan node; the func
                # attribute is still honoured for callers who stamped
                # their own callables.
                return None
    plan = {
        "table": table.name,
        "aggregates": list(aggregates),
        "where": where,
        "group": group_expr,
    }
    try:
        return dumps_plan(plan)
    except Exception:
        return None


# -- worker process ----------------------------------------------------------


def _ship_exception(exc: BaseException) -> bytes:
    """Pickle an exception for the result queue, degrading to a
    RuntimeError that carries the original type name and message."""
    try:
        data = pickle.dumps(exc)
        pickle.loads(data)  # must round-trip, not just dump
        return data
    except Exception:
        return pickle.dumps(
            RuntimeError(f"{type(exc).__name__}: {exc}"))


def _load_snapshot(snap_ref):
    """Materialize a read-only database from a snapshot ref — a
    ``("shm", name, size)`` segment or a ``("file", path)`` fallback.

    Workers only ever *attach* and *close* shared-memory segments;
    unlink rights stay with the owning pool (see RM501)."""
    from .executor import Database
    if snap_ref[0] == "shm":
        return shm.read_segment(
            snap_ref,
            lambda buf: Database.from_snapshot_bytes(buf,
                                                     read_only=True))
    return Database.open(snap_ref[1], read_only=True)


def _worker_main(task_q, result_q) -> None:
    """Worker process loop: open database snapshots read-only, run
    morsels, ship results.  ``None`` is the shutdown sentinel."""
    databases: dict = {}
    last_query = None
    while True:
        try:
            task = task_q.get()
        except KeyboardInterrupt:
            # A terminal Ctrl-C signals the whole foreground process
            # group; exit quietly instead of printing a traceback.
            break
        if task is None:
            break
        (task_id, snap_ref, query_id, cold, plan_bytes, page_ids,
         skip_first, batch_pages) = task
        try:
            db = databases.get(snap_ref)
            if db is None:
                databases.clear()  # at most one snapshot resident
                db = _load_snapshot(snap_ref)
                databases[snap_ref] = db
            first_of_query = query_id != last_query
            last_query = query_id
            result = _run_morsel(db, plan_bytes, page_ids, skip_first,
                                 batch_pages, cold and first_of_query)
            result_q.put((task_id, True, result))
        except BaseException as exc:  # ship, never die silently
            result_q.put((task_id, False, _ship_exception(exc)))


def _run_morsel(db, plan_bytes: bytes, page_ids, skip_first: bool,
                batch_pages: int, clear_pool: bool) -> dict:
    """Run the full vectorized pipeline over one morsel locally."""
    plan = loads_plan(plan_bytes)
    table = db.tables[plan["table"]]
    aggregates = plan["aggregates"]
    where = plan["where"]
    group_expr = plan["group"]
    pool = db.pool
    if clear_pool:
        pool.clear()
    before = pool.snapshot_thread_counters()
    pool.start_physical_log()
    ctx = vectorized.BatchContext(table, pool)
    rows = 0
    payload_bytes = 0
    partials = None
    groups = None
    try:
        batches = table.batches_for_pages(
            pool, page_ids, batch_pages=batch_pages,
            skip_charge_first=skip_first)
        if group_expr is None:
            partials = [agg.partial_start() for agg in aggregates]
            for batch in batches:
                rows += batch.n
                payload_bytes += batch.payload_bytes
                ctx.batch = batch
                if where is not None and \
                        vectorized._apply_where(where, ctx) is None:
                    continue
                n = ctx.batch.n
                for i, agg in enumerate(aggregates):
                    if agg.expr is not None:
                        values, mask = vectorized.eval_node(agg.expr, ctx)
                        vals = vectorized.to_pylist(values, mask, n)
                    else:
                        vals = [None] * n
                    partials[i] = agg.partial_step_values(
                        partials[i], vals)
        else:
            groups = {}
            for batch in batches:
                rows += batch.n
                payload_bytes += batch.payload_bytes
                ctx.batch = batch
                if where is not None and \
                        vectorized._apply_where(where, ctx) is None:
                    continue
                n = ctx.batch.n
                gv, gm = vectorized.eval_node(group_expr, ctx)
                parts = vectorized.partition_lanes(gv, gm, n)
                cols = [
                    (vectorized.to_pylist(
                        *vectorized.eval_node(agg.expr, ctx), n)
                     if agg.expr is not None else None)
                    for agg in aggregates]
                if parts is None:
                    # Unpartitionable keys (NaN, object): one lane at
                    # a time, reproducing the per-object dict walk.
                    gvals = vectorized.to_pylist(gv, gm, n)
                    parts = [(gvals[lane], [lane]) for lane in range(n)]
                for group, lanes in parts:
                    states = groups.get(group)
                    if states is None:
                        states = [agg.partial_start()
                                  for agg in aggregates]
                        groups[group] = states
                    for i, agg in enumerate(aggregates):
                        col = cols[i]
                        states[i] = agg.partial_step_values(
                            states[i],
                            [col[lane] for lane in lanes]
                            if col is not None else [None] * len(lanes))
    finally:
        physical_log = pool.take_physical_log()
    delta = pool.snapshot_thread_counters().delta_since(before)
    return {
        "rows": rows,
        "payload_bytes": payload_bytes,
        "partials": partials,
        "groups": groups,
        "physical_log": physical_log,
        "logical_reads": delta.logical_reads,
        "udf_calls": ctx.udf_calls,
        "stream_calls": ctx.stream_calls,
        "stream_bytes": ctx.stream_bytes,
        "extra_cpu": ctx.extra_cpu,
    }


# -- the pool ----------------------------------------------------------------


class WorkerDied(RuntimeError):
    """A worker process exited while morsels were outstanding."""


class WorkerPool:
    """A persistent pool of spawned worker processes for one database.

    The process start method is explicitly ``spawn`` — workers never
    inherit the coordinator's locks, file descriptors or thread
    state, and each initializes by re-opening the database *read
    only* from its snapshot path, so this is safe on every platform
    (and a worker bug cannot corrupt the coordinator's data).

    Snapshots ship through shared memory when they fit the segment
    budget (``repro.engine.shm``) and fall back to a temp file when
    not.  A snapshot is re-cut lazily, per *queried* table: a write to
    table B does not force a re-cut (and a per-worker re-open) for
    queries against untouched table A.  The pool owns every segment's
    close/unlink; workers only attach and close.
    """

    def __init__(self, db, workers: int):
        self.db = db
        self.workers = int(workers)
        self.broken = False
        #: How many snapshots this pool has cut (regression guard for
        #: the lazy per-table refresh).
        self.snapshot_cuts = 0
        self._ctx = multiprocessing.get_context("spawn")
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._procs: list = []
        self._segments = shm.SegmentOwner()
        self._snapshot_paths: list[str] = []
        self._snap_ref: shm.SnapshotRef | None = None
        self._snapshot_version = None
        self._table_versions: dict[str, int] = {}
        self._query_seq = 0
        self._mutex = threading.Lock()
        # Under MVCC the eager cut would race an in-flight writer (the
        # pool is built outside any latch); every MVCC query cuts under
        # a brief all-table latch instead, so stay lazy there.
        if not getattr(db, "mvcc", False):
            self._refresh_snapshot()
        for i in range(self.workers):
            proc = self._ctx.Process(
                target=_worker_main, args=(self._task_q, self._result_q),
                daemon=True, name=f"repro-morsel-worker-{i}")
            proc.start()
            self._procs.append(proc)

    # -- lifecycle -----------------------------------------------------------

    def _snapshot_stale_for(self, table_name: str | None) -> bool:
        """Whether the live snapshot is stale for a query against
        ``table_name`` (``None`` = stale on any write anywhere)."""
        if self._snap_ref is None:
            return True
        if table_name is None:
            return self.db.write_version != self._snapshot_version
        table = self.db.tables.get(table_name)
        if table is None:
            return True  # new/renamed table: cut so workers see it
        return self._table_versions.get(table_name) != table.mutations

    def _refresh_snapshot(self, table_name: str | None = None) -> None:
        """Cut a fresh snapshot if the one the workers hold is stale
        *for the queried table*.  Writes to other tables leave the
        snapshot (and every worker's resident copy) untouched."""
        if not self._snapshot_stale_for(table_name):
            return
        payload = self.db.snapshot_bytes()
        old_ref = self._snap_ref
        ref = self._segments.export(payload)
        if ref is None:
            fd, path = tempfile.mkstemp(prefix="repro-db-",
                                        suffix=".snap")
            with os.fdopen(fd, "wb") as f:
                f.write(payload)
            ref = ("file", path)
            self._snapshot_paths.append(path)
        self._snap_ref = ref
        self._snapshot_version = self.db.write_version
        self._table_versions = {
            name: t.mutations for name, t in self.db.tables.items()}
        self.snapshot_cuts += 1
        # The previous segment is only referenced by finished (or
        # abandoned) tasks; retire it so segments never pile up.
        self._segments.release(old_ref)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers, retire the shared-memory segments and
        remove the snapshot files."""
        for _ in self._procs:
            try:
                self._task_q.put(None)
            except Exception:
                break
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        self._procs = []
        self.broken = True
        self._segments.close_all()
        self._snap_ref = None
        for path in self._snapshot_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._snapshot_paths = []
        for q in (self._task_q, self._result_q):
            try:
                q.close()
            except Exception:
                pass

    def _check_alive(self) -> None:
        dead = [p for p in self._procs if not p.is_alive()]
        if dead:
            self.broken = True
            codes = ", ".join(
                f"pid {p.pid} exit {p.exitcode}" for p in dead)
            raise WorkerDied(
                f"{len(dead)} parallel worker(s) died ({codes}); "
                "the query was aborted and the pool will be respawned")

    # -- query execution -----------------------------------------------------

    @contextmanager
    def guard(self):
        """The pool's dispatch mutex, exposed so the MVCC coordinator
        can keep pin -> snapshot-cut -> dispatch atomic against other
        parallel queries while holding the all-table latch only for
        the cut itself (see :func:`_execute_mvcc`)."""
        with self._mutex:
            yield self

    def run_query(self, table, plan_bytes: bytes, cold: bool,
                  leaf_ids: list[int], batch_pages: int) -> list[dict]:
        """Dispatch one query's morsels and return their results in
        morsel order.  Raises the first worker-side exception, or
        :class:`WorkerDied` if a worker process disappears."""
        with self._mutex:
            self._refresh_snapshot(table.name)
            return self._dispatch_locked(plan_bytes, cold, leaf_ids,
                                         batch_pages)

    def _dispatch_locked(self, plan_bytes: bytes, cold: bool,
                         leaf_ids: list[int],
                         batch_pages: int) -> list[dict]:
        """Morsel dispatch + gather; ``self._mutex`` must be held and
        the live snapshot must already match the pages in
        ``leaf_ids``."""
        self._query_seq += 1
        query_id = self._query_seq
        morsel_pages = self._morsel_pages(len(leaf_ids), batch_pages)
        morsels = [leaf_ids[i:i + morsel_pages]
                   for i in range(0, len(leaf_ids), morsel_pages)]
        for idx, pages in enumerate(morsels):
            self._task_q.put((
                (query_id, idx), self._snap_ref, query_id, cold,
                plan_bytes, pages, idx == 0, batch_pages))
        results: dict[int, dict] = {}
        error = None
        while len(results) < len(morsels) and error is None:
            try:
                task_id, ok, payload = self._result_q.get(
                    timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                self._check_alive()
                continue
            qid, idx = task_id
            if qid != query_id:
                continue  # stale result from an aborted query
            if ok:
                results[idx] = payload
            else:
                error = pickle.loads(payload)
        if error is not None:
            raise error
        return [results[i] for i in range(len(morsels))]

    def _morsel_pages(self, n_pages: int, batch_pages: int) -> int:
        """Morsel size in pages: whole batch_pages chunks, sized so
        each worker sees ~MORSELS_PER_WORKER morsels.  Alignment to
        batch boundaries keeps every worker's fetch runs identical to
        the serial scan's."""
        n_batches = max(1, math.ceil(n_pages / batch_pages))
        morsel_batches = max(1, math.ceil(
            n_batches / (self.workers * MORSELS_PER_WORKER)))
        return morsel_batches * batch_pages


# -- pool registry -----------------------------------------------------------


_POOL_LRU: list[WorkerPool] = []
_REGISTRY_LOCK = threading.Lock()


def get_pool(db, workers: int) -> WorkerPool:
    """The database's worker pool, (re)created as needed.

    Pools are cached on the database object and retired
    least-recently-used beyond :data:`MAX_LIVE_POOLS`, or immediately
    when broken (a dead worker) or resized (``workers`` changed).
    """
    with _REGISTRY_LOCK:
        pool = getattr(db, "_worker_pool", None)
        if pool is not None and (pool.broken or pool.workers != workers):
            if pool in _POOL_LRU:
                _POOL_LRU.remove(pool)
            pool.shutdown()
            pool = None
            db._worker_pool = None
        if pool is None:
            pool = WorkerPool(db, workers)
            db._worker_pool = pool
            _POOL_LRU.append(pool)
            while len(_POOL_LRU) > MAX_LIVE_POOLS:
                oldest = _POOL_LRU[0]
                if oldest is pool:
                    break
                _POOL_LRU.pop(0)
                if getattr(oldest.db, "_worker_pool", None) is oldest:
                    oldest.db._worker_pool = None
                oldest.shutdown()
        else:
            if pool in _POOL_LRU:
                _POOL_LRU.remove(pool)
            _POOL_LRU.append(pool)
        return pool


def active_workers() -> int:
    """Total live worker processes across all pools (a gauge for
    server stats)."""
    with _REGISTRY_LOCK:
        return sum(p.workers for p in _POOL_LRU if not p.broken)


@atexit.register
def _shutdown_all() -> None:
    with _REGISTRY_LOCK:
        pools, _POOL_LRU[:] = _POOL_LRU[:], []
    for pool in pools:
        pool.shutdown(timeout=1.0)


# -- coordinator-side execution ---------------------------------------------


@dataclass
class ParallelResult:
    """Merged outcome of a parallel scan, ready for metrics."""

    rows: int = 0
    payload_bytes: int = 0
    states: list | None = None
    groups: dict | None = None
    io: IoCounters = field(default_factory=IoCounters)
    udf_calls: int = 0
    stream_calls: int = 0
    stream_bytes: int = 0
    extra_cpu: float = 0.0
    wall: float = 0.0
    workers: int = 0


def _replay_io(descent_delta: IoCounters, descent_log: list[int],
               morsel_results: list[dict]) -> IoCounters:
    """Rebuild the query's IO counters by replaying every physical
    read in serial order: the coordinator's descent, then each
    morsel's ordered log, morsel by morsel.  On a cold run this is
    exactly the page-id sequence a serial scan produces, so the
    sequential/random classification matches bit for bit."""
    io = IoCounters()
    io.logical_reads = descent_delta.logical_reads + sum(
        r["logical_reads"] for r in morsel_results)
    last = None
    logs = [descent_log] + [r["physical_log"] for r in morsel_results]
    for log in logs:
        for page_id in log:
            io.physical_reads += 1
            if last is not None and 0 < page_id - last <= SEQ_READ_WINDOW:
                io.sequential_reads += 1
            else:
                io.random_reads += 1
            last = page_id
    return io


def _execute(db, table, plan_bytes: bytes, aggregates, cold: bool,
             workers: int, grouped: bool) -> ParallelResult:
    started = time.perf_counter()
    pool_mgr = get_pool(db, workers)
    batch_pages = vectorized.DEFAULT_BATCH_PAGES
    if getattr(db, "mvcc", False):
        return _execute_mvcc(db, table, plan_bytes, aggregates, cold,
                             grouped, pool_mgr, batch_pages, started)
    leaf_ids = table.data_page_ids()

    # The coordinator performs (and is charged for) the root-to-leaf
    # descent, exactly like a serial scan's first page touches; the
    # workers only ever touch their own morsel's leaves and blobs.
    coord_pool = db.pool
    if cold:
        coord_pool.clear()
    before = coord_pool.snapshot_thread_counters()
    coord_pool.start_physical_log()
    try:
        table.tree.charge_scan_descent(coord_pool)
    finally:
        descent_log = coord_pool.take_physical_log()
    descent_delta = coord_pool.snapshot_thread_counters() \
        .delta_since(before)

    morsel_results = pool_mgr.run_query(
        table, plan_bytes, cold, leaf_ids, batch_pages)
    return _merge_results(pool_mgr, aggregates, grouped, morsel_results,
                          descent_delta, descent_log, started)


def _execute_mvcc(db, table, plan_bytes: bytes, aggregates, cold: bool,
                  grouped: bool, pool_mgr: WorkerPool, batch_pages: int,
                  started: float) -> ParallelResult:
    """MVCC coordinator path: pin a version and cut the worker
    snapshot under one *brief* all-table shared latch — writers'
    publish steps are excluded exactly while the pickle runs, so the
    shipped bytes are the pinned version's committed tip — then scan
    latch-free: the coordinator's descent and the workers' morsels
    read only copy-on-write-stable pages of the pinned version.

    The pool mutex spans pin -> cut -> dispatch so a concurrent query
    cannot swap the worker snapshot between this query's cut and its
    morsels reaching the task queue.  A cold run charges the
    coordinator's descent through a cold *view* (forced misses)
    instead of ``pool.clear()``, leaving neighbours' counters alone.
    """
    coord_pool = db.pool
    snap = None
    with pool_mgr.guard():
        try:
            with db.latches.read_latch():
                snap = table.pin_snapshot()
                pool_mgr._refresh_snapshot(table.name)
            leaf_ids = snap.data_page_ids()
            if cold:
                coord_pool.begin_cold_view()
            try:
                before = coord_pool.snapshot_thread_counters()
                coord_pool.start_physical_log()
                try:
                    snap.tree.charge_scan_descent(coord_pool)
                finally:
                    descent_log = coord_pool.take_physical_log()
                descent_delta = coord_pool.snapshot_thread_counters() \
                    .delta_since(before)
                morsel_results = pool_mgr._dispatch_locked(
                    plan_bytes, cold, leaf_ids, batch_pages)
            finally:
                if cold:
                    coord_pool.end_cold_view()
        finally:
            if snap is not None:
                snap.unpin(coord_pool)
    return _merge_results(pool_mgr, aggregates, grouped, morsel_results,
                          descent_delta, descent_log, started)


def _merge_results(pool_mgr: WorkerPool, aggregates, grouped: bool,
                   morsel_results: list[dict],
                   descent_delta: IoCounters, descent_log: list[int],
                   started: float) -> ParallelResult:
    res = ParallelResult(workers=pool_mgr.workers)
    res.io = _replay_io(descent_delta, descent_log, morsel_results)
    for r in morsel_results:
        res.rows += r["rows"]
        res.payload_bytes += r["payload_bytes"]
        res.udf_calls += r["udf_calls"]
        res.stream_calls += r["stream_calls"]
        res.stream_bytes += r["stream_bytes"]
        res.extra_cpu += r["extra_cpu"]
    if grouped:
        groups: dict = {}
        for r in morsel_results:  # merge in morsel order
            for key, partials in r["groups"].items():
                states = groups.get(key)
                if states is None:
                    states = [agg.start() for agg in aggregates]
                    groups[key] = states
                for i, agg in enumerate(aggregates):
                    states[i] = agg.merge(states[i], partials[i])
        res.groups = groups
    else:
        states = [agg.start() for agg in aggregates]
        for r in morsel_results:  # merge in morsel order
            for i, agg in enumerate(aggregates):
                states[i] = agg.merge(states[i], r["partials"][i])
        res.states = states
    res.wall = time.perf_counter() - started
    return res


def run_parallel_scan(db, table, aggregates, where, cold: bool,
                      workers: int) -> ParallelResult | None:
    """Parallel ``SELECT aggs FROM table [WHERE ...]``; ``None`` when
    the plan cannot run in parallel safely (caller falls back)."""
    plan_bytes = _build_plan(table, aggregates, where, None)
    if plan_bytes is None:
        return None
    return _execute(db, table, plan_bytes, aggregates, cold, workers,
                    grouped=False)


def run_parallel_grouped(db, table, group_expr, aggregates, where,
                         cold: bool, workers: int
                         ) -> ParallelResult | None:
    """Parallel grouped aggregation; ``None`` when not parallelizable."""
    plan_bytes = _build_plan(table, aggregates, where, group_expr)
    if plan_bytes is None:
        return None
    return _execute(db, table, plan_bytes, aggregates, cold, workers,
                    grouped=True)
