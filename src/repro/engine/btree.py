"""B+tree over slotted pages: the clustered index structure.

SQL Server stores a clustered table as a B+tree whose leaf level *is*
the data.  This implementation does the same over
:class:`~repro.engine.page.Page` objects: leaves hold ``(key, payload)``
records and are chained with sibling links for ordered scans; internal
levels hold ``(separator_key, child_page_id)`` records.  Inserts split
full pages and grow the tree upward, so arbitrary insert orders work,
while the common bulk-load path (ascending keys) naturally produces the
right-packed tree a clustered index scan reads sequentially.

Reads go through the buffer pool so queries are charged for the pages
they touch; writes go straight to the page file (the paper's evaluation
measures read scans, not load time).
"""

from __future__ import annotations

import struct
from typing import Iterator

from .bufferpool import BufferPool
from .constants import PAGE_INDEX
from .page import Page, PageFile, PageFullError

__all__ = ["BTree", "BTreeReader", "DuplicateKeyError"]

_KEY_STRUCT = struct.Struct("<q")
_CHILD_STRUCT = struct.Struct("<qi")


def _descend_slot(page: Page, key: int) -> int:
    """Child slot to follow in an internal page: the rightmost record
    whose separator key is <= ``key`` (slot 0 if none)."""
    lo, hi = 0, page.slot_count - 1
    best = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        sep, _child = _child_fields(page.get_record(mid))
        if sep <= key:
            best = mid
            lo = mid + 1
        else:
            hi = mid - 1
    return best


def _leaf_slot(page: Page, key: int) -> tuple[int, bool]:
    """Binary search a leaf: ``(slot, found)`` where slot is the
    insertion position when not found."""
    lo, hi = 0, page.slot_count
    while lo < hi:
        mid = (lo + hi) // 2
        k = _leaf_key(page.get_record(mid))
        if k < key:
            lo = mid + 1
        elif k > key:
            hi = mid
        else:
            return mid, True
    return lo, False


class DuplicateKeyError(Exception):
    """Raised on inserting a key that already exists (clustered primary
    keys are unique)."""


def _leaf_record(key: int, payload: bytes) -> bytes:
    return _KEY_STRUCT.pack(key) + payload


def _leaf_key(record: bytes) -> int:
    return _KEY_STRUCT.unpack_from(record)[0]


def _leaf_payload(record: bytes) -> bytes:
    return record[_KEY_STRUCT.size:]


def _child_record(key: int, child: int) -> bytes:
    return _CHILD_STRUCT.pack(key, child)


def _child_fields(record: bytes) -> tuple[int, int]:
    return _CHILD_STRUCT.unpack(record)


class BTree:
    """A B+tree keyed by signed 64-bit integers with byte payloads.

    Args:
        pagefile: Page space to allocate from.
        leaf_kind: Page kind tag for leaf pages (data pages for a
            clustered index, blob pages for a blob tree).
    """

    def __init__(self, pagefile: PageFile, leaf_kind: int,
                 tag: str | None = None):
        self._pagefile = pagefile
        self._leaf_kind = leaf_kind
        self._tag = tag
        root = pagefile.allocate(leaf_kind, level=0, tag=tag)
        self._root_id = root.page_id
        self._height = 1
        self._count = 0
        # Copy-on-write state: while a version is open via
        # :meth:`begin_write`, every page obtained through :meth:`_wget`
        # is cloned at that version before mutation and the superseded
        # page ids are logged for retirement bookkeeping.
        self._wv: int | None = None
        self._cow: set[int] = set()

    # -- copy-on-write plumbing (MVCC) ---------------------------------------

    def begin_write(self, version: int) -> None:
        """Open a copy-on-write scope: until :meth:`end_write`, pages
        touched by mutators are cloned at ``version`` (stable ids, new
        ``pv``) so concurrent readers pinned at older versions keep
        resolving the superseded pages."""
        self._wv = version
        self._cow = set()

    def end_write(self) -> set[int]:
        """Close the copy-on-write scope; returns the page ids that
        gained a history entry during it (the owning table tracks them
        for version retirement)."""
        pids, self._cow = self._cow, set()
        self._wv = None
        return pids

    def _wget(self, page_id: int) -> Page:
        """A page for mutation: the current page outside a write scope
        (the legacy in-place path), its version-``_wv`` clone inside
        one."""
        if self._wv is None:
            return self._pagefile.get(page_id)
        page, cloned = self._pagefile.get_for_write(page_id, self._wv)
        if cloned:
            self._cow.add(page_id)
        return page

    def _alloc(self, kind: int, level: int = 0) -> Page:
        """Allocate a page stamped with the open write version (0
        outside a write scope — the legacy behaviour)."""
        return self._pagefile.allocate(kind, level, tag=self._tag,
                                       pv=self._wv or 0)

    # -- introspection ------------------------------------------------------

    @property
    def root_page_id(self) -> int:
        return self._root_id

    @property
    def height(self) -> int:
        """Number of levels, leaves included."""
        return self._height

    @property
    def count(self) -> int:
        """Number of stored records."""
        return self._count

    def page_ids(self) -> list[int]:
        """All page ids belonging to this tree (breadth-first)."""
        ids = []
        frontier = [self._root_id]
        while frontier:
            ids.extend(frontier)
            nxt = []
            for pid in frontier:
                page = self._pagefile.get(pid)
                if page.level > 0:
                    nxt.extend(_child_fields(r)[1] for r in page.records())
            frontier = nxt
        return ids

    def leaf_page_ids(self) -> list[int]:
        """Leaf page ids in key order."""
        page = self._pagefile.get(self._root_id)
        while page.level > 0:
            first_child = _child_fields(page.get_record(0))[1]
            page = self._pagefile.get(first_child)
        ids = []
        while page is not None:
            ids.append(page.page_id)
            page = (self._pagefile.get(page.next_page)
                    if page.next_page >= 0 else None)
        return ids

    # -- search ------------------------------------------------------------

    def _descend_slot(self, page: Page, key: int) -> int:
        return _descend_slot(page, key)

    def _find_leaf(self, key: int, pool: BufferPool | None) -> Page:
        get = pool.fetch if pool is not None else self._pagefile.get
        page = get(self._root_id)
        while page.level > 0:
            slot = _descend_slot(page, key)
            _sep, child = _child_fields(page.get_record(slot))
            page = get(child)
        return page

    def _leaf_slot(self, page: Page, key: int) -> tuple[int, bool]:
        return _leaf_slot(page, key)

    def search(self, key: int, pool: BufferPool | None = None
               ) -> bytes | None:
        """Point lookup; returns the payload or ``None``.

        Pass a buffer pool to have the traversal's page touches counted.
        """
        leaf = self._find_leaf(key, pool)
        slot, found = _leaf_slot(leaf, key)
        if not found:
            return None
        return _leaf_payload(leaf.get_record(slot))

    def scan(self, pool: BufferPool | None = None,
             start: int | None = None, stop: int | None = None
             ) -> Iterator[tuple[int, bytes]]:
        """Ordered scan of ``(key, payload)`` pairs in ``[start, stop)``.

        With a buffer pool, every visited leaf (and the descent to the
        first one) is counted — the clustered index scan of Table 1.
        """
        get = pool.fetch if pool is not None else self._pagefile.get
        if start is None:
            page = get(self._root_id)
            while page.level > 0:
                _sep, child = _child_fields(page.get_record(0))
                page = get(child)
            slot = 0
        else:
            page = self._find_leaf(start, pool)
            slot, _found = _leaf_slot(page, start)
        while True:
            while slot < page.slot_count:
                record = page.get_record(slot)
                key = _leaf_key(record)
                if stop is not None and key >= stop:
                    return
                yield key, _leaf_payload(record)
                slot += 1
            if page.next_page < 0:
                return
            page = get(page.next_page)
            slot = 0

    def charge_scan_descent(self, pool: BufferPool) -> list[int]:
        """Charge the root-to-first-leaf descent exactly as a scan
        would, returning the page ids touched in order.

        The parallel engine's coordinator performs this descent itself
        (workers receive explicit leaf page ids and never descend), so
        the combined coordinator + worker accounting reproduces a
        serial scan's page touches exactly.
        """
        touched = []
        page = pool.fetch(self._root_id)
        touched.append(page.page_id)
        while page.level > 0:
            _sep, child = _child_fields(page.get_record(0))
            page = pool.fetch(child)
            touched.append(page.page_id)
        return touched

    def scan_leaf_batches(self, pool: BufferPool | None = None,
                          start: int | None = None,
                          batch_pages: int = 64) -> Iterator[list[Page]]:
        """Yield runs of up to ``batch_pages`` leaf pages in key order.

        Charges exactly the page touches :meth:`scan` would: the descent
        to the first leaf page by page, then every leaf once, in sibling
        chain order.  Leaves after the first of each run are charged
        through :meth:`BufferPool.fetch_many` — one lock acquisition per
        run instead of one per page — so the logical/physical counters
        (and their sequential/random classification) come out identical
        to a row-at-a-time scan of the same tree.
        """
        get = pool.fetch if pool is not None else self._pagefile.get
        if start is None:
            page = get(self._root_id)
            while page.level > 0:
                _sep, child = _child_fields(page.get_record(0))
                page = get(child)
        else:
            page = self._find_leaf(start, pool)
        while True:
            batch = [page]
            tail = page
            while len(batch) < batch_pages and tail.next_page >= 0:
                # Peek the sibling link through the page file; the pool
                # charge for the whole run lands in fetch_many below.
                tail = self._pagefile.get(tail.next_page)
                batch.append(tail)
            if pool is not None and len(batch) > 1:
                pool.fetch_many([p.page_id for p in batch[1:]])
            yield batch
            if tail.next_page < 0:
                return
            page = get(tail.next_page)

    # -- insert ------------------------------------------------------------

    def bulk_load(self, items) -> int:
        """Load ``(key, payload)`` pairs with strictly ascending keys
        into an empty tree, packing pages bottom-up.

        Produces the same page layout the incremental :meth:`insert`
        path yields for ascending keys (split-right packs pages full),
        but without re-descending the tree per record, and with leaf
        pages allocated contiguously — the layout a clustered index
        scan reads sequentially.

        Returns the number of records loaded.

        Raises:
            ValueError: if the tree is not empty or keys are not
                strictly ascending.
        """
        if self._count != 0:
            raise ValueError("bulk_load requires an empty tree")
        page = self._wget(self._root_id)
        if page.level != 0 or page.slot_count != 0:
            raise ValueError("bulk_load requires an empty tree")
        nodes: list[tuple[int, int]] = []  # (first_key, page_id)
        last_key: int | None = None
        n = 0
        for key, payload in items:
            key = int(key)
            if last_key is not None and key <= last_key:
                raise ValueError(
                    "bulk_load requires strictly ascending keys")
            record = _leaf_record(key, payload)
            try:
                page.add_record(record)
            except PageFullError:
                nodes.append((_leaf_key(page.get_record(0)), page.page_id))
                new_page = self._alloc(self._leaf_kind, level=0)
                new_page.prev_page = page.page_id
                page.next_page = new_page.page_id
                page = new_page
                page.add_record(record)
            last_key = key
            n += 1
        if n == 0:
            return 0
        nodes.append((_leaf_key(page.get_record(0)), page.page_id))
        level = 0
        while len(nodes) > 1:
            level += 1
            parents: list[tuple[int, int]] = []
            parent = self._alloc(PAGE_INDEX, level=level)
            parent_first = nodes[0][0]
            for key, child in nodes:
                record = _child_record(key, child)
                try:
                    parent.add_record(record)
                except PageFullError:
                    parents.append((parent_first, parent.page_id))
                    parent = self._alloc(PAGE_INDEX, level=level)
                    parent_first = key
                    parent.add_record(record)
            parents.append((parent_first, parent.page_id))
            nodes = parents
        self._root_id = nodes[0][1]
        self._height = level + 1
        self._count = n
        return n

    def insert(self, key: int, payload: bytes) -> None:
        """Insert a record, splitting pages as needed.

        Raises:
            DuplicateKeyError: if ``key`` is already present.
        """
        split = self._insert_into(self._wget(self._root_id),
                                  key, payload)
        if split is not None:
            sep_key, new_page_id = split
            old_root = self._pagefile.get(self._root_id)
            new_root = self._alloc(PAGE_INDEX, level=old_root.level + 1)
            first_key = self._smallest_key(old_root)
            new_root.add_record(_child_record(first_key, old_root.page_id))
            new_root.add_record(_child_record(sep_key, new_page_id))
            self._root_id = new_root.page_id
            self._height += 1
        self._count += 1

    def _smallest_key(self, page: Page) -> int:
        while page.level > 0:
            _sep, child = _child_fields(page.get_record(0))
            page = self._pagefile.get(child)
        return _leaf_key(page.get_record(0))

    def _insert_into(self, page: Page, key: int, payload: bytes
                     ) -> tuple[int, int] | None:
        """Recursive insert; returns ``(separator, new_page_id)`` when
        this page split, else ``None``."""
        if page.level == 0:
            slot, found = _leaf_slot(page, key)
            if found:
                raise DuplicateKeyError(f"key {key} already exists")
            record = _leaf_record(key, payload)
            try:
                page.insert_record(slot, record)
                return None
            except PageFullError:
                return self._split_leaf(page, slot, record)

        slot = _descend_slot(page, key)
        _sep, child_id = _child_fields(page.get_record(slot))
        split = self._insert_into(self._wget(child_id), key, payload)
        if split is None:
            return None
        sep_key, new_child = split
        record = _child_record(sep_key, new_child)
        try:
            page.insert_record(slot + 1, record)
            return None
        except PageFullError:
            return self._split_internal(page, slot + 1, record)

    def _split_leaf(self, page: Page, slot: int, record: bytes
                    ) -> tuple[int, int]:
        records = page.take_all_records()
        records.insert(slot, record)
        # Ascending-key loads split "to the right": the old page keeps
        # everything and only the new record moves, so bulk loads in key
        # order produce full pages (SQL Server behaves the same way for
        # monotonically increasing clustered keys).
        mid = (len(records) - 1 if slot == len(records) - 1
               else len(records) // 2)
        left, right = records[:mid], records[mid:]
        new_page = self._alloc(self._leaf_kind, level=0)
        for r in left:
            page.add_record(r)
        for r in right:
            new_page.add_record(r)
        new_page.next_page = page.next_page
        new_page.prev_page = page.page_id
        if page.next_page >= 0:
            # The right neighbour's back link changes too, so it is
            # cloned as well under copy-on-write.
            self._wget(page.next_page).prev_page = new_page.page_id
        page.next_page = new_page.page_id
        return _leaf_key(right[0]), new_page.page_id

    def delete(self, key: int) -> bool:
        """Delete a record by key; returns whether it existed.

        Pages are never merged (like SQL Server's ghost-record
        deletes, space is reclaimed by rewrites); an emptied leaf is
        unlinked from the sibling chain and its parent entry removed,
        so scans stay correct.
        """
        path: list[tuple[Page, int]] = []  # (internal page, child slot)
        page = self._wget(self._root_id)
        while page.level > 0:
            slot = _descend_slot(page, key)
            path.append((page, slot))
            _sep, child = _child_fields(page.get_record(slot))
            page = self._wget(child)
        slot, found = _leaf_slot(page, key)
        if not found:
            return False
        page.delete_record(slot)
        self._count -= 1
        if page.slot_count == 0 and path:
            self._unlink_leaf(page, path)
        return True

    def _unlink_leaf(self, leaf: Page,
                     path: list[tuple[Page, int]]) -> None:
        """Remove an empty leaf from the sibling chain and the tree."""
        if leaf.prev_page >= 0:
            self._wget(leaf.prev_page).next_page = leaf.next_page
        if leaf.next_page >= 0:
            self._wget(leaf.next_page).prev_page = leaf.prev_page
        leaf.prev_page = leaf.next_page = -1
        # Remove the parent entries bottom-up while pages empty out.
        for parent, slot in reversed(path):
            parent.delete_record(slot)
            if parent.slot_count > 0:
                return
        # The root itself ran out of children: collapse to a fresh
        # empty leaf-rooted tree.
        root = self._alloc(self._leaf_kind, level=0)
        self._root_id = root.page_id
        self._height = 1

    def update(self, key: int, payload: bytes) -> bool:
        """Replace the payload of an existing key in place; returns
        whether the key existed.

        If the new record does not fit the page, it is deleted and
        re-inserted (a row-forwarding rewrite).
        """
        leaf = self._wget(self._find_leaf(key, None).page_id)
        slot, found = _leaf_slot(leaf, key)
        if not found:
            return False
        record = _leaf_record(key, payload)
        try:
            leaf.replace_record(slot, record)
            leaf.compact()
        except PageFullError:
            self.delete(key)
            self.insert(key, payload)
        return True

    def _split_internal(self, page: Page, slot: int, record: bytes
                        ) -> tuple[int, int]:
        records = page.take_all_records()
        records.insert(slot, record)
        mid = (len(records) - 1 if slot == len(records) - 1
               else len(records) // 2)
        left, right = records[:mid], records[mid:]
        new_page = self._alloc(PAGE_INDEX, level=page.level)
        for r in left:
            page.add_record(r)
        for r in right:
            new_page.add_record(r)
        sep_key = _child_fields(right[0])[0]
        return sep_key, new_page.page_id


class BTreeReader:
    """Latch-free read view of a B+tree frozen at one table version.

    Constructed from a pinned snapshot's ``(version, root_id, height,
    count)``; every page is resolved against that version — the current
    page when old enough, else the copy-on-write history
    (:meth:`PageFile.resolve`) — and charged to the pool under the
    version-aware cache key (:meth:`BufferPool.fetch_page`).  Because
    copy-on-write keeps superseded pages reachable while the version is
    pinned, no latch is needed for the traversal: a concurrent writer
    mutates clones, never the pages this view resolves.

    Mirrors the read API of :class:`BTree` (``search``/``scan``/
    ``leaf_page_ids``/``charge_scan_descent``/``scan_leaf_batches``) so
    the executor's scan and point paths take either interchangeably.
    """

    def __init__(self, pagefile: PageFile, version: int, root_id: int,
                 height: int, count: int):
        self._pagefile = pagefile
        self.version = version
        self._root_id = root_id
        self._height = height
        self._count = count

    @property
    def root_page_id(self) -> int:
        return self._root_id

    @property
    def height(self) -> int:
        return self._height

    @property
    def count(self) -> int:
        return self._count

    def _get(self, page_id: int) -> Page:
        return self._pagefile.resolve(page_id, self.version)

    def _getter(self, pool: BufferPool | None):
        if pool is None:
            return self._get
        resolve = self._pagefile.resolve
        version = self.version
        fetch_page = pool.fetch_page
        return lambda pid: fetch_page(resolve(pid, version))

    def _find_leaf(self, key: int, pool: BufferPool | None) -> Page:
        get = self._getter(pool)
        page = get(self._root_id)
        while page.level > 0:
            slot = _descend_slot(page, key)
            _sep, child = _child_fields(page.get_record(slot))
            page = get(child)
        return page

    def search(self, key: int, pool: BufferPool | None = None
               ) -> bytes | None:
        """Point lookup at the pinned version; see :meth:`BTree.search`."""
        leaf = self._find_leaf(key, pool)
        slot, found = _leaf_slot(leaf, key)
        if not found:
            return None
        return _leaf_payload(leaf.get_record(slot))

    def scan(self, pool: BufferPool | None = None,
             start: int | None = None, stop: int | None = None
             ) -> Iterator[tuple[int, bytes]]:
        """Ordered scan at the pinned version; page touches are charged
        exactly as :meth:`BTree.scan` charges them."""
        get = self._getter(pool)
        if start is None:
            page = get(self._root_id)
            while page.level > 0:
                _sep, child = _child_fields(page.get_record(0))
                page = get(child)
            slot = 0
        else:
            page = self._find_leaf(start, pool)
            slot, _found = _leaf_slot(page, start)
        while True:
            while slot < page.slot_count:
                record = page.get_record(slot)
                key = _leaf_key(record)
                if stop is not None and key >= stop:
                    return
                yield key, _leaf_payload(record)
                slot += 1
            if page.next_page < 0:
                return
            page = get(page.next_page)
            slot = 0

    def leaf_page_ids(self) -> list[int]:
        """Leaf page ids in key order, as of the pinned version."""
        page = self._get(self._root_id)
        while page.level > 0:
            first_child = _child_fields(page.get_record(0))[1]
            page = self._get(first_child)
        ids = []
        while page is not None:
            ids.append(page.page_id)
            page = (self._get(page.next_page)
                    if page.next_page >= 0 else None)
        return ids

    def charge_scan_descent(self, pool: BufferPool) -> list[int]:
        """Charge the root-to-first-leaf descent; see
        :meth:`BTree.charge_scan_descent`."""
        touched = []
        page = pool.fetch_page(self._get(self._root_id))
        touched.append(page.page_id)
        while page.level > 0:
            _sep, child = _child_fields(page.get_record(0))
            page = pool.fetch_page(self._get(child))
            touched.append(page.page_id)
        return touched

    def scan_leaf_batches(self, pool: BufferPool | None = None,
                          start: int | None = None,
                          batch_pages: int = 64) -> Iterator[list[Page]]:
        """Yield runs of up to ``batch_pages`` leaf pages at the pinned
        version, charging exactly as :meth:`BTree.scan_leaf_batches`
        does (descent page by page, leaves after the first of each run
        through one batched pool charge)."""
        get = self._getter(pool)
        if start is None:
            page = get(self._root_id)
            while page.level > 0:
                _sep, child = _child_fields(page.get_record(0))
                page = get(child)
        else:
            page = self._find_leaf(start, pool)
        while True:
            batch = [page]
            tail = page
            while len(batch) < batch_pages and tail.next_page >= 0:
                # Peek the sibling link version-resolved; the pool
                # charge for the whole run lands in fetch_pages below.
                tail = self._get(tail.next_page)
                batch.append(tail)
            if pool is not None and len(batch) > 1:
                pool.fetch_pages(batch[1:])
            yield batch
            if tail.next_page < 0:
                return
            page = get(tail.next_page)
