"""Storage engine constants, modeled on Microsoft SQL Server 2008.

The sizes here drive the two behaviours the paper's design hangs on:

* data pages are 8 kB, so blobs up to ~8 kB can live *on-page* ("short"
  arrays) while larger blobs go *out-of-page* into B-trees ("max"
  arrays, Section 3.3);
* each row carries a fixed overhead, which is why storing a 5-vector as
  one 64-byte blob column makes the table 43 % bigger than five plain
  float columns (Section 6.2).
"""

from __future__ import annotations

#: Bytes per storage engine page (SQL Server uses fixed 8 kB pages).
PAGE_SIZE = 8192

#: Bytes reserved for the page header (SQL Server: 96 bytes).
PAGE_HEADER_SIZE = 96

#: Bytes per slot-array entry at the end of each page.
SLOT_SIZE = 2

#: Usable record bytes per page.
PAGE_BODY_SIZE = PAGE_SIZE - PAGE_HEADER_SIZE

#: Fixed per-row overhead: 4-byte record header plus a null bitmap and
#: column-count word (SQL Server charges roughly 7 bytes plus the slot).
ROW_OVERHEAD = 7

#: Maximum bytes of a variable-length value stored in-row; anything
#: bigger moves out-of-page behind a blob pointer (SQL Server's 8000-byte
#: VARBINARY limit for in-row data).
MAX_IN_ROW_BYTES = 8000

#: Size of the pointer left in the row for an out-of-page blob
#: (SQL Server's text pointer is 16 bytes).
BLOB_POINTER_SIZE = 16

#: Payload bytes per out-of-page blob page (page minus header and chunk
#: bookkeeping; SQL Server fits 8040 payload bytes on a text page).
BLOB_CHUNK_SIZE = 8040

#: Page kind tags.
PAGE_DATA = 1
PAGE_INDEX = 2
PAGE_BLOB = 3

#: Pages per allocation extent.  Pages of one allocation tag (one
#: table's data, one blob store) are laid out contiguously in runs of
#: this many pages, so a clustered scan of a table loaded concurrently
#: with others still reads long sequential runs — SQL Server gets the
#: same effect from uniform extents plus read-ahead, which issues
#: contiguous multi-extent requests.  256 pages = 2 MB runs.
EXTENT_PAGES = 256
