"""Vectorized batch execution: columnar row batches and batch kernels.

The row engine in :mod:`repro.engine.executor` decodes one tuple at a
time and walks a Python ``Expression`` tree per row — faithful to the
per-call UDF overhead the paper measures, but far from "as fast as the
hardware allows".  This module is the batch path: a clustered scan is
chopped into :class:`RowBatch` chunks of whole leaf pages, fixed-width
columns are decoded with NumPy strided views over the concatenated
records, and expressions/aggregates advance a whole batch per dispatch.

Parity with the row engine is a hard contract, enforced by the parity
test suite:

* **Results are bit-identical.**  Aggregates accumulate left-to-right
  over Python scalars (no pairwise summation), integer arithmetic uses
  Python objects (no int64 overflow), ``real`` columns are widened to
  float64 before arithmetic exactly like ``struct.unpack`` widens them,
  and division by zero raises like Python does.
* **IO accounting is identical.**  Batches charge the buffer pool the
  same page touches in the same order as a row scan
  (:meth:`BTree.scan_leaf_batches` + :meth:`BufferPool.fetch_many`).
* **NULL handling is identical.**  Values travel as ``(values, mask)``
  pairs — ``mask`` is ``None`` (no NULLs) or a boolean array with
  ``True`` marking NULL lanes; a plain Python scalar in ``values``
  broadcasts, with ``None`` meaning NULL in every lane.

Expressions that do not implement ``eval_batch`` (user-supplied duck
typed predicates, opaque UDFs without a vectorized kernel) silently
fall back to the row path on materialized tuples, so anything that runs
on the row engine runs on the vector engine.
"""

from __future__ import annotations

import operator
import struct
from functools import reduce
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from .blob import BlobRef
from .constants import ROW_OVERHEAD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (table -> us)
    from .bufferpool import BufferPool
    from .table import Table

__all__ = [
    "DEFAULT_BATCH_PAGES",
    "RowBatch",
    "BatchContext",
    "eval_node",
    "binop_batch",
    "not_batch",
    "isnull_batch",
    "truthy",
    "null_lanes",
    "to_pylist",
    "as_full_array",
    "nonnull_values",
    "fold",
    "partition_lanes",
    "scan_aggregate",
    "scan_grouped",
]

#: Leaf pages decoded per batch (~0.5 MB of records); large enough to
#: amortize NumPy dispatch, small enough to keep working sets cache
#: resident.
DEFAULT_BATCH_PAGES = 64

_KEY_STRUCT = struct.Struct("<q")

_NP_DTYPES = {
    "bigint": np.dtype("<i8"),
    "int": np.dtype("<i4"),
    "smallint": np.dtype("<i2"),
    "tinyint": np.dtype("<i1"),
    "float": np.dtype("<f8"),
    "real": np.dtype("<f4"),
}

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


class _TableLayout:
    """Byte offsets of a table's columns inside a leaf payload.

    Only meaningful when every payload in a batch has the same length
    (no NULL-shortened variable sections), which is when the strided
    fast path applies.
    """

    __slots__ = ("bitmap_offset", "fixed", "var", "var_offset")

    def __init__(self, table: "Table"):
        self.bitmap_offset = ROW_OVERHEAD
        pos = ROW_OVERHEAD + table._bitmap_bytes
        self.fixed: dict[str, tuple[int, int, np.dtype]] = {}
        self.var: list[tuple[str, int, str]] = []
        for i, col in enumerate(table._nonkey):
            dt = _NP_DTYPES.get(col.type)
            if dt is not None:
                self.fixed[col.name] = (pos, i, dt)
                pos += dt.itemsize
            else:
                self.var.append((col.name, i, col.type))
        self.var_offset = pos


def _layout(table: "Table") -> _TableLayout:
    layout = getattr(table, "_vec_layout", None)
    if layout is None:
        layout = _TableLayout(table)
        table._vec_layout = layout
    return layout


class RowBatch:
    """A run of clustered-index rows decoded column-at-a-time.

    Attributes:
        table: The owning table.
        keys: Primary keys as an int64 array.
        payloads: The raw leaf payloads (kept for fallback row
            materialization and non-uniform decoding).
        n: Number of rows in the batch.
    """

    __slots__ = ("table", "keys", "payloads", "n", "_columns", "_tuples",
                 "_buf", "_arr2d", "_uniform_len", "_uniform_checked")

    def __init__(self, table: "Table", keys, payloads: list[bytes]):
        self.table = table
        self.keys = np.asarray(keys, dtype=np.int64)
        self.payloads = payloads
        self.n = len(payloads)
        self._columns: dict[str, tuple] = {}
        self._tuples: list[tuple] | None = None
        self._buf: bytes | None = None
        self._arr2d: np.ndarray | None = None
        self._uniform_len: int | None = None
        self._uniform_checked = False

    @property
    def payload_bytes(self) -> int:
        return sum(len(p) for p in self.payloads)

    # -- decoding ----------------------------------------------------------

    def _uniform(self) -> int | None:
        """Common payload length, or None if rows differ (NULL
        variable columns shorten their rows)."""
        if not self._uniform_checked:
            self._uniform_checked = True
            if self.n:
                length = len(self.payloads[0])
                if all(len(p) == length for p in self.payloads):
                    self._uniform_len = length
        return self._uniform_len

    def _raw(self) -> np.ndarray:
        """(n, L) uint8 view over the concatenated payloads."""
        if self._arr2d is None:
            self._buf = b"".join(self.payloads)
            self._arr2d = np.frombuffer(self._buf, dtype=np.uint8) \
                .reshape(self.n, self._uniform_len)
        return self._arr2d

    def _bitmap_mask(self, col_slot: int) -> np.ndarray | None:
        layout = _layout(self.table)
        bits = self._raw()[:, layout.bitmap_offset + (col_slot >> 3)]
        mask = ((bits >> (col_slot & 7)) & 1).astype(bool)
        return mask if mask.any() else None

    def column(self, name: str) -> tuple:
        """Decode one column as ``(values, mask)``.

        Fixed-width columns come back as numeric arrays (zeros in NULL
        lanes, flagged by the mask); variable columns as object arrays
        of ``bytes`` / :class:`MaxBlobHandle` / ``None``.
        """
        got = self._columns.get(name)
        if got is not None:
            return got
        table = self.table
        idx = table.column_index(name)
        if idx == 0:
            out = (self.keys, None)
        elif self._uniform() is not None:
            spec = _layout(table).fixed.get(name)
            if spec is not None:
                offset, slot, dt = spec
                self._raw()
                values = np.ndarray(
                    (self.n,), dtype=dt, buffer=self._buf,
                    offset=offset, strides=(self._uniform_len,)).copy()
                out = (values, self._bitmap_mask(slot))
            else:
                self._decode_var_columns()
                return self._columns[name]
        else:
            out = self._column_from_tuples(name, idx)
        self._columns[name] = out
        return out

    def _decode_var_columns(self) -> None:
        """One pass over the variable sections decoding *all* var
        columns (they are stored sequentially, so decoding one means
        walking the ones before it anyway)."""
        from .table import MaxBlobHandle

        table = self.table
        layout = _layout(table)
        length = self._uniform_len
        self._raw()
        buf = self._buf
        n = self.n
        unpack_h = struct.Struct("<H").unpack_from
        unpack_b = struct.Struct("<B").unpack_from
        unpack_ptr = struct.Struct("<Hiq").unpack_from
        store = table._blob_store
        outs = {}
        masks = {}
        for name, slot, _typ in layout.var:
            outs[name] = np.empty(n, dtype=object)
            bits = self._arr2d[:, layout.bitmap_offset + (slot >> 3)]
            masks[name] = ((bits >> (slot & 7)) & 1).astype(bool)
        for r in range(n):
            pos = r * length + layout.var_offset
            for name, _slot, typ in layout.var:
                is_null = masks[name][r]
                if typ == "varbinary":
                    (size,) = unpack_h(buf, pos)
                    pos += 2
                    value = None if is_null else buf[pos:pos + size]
                    pos += size
                else:
                    (flag,) = unpack_b(buf, pos)
                    pos += 1
                    if flag == 0:
                        (size,) = unpack_h(buf, pos)
                        pos += 2
                        value = None if is_null else buf[pos:pos + size]
                        pos += size
                    else:
                        (_zero, ptr, size) = unpack_ptr(buf, pos)
                        pos += 14
                        value = MaxBlobHandle(store, BlobRef(ptr, size))
                outs[name][r] = value
        for name, _slot, _typ in layout.var:
            mask = masks[name]
            self._columns[name] = (outs[name],
                                   mask if mask.any() else None)

    def _column_from_tuples(self, name: str, idx: int) -> tuple:
        """Non-uniform batch: decode whole rows once, then slice."""
        rows = self.rows()
        col = self.table.columns[idx]
        vals = [row[idx] for row in rows]
        mask = np.fromiter((v is None for v in vals), dtype=bool,
                           count=self.n)
        has_null = bool(mask.any())
        dt = _NP_DTYPES.get(col.type)
        if dt is not None:
            if has_null:
                values = np.array([0 if v is None else v for v in vals],
                                  dtype=dt)
            else:
                values = np.array(vals, dtype=dt)
        else:
            values = np.empty(self.n, dtype=object)
            values[:] = vals
        return values, (mask if has_null else None)

    def rows(self) -> list[tuple]:
        """Materialize the batch as decoded row tuples (the fallback
        representation for non-vectorizable expressions)."""
        if self._tuples is None:
            decode = self.table.decode
            self._tuples = [decode(k, p) for k, p in
                            zip(self.keys.tolist(), self.payloads)]
        return self._tuples

    def compact(self, keep: np.ndarray) -> "RowBatch":
        """A new batch holding only lanes where ``keep`` is True.
        Already-decoded columns are filtered, not re-decoded."""
        idx = np.flatnonzero(keep)
        picks = idx.tolist()
        out = RowBatch(self.table, self.keys[idx],
                       [self.payloads[i] for i in picks])
        for name, (values, mask) in self._columns.items():
            values = values[idx] if isinstance(values, np.ndarray) \
                else values
            if isinstance(mask, np.ndarray):
                mask = mask[idx]
                if not mask.any():
                    mask = None
            out._columns[name] = (values, mask)
        if self._tuples is not None:
            out._tuples = [self._tuples[i] for i in picks]
        return out


class BatchContext:
    """Evaluation context for one vectorized query.

    Duck-types :class:`~repro.engine.executor._RowContext` (same
    ``table``/``row``/``pool`` and counter attributes) so per-row
    fallback evaluation reuses row-path ``eval`` unchanged, while
    :attr:`batch` carries the current :class:`RowBatch` for vectorized
    nodes.
    """

    __slots__ = ("table", "row", "pool", "udf_calls", "stream_calls",
                 "stream_bytes", "extra_cpu", "batch")

    def __init__(self, table: "Table", pool: "BufferPool"):
        self.table = table
        self.pool = pool
        self.row: tuple = ()
        self.udf_calls = 0
        self.stream_calls = 0
        self.stream_bytes = 0
        self.extra_cpu = 0.0
        self.batch: RowBatch | None = None


# -- (values, mask) helpers --------------------------------------------------


def eval_node(expr, ctx: BatchContext) -> tuple:
    """Evaluate an expression over the current batch.

    Uses the node's ``eval_batch`` when present, else loops the row
    path over materialized tuples — so duck-typed expressions that only
    implement ``eval(ctx)`` keep working on the vector engine.
    """
    fn = getattr(expr, "eval_batch", None)
    if fn is not None:
        return fn(ctx)
    batch = ctx.batch
    out = np.empty(batch.n, dtype=object)
    prev = ctx.row
    try:
        for i, row in enumerate(batch.rows()):
            ctx.row = row
            out[i] = expr.eval(ctx)
    finally:
        ctx.row = prev
    return out, mask_from_object(out)


def mask_from_object(values: np.ndarray) -> np.ndarray | None:
    mask = np.fromiter((v is None for v in values), dtype=bool,
                       count=len(values))
    return mask if mask.any() else None


def null_lanes(values, mask, n: int) -> np.ndarray:
    """Boolean array marking NULL lanes."""
    if not isinstance(values, np.ndarray):
        return np.full(n, values is None)
    if mask is None:
        return np.zeros(n, dtype=bool)
    return mask


def combine_masks(n: int, *pairs) -> np.ndarray | None:
    """NULL union of several ``(values, mask)`` operands (the row
    engine's collapsed three-valued logic: any NULL in, NULL out)."""
    mask = None
    for values, m in pairs:
        if not isinstance(values, np.ndarray) and values is None:
            return np.ones(n, dtype=bool)
        if m is not None:
            mask = m.copy() if mask is None else mask
            if mask is not m:
                mask |= m
    return mask


def truthy(values, n: int) -> np.ndarray:
    """Per-lane ``bool(value)`` (NULL lanes come out False, which is
    how the row engine's WHERE treats None)."""
    if not isinstance(values, np.ndarray):
        return np.full(n, bool(values))
    if values.dtype == np.bool_:
        return values
    if values.dtype.kind in "fiu":
        return values != 0
    return np.fromiter((bool(v) for v in values), dtype=bool, count=n)


def to_pylist(values, mask, n: int) -> list:
    """Per-lane Python scalars, ``None`` in NULL lanes — the values the
    row engine would have produced."""
    if not isinstance(values, np.ndarray):
        return [values] * n
    vals = values.tolist()
    if mask is not None:
        for i in np.flatnonzero(mask).tolist():
            vals[i] = None
    return vals


def as_full_array(values, n: int) -> np.ndarray:
    """Broadcast a scalar operand to a length-``n`` array (kernels
    always see arrays)."""
    if isinstance(values, np.ndarray):
        return values
    if isinstance(values, bool):
        return np.full(n, values)
    if isinstance(values, float):
        return np.full(n, values, dtype=np.float64)
    if isinstance(values, int) and _INT64_MIN <= values <= _INT64_MAX:
        return np.full(n, values, dtype=np.int64)
    out = np.empty(n, dtype=object)
    out.fill(values)
    return out


def nonnull_values(values, mask, n: int) -> list:
    """Non-NULL lane values in lane order, as Python scalars."""
    if not isinstance(values, np.ndarray):
        if values is None:
            return []
        return [values] * n
    if mask is None:
        vals = values.tolist()
    else:
        vals = values[~mask].tolist()
    if values.dtype == object:
        vals = [v for v in vals if v is not None]
    return vals


def fold(op, state, vals: Iterable):
    """Strict left fold matching the row engine's one-value-at-a-time
    accumulation (no pairwise summation, same float rounding, same
    NaN propagation through min/max)."""
    it = iter(vals)
    if state is None:
        try:
            state = next(it)
        except StopIteration:
            return None
    return reduce(op, it, state)


# -- batch operators ---------------------------------------------------------


_ARITH_OPS = {"+", "-", "*", "/"}

_NP_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_NP_CMP = {
    "=": operator.eq,
    "==": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _is_float_operand(v) -> bool:
    if isinstance(v, np.ndarray):
        return v.dtype.kind == "f"
    return isinstance(v, float)


def _is_int64_operand(v) -> bool:
    if isinstance(v, np.ndarray):
        return v.dtype.kind in "iu"
    return (isinstance(v, int) and not isinstance(v, bool)
            and _INT64_MIN <= v <= _INT64_MAX)


def _widen(v):
    if isinstance(v, np.ndarray) and v.dtype != np.float64:
        return v.astype(np.float64)
    return v


def binop_batch(op: str, func, lv, lm, rv, rm, n: int) -> tuple:
    """Vectorized binary operator with row-engine parity.

    ``func`` is the row engine's Python implementation of ``op``; it is
    the authority on semantics and runs the scalar-scalar case and the
    object fallback path, so both engines compute with the same Python
    operators wherever NumPy's would diverge (integer overflow, mixed
    int/float comparison rounding).
    """
    if not isinstance(lv, np.ndarray) and not isinstance(rv, np.ndarray):
        if lv is None or rv is None:
            return None, None
        return func(lv, rv), None
    mask = combine_masks(n, (lv, lm), (rv, rm))
    if op in ("AND", "OR"):
        a = truthy(lv, n)
        b = truthy(rv, n)
        return ((a & b) if op == "AND" else (a | b)), mask
    arith = op in _ARITH_OPS
    if _is_float_operand(lv) and _is_float_operand(rv):
        # Pure float64 lane math is bit-identical to Python floats.
        # ``real`` operands are widened first, as struct.unpack widens
        # them for the row engine.
        if arith:
            if op == "/":
                _check_zero_divisor(rv, mask)
            with np.errstate(all="ignore"):
                values = _NP_ARITH[op](_widen(lv), _widen(rv))
            return values, mask
        return _NP_CMP[op](lv, rv), mask
    if not arith and _is_int64_operand(lv) and _is_int64_operand(rv):
        # Integer comparisons never round; arithmetic could overflow
        # int64 and falls through to exact Python objects below.
        return _NP_CMP[op](lv, rv), mask
    la = to_pylist(lv, lm, n)
    ra = to_pylist(rv, rm, n)
    out = np.empty(n, dtype=object)
    lanes = range(n) if mask is None else np.flatnonzero(~mask).tolist()
    for i in lanes:
        out[i] = func(la[i], ra[i])
    return out, mask


def _check_zero_divisor(rv, mask) -> None:
    """Raise exactly as Python float division would on the row path —
    NumPy would emit inf and a warning instead.  Only non-NULL lanes
    count: the row engine never divides when either side is NULL."""
    if isinstance(rv, np.ndarray):
        valid = rv if mask is None else rv[~mask]
        if valid.size and np.any(valid == 0):
            raise ZeroDivisionError("float division by zero")
    elif rv == 0:
        raise ZeroDivisionError("float division by zero")


def not_batch(values, mask, n: int) -> tuple:
    """Batch NOT: truthiness flip, NULL in → NULL out."""
    if not isinstance(values, np.ndarray) and values is None:
        return None, None
    return ~truthy(values, n), mask


def isnull_batch(values, mask, n: int, negate: bool = False) -> tuple:
    """Batch IS [NOT] NULL — never NULL itself."""
    lanes = null_lanes(values, mask, n)
    return (~lanes if negate else lanes), None


# -- drivers -----------------------------------------------------------------


def partition_lanes(values, mask, n: int):
    """Partition a batch's group column into ``(key, lanes)`` pairs.

    ``lanes`` are ascending lane indices, so folding each group's
    values in partition order reproduces the row engine's per-group
    accumulation order exactly.  NULL lanes form a final ``None``
    group.  Returns ``None`` when the column cannot be partitioned
    with array machinery without changing semantics — object dtype
    (unhashable / mixed values) or float NaN keys, where the row
    engine's per-object dict behaviour (every NaN its own group) must
    be reproduced by the per-lane walk instead.
    """
    if not isinstance(values, np.ndarray):
        if values is None:
            return [(None, list(range(n)))]
        if isinstance(values, float) and values != values:
            return None
        return [(values, list(range(n)))]
    if values.dtype == object:
        return None
    if values.dtype.kind == "f" and bool(np.isnan(values).any()):
        return None
    out = []
    if mask is not None and mask.any():
        valid_idx = np.flatnonzero(~mask)
        null_lanes_ = np.flatnonzero(mask).tolist()
        vv = values[valid_idx]
    else:
        valid_idx = None
        null_lanes_ = None
        vv = values
    if vv.size:
        uniq, inv = np.unique(vv, return_inverse=True)
        # Stable argsort keeps each group's lanes in row order.
        order = np.argsort(inv, kind="stable")
        sorted_lanes = (order if valid_idx is None
                        else valid_idx[order]).tolist()
        counts = np.bincount(inv, minlength=len(uniq)).tolist()
        start = 0
        for key, count in zip(uniq.tolist(), counts):
            out.append((key, sorted_lanes[start:start + count]))
            start += count
    if null_lanes_:
        out.append((None, null_lanes_))
    return out


def _step_batch_fallback(agg, state, ctx: BatchContext):
    """Per-row stepping for aggregates without a batch form."""
    prev = ctx.row
    try:
        for row in ctx.batch.rows():
            ctx.row = row
            state = agg.step(state, ctx)
    finally:
        ctx.row = prev
    return state


def _apply_where(where, ctx: BatchContext) -> RowBatch | None:
    """Filter the context's batch through a predicate; returns the
    (possibly compacted) batch, or None when nothing survives."""
    batch = ctx.batch
    wv, wm = eval_node(where, ctx)
    keep = truthy(wv, batch.n) & ~null_lanes(wv, wm, batch.n)
    if keep.all():
        return batch
    batch = batch.compact(keep)
    ctx.batch = batch
    return batch if batch.n else None


def scan_aggregate(table: "Table", pool: "BufferPool",
                   aggregates: Sequence, where, ctx: BatchContext,
                   batch_pages: int = DEFAULT_BATCH_PAGES):
    """Vectorized ``SELECT aggs FROM table [WHERE ...]`` scan body.

    Returns ``(states, rows, payload_bytes)`` with ``rows`` counting
    every scanned row (pre-WHERE), exactly like the row engine.
    """
    states = [agg.start() for agg in aggregates]
    steps = [getattr(agg, "step_batch", None) for agg in aggregates]
    rows = 0
    payload_bytes = 0
    for batch in table.scan_batches(pool, batch_pages=batch_pages):
        rows += batch.n
        payload_bytes += batch.payload_bytes
        ctx.batch = batch
        if where is not None and _apply_where(where, ctx) is None:
            continue
        for i, agg in enumerate(aggregates):
            step = steps[i]
            states[i] = (step(states[i], ctx) if step is not None
                         else _step_batch_fallback(agg, states[i], ctx))
    return states, rows, payload_bytes


def scan_grouped(table: "Table", pool: "BufferPool", group_expr,
                 aggregates: Sequence, where, ctx: BatchContext,
                 batch_pages: int = DEFAULT_BATCH_PAGES):
    """Vectorized hash-aggregation scan body.

    Expressions are evaluated batch-at-a-time; the group column is
    partitioned with :func:`partition_lanes` (np.unique + stable
    argsort) and each group advances over its lane values in one
    ``step_values`` call — the accumulation order within a group is
    still row order, so float rounding matches the row engine.
    Batches whose group keys cannot be partitioned faithfully (object
    dtype, NaN) fall back to the per-lane ``step_value`` walk, and
    aggregates without either hook fall back to per-row stepping.
    Returns ``(groups, rows, payload_bytes)``.
    """
    partitionable = all(
        getattr(agg, "step_values", None) is not None
        for agg in aggregates)
    per_lane_ok = all(
        getattr(agg, "step_value", None) is not None
        for agg in aggregates)
    vectorizable = partitionable or per_lane_ok
    groups: dict = {}
    rows = 0
    payload_bytes = 0
    for batch in table.scan_batches(pool, batch_pages=batch_pages):
        rows += batch.n
        payload_bytes += batch.payload_bytes
        ctx.batch = batch
        if where is not None:
            batch = _apply_where(where, ctx)
            if batch is None:
                continue
        if vectorizable:
            n = batch.n
            gv, gm = eval_node(group_expr, ctx)
            parts = partition_lanes(gv, gm, n) if partitionable else None
            cols = [
                (to_pylist(*eval_node(agg.expr, ctx), n)
                 if agg.expr is not None else None)
                for agg in aggregates]
            if parts is not None:
                for group, lanes in parts:
                    states = groups.get(group)
                    if states is None:
                        states = [agg.start() for agg in aggregates]
                        groups[group] = states
                    for i, agg in enumerate(aggregates):
                        col = cols[i]
                        states[i] = agg.step_values(
                            states[i],
                            [col[lane] for lane in lanes]
                            if col is not None
                            else [None] * len(lanes))
                continue
            if not per_lane_ok:
                # step_values-only aggregates on an unpartitionable
                # batch: step per row like the non-vectorizable path.
                prev = ctx.row
                try:
                    for row in batch.rows():
                        ctx.row = row
                        group = group_expr.eval(ctx)
                        states = groups.get(group)
                        if states is None:
                            states = [agg.start() for agg in aggregates]
                            groups[group] = states
                        for i, agg in enumerate(aggregates):
                            states[i] = agg.step(states[i], ctx)
                finally:
                    ctx.row = prev
                continue
            gvals = to_pylist(gv, gm, n)
            for lane in range(n):
                group = gvals[lane]
                states = groups.get(group)
                if states is None:
                    states = [agg.start() for agg in aggregates]
                    groups[group] = states
                for i, agg in enumerate(aggregates):
                    col = cols[i]
                    states[i] = agg.step_value(
                        states[i], col[lane] if col is not None else None)
        else:
            prev = ctx.row
            try:
                for row in batch.rows():
                    ctx.row = row
                    group = group_expr.eval(ctx)
                    states = groups.get(group)
                    if states is None:
                        states = [agg.start() for agg in aggregates]
                        groups[group] = states
                    for i, agg in enumerate(aggregates):
                        states[i] = agg.step(states[i], ctx)
            finally:
                ctx.row = prev
    return groups, rows, payload_bytes
