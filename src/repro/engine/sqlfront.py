"""A T-SQL front-end for the storage engine.

Parses the slice of T-SQL the paper's evaluation uses — aggregate
selects over one table with optional ``WITH (NOLOCK)`` and ``WHERE`` —
and compiles it onto the executor, so the five Table 1 queries run
*verbatim*::

    from repro.engine import Database
    from repro.engine.sqlfront import SqlSession

    session = SqlSession(db)
    (n,), metrics = session.query(
        "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)")
    (s,), metrics = session.query(
        "SELECT SUM(FloatArray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)")

Grammar::

    stmt    := query | create | drop | insert | delete
    query   := SELECT item (',' item)* FROM name [WITH '(' NOLOCK ')']
               [WHERE pred] [GROUP BY expr]
    item    := agg | expr            (plain exprs only with GROUP BY)
    create  := CREATE TABLE name '(' col type [PRIMARY KEY] ... ')'
    drop    := DROP TABLE name
    insert  := INSERT INTO name VALUES '(' value, ... ')' [, ...]
    delete  := DELETE FROM name [WHERE pred]
    agg     := COUNT '(' '*' ')' | (SUM|AVG|MIN|MAX) '(' expr ')'
    expr    := term (('+'|'-') term)*
    term    := factor (('*'|'/') factor)*
    factor  := number | string | column | func | '(' expr ')' | '-' factor
    func    := name '.' name '(' [expr (',' expr)*] ')'
    pred    := conj (OR conj)* ; conj := unit (AND unit)*
    unit    := NOT unit | expr cmp expr | '(' pred ')'
    cmp     := = | <> | != | < | <= | > | >=

Schema-qualified function calls (``FloatArray.Item_1``) resolve against
the generated T-SQL namespaces; additional scalar functions (the
paper's ``dbo.EmptyFunction``) can be registered per session.  UDF
calls are charged the CLR call cost from the cost model; ``Item_*`` and
other array functions get the "item" body cost, registered functions
declare their own.
"""

from __future__ import annotations

import math
import re
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..tsql.namespaces import NAMESPACES
from . import vectorized
from .costmodel import CostModel
from .executor import (
    Avg,
    Col,
    Const,
    Count,
    Database,
    Executor,
    Expression,
    Max,
    Min,
    PartialCapture,
    ReadBlob,
    ScalarUdf,
    Sum,
)
from .table import Table

__all__ = ["SelectPlan", "SqlSession", "SqlSyntaxError"]


class SqlSyntaxError(Exception):
    """Raised for SQL the front-end cannot parse or resolve."""


_TOKEN_RE = re.compile(r"""
    (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+|\d+(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|[=<>().,*+\-/])
  | (?P<string>'[^']*')
  | (?P<ws>\s+)
""", re.VERBOSE)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "WITH", "NOLOCK", "AND", "OR",
             "NOT", "COUNT", "SUM", "AVG", "MIN", "MAX", "AS", "NULL",
             "IS", "GROUP", "BY", "CREATE", "TABLE", "INSERT", "INTO",
             "VALUES", "PRIMARY", "KEY", "DELETE", "DROP"}


def _tokenize(text: str):
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise SqlSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}")
        kind = m.lastgroup
        if kind != "ws":
            value = m.group()
            if kind == "name" and value.upper() in _KEYWORDS:
                tokens.append(("kw", value.upper()))
            else:
                tokens.append((kind, value))
        pos = m.end()
    tokens.append(("eof", ""))
    return tokens


def _statement_table(tokens, keyword: str) -> str:
    """Name of the table a statement targets: the name token following
    the first top-level ``keyword`` (``FROM`` or ``INTO``).

    Statement planning runs this *before* any latch is taken, so the
    statement's latch set is known up front (the grammar is
    single-table, so the set is one name)."""
    depth = 0
    for i, (kind, value) in enumerate(tokens):
        if kind == "op" and value == "(":
            depth += 1
        elif kind == "op" and value == ")":
            depth -= 1
        elif kind == "kw" and value == keyword and depth == 0:
            name_tok = tokens[i + 1]
            if name_tok[0] != "name":
                raise SqlSyntaxError(
                    f"expected a table name after {keyword}")
            return name_tok[1]
    raise SqlSyntaxError(f"missing {keyword} clause")


@dataclass
class SelectPlan:
    """A parsed, routable aggregate SELECT.

    Produced once by :meth:`SqlSession.plan_select` and executable
    anywhere: locally (``SqlSession`` feeds it straight to the
    executor) or remotely (the shard coordinator inspects ``key`` /
    ``pk_range`` to route, then ships the statement text to the owning
    shards).  ``kind`` selects the executor entry point:

    * ``"scan"``    — full clustered scan (:meth:`Executor.run`)
    * ``"point"``   — clustered index seek (:meth:`Executor.run_point`)
    * ``"index"``   — secondary index seek/range
      (:meth:`Executor.run_index`)
    * ``"grouped"`` — hash aggregation (:meth:`Executor.run_grouped`)

    ``pk_range`` is the half-open primary-key interval ``[lo, hi)``
    implied by the WHERE clause (either bound ``None`` when open);
    it never widens the predicate, so a router may prune shards whose
    key slices fall outside it without changing results.
    """

    table: Table
    label: str
    kind: str
    aggregates: list
    where: Expression | None = None
    group_expr: Expression | None = None
    group_text: str | None = None
    key: int | None = None
    index_column: str | None = None
    index_equals: object = None
    index_lo: object = None
    index_hi: object = None
    pk_range: tuple[int | None, int | None] | None = None


class _BinOp(Expression):
    """Arithmetic/comparison/boolean operator over two expressions."""

    _FUNCS: dict[str, Callable] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "AND": lambda a, b: bool(a) and bool(b),
        "OR": lambda a, b: bool(a) or bool(b),
    }

    def __init__(self, op: str, left: Expression, right: Expression):
        self.op = op
        self.left = left
        self.right = right

    def columns(self):
        return self.left.columns() | self.right.columns()

    def static_cpu_cost(self, table: Table, model: CostModel) -> float:
        # A native operator costs about one aggregate step's worth of
        # per-row work on top of its operands.
        return (self.left.static_cpu_cost(table, model)
                + self.right.static_cpu_cost(table, model)
                + model.cpu_count_step)

    def eval(self, ctx):
        left = self.left.eval(ctx)
        right = self.right.eval(ctx)
        if left is None or right is None:
            return None  # SQL three-valued logic, collapsed to NULL
        return self._FUNCS[self.op](left, right)

    def eval_batch(self, ctx):
        lv, lm = vectorized.eval_node(self.left, ctx)
        rv, rm = vectorized.eval_node(self.right, ctx)
        return vectorized.binop_batch(self.op, self._FUNCS[self.op],
                                      lv, lm, rv, rm, ctx.batch.n)


class _Not(Expression):
    def __init__(self, inner: Expression):
        self.inner = inner

    def columns(self):
        return self.inner.columns()

    def static_cpu_cost(self, table, model):
        return self.inner.static_cpu_cost(table, model)

    def eval(self, ctx):
        value = self.inner.eval(ctx)
        return None if value is None else not bool(value)

    def eval_batch(self, ctx):
        values, mask = vectorized.eval_node(self.inner, ctx)
        return vectorized.not_batch(values, mask, ctx.batch.n)


class _IsNull(Expression):
    def __init__(self, inner: Expression, negate: bool):
        self.inner = inner
        self.negate = negate

    def columns(self):
        return self.inner.columns()

    def static_cpu_cost(self, table, model):
        return self.inner.static_cpu_cost(table, model)

    def eval(self, ctx):
        is_null = self.inner.eval(ctx) is None
        return not is_null if self.negate else is_null

    def eval_batch(self, ctx):
        values, mask = vectorized.eval_node(self.inner, ctx)
        return vectorized.isnull_batch(values, mask, ctx.batch.n,
                                       self.negate)


class _EvalContext:
    """Minimal row context for evaluating predicates outside the
    executor (the DELETE path)."""

    def __init__(self, table: Table):
        self.table = table
        self.row: tuple = ()
        self.pool = None
        self.udf_calls = 0
        self.stream_calls = 0
        self.stream_bytes = 0
        self.extra_cpu = 0.0


def _empty_function(*args):
    """The paper's ``dbo.EmptyFunction``: takes anything, does
    nothing.  Module-level so it pickles by reference into parallel
    worker processes (which re-import this module and therefore see
    the batch kernel attached below)."""
    return 0.0


def _empty_function_kernel(args):
    return np.zeros(len(args[0])) if args else None


_empty_function.vectorized = _empty_function_kernel


class SqlSession:
    """Parses and executes T-SQL aggregate queries against a database.

    Args:
        db: The database whose tables the queries reference.
        model: Cost model (defaults to the paper-calibrated one).
    """

    def __init__(self, db: Database, model: CostModel | None = None):
        self.db = db
        self.executor = Executor(db, model) if model else Executor(db)
        self._functions: dict[str, tuple[Callable, object, bool]] = {}
        # Prepared-statement plan cache, keyed by exact SQL text.
        # Invalidated wholesale on DDL (a plan holds a Table
        # reference, and new tables can change how a name resolves).
        self._plan_cache: dict[str, SelectPlan] = {}
        # The paper's cross-check UDF ships registered, with a trivial
        # batch kernel so the vector engine never falls back on it.
        # It is a module-level function (not a lambda) so query plans
        # that call it still pickle across the parallel engine's
        # process boundary.
        self.register_function(
            "dbo.EmptyFunction", _empty_function, body_cost="empty")

    def register_function(self, qualified_name: str, func: Callable,
                          body_cost="item",
                          vectorized: Callable | None = None,
                          parallel_safe: bool = True) -> None:
        """Register a scalar UDF callable as ``Schema.Name(...)``.

        ``body_cost`` is the managed-body cost class charged per call
        ("item", "empty", or seconds as float).  ``vectorized``, if
        given, is a batch kernel with the
        :class:`~repro.engine.executor.ScalarUdf` kernel contract: it
        receives a list of equal-length arrays (one per argument, no
        NULLs) and returns a length-n array, or ``None`` to decline the
        batch.  It is attached to ``func`` as its ``vectorized``
        attribute, which :class:`ScalarUdf` picks up automatically.

        ``parallel_safe=False`` marks a function that must not run in
        worker processes (it closes over mutable state, talks to the
        outside world, ...); plans calling it always fall back to the
        serial vector engine.  The flag lives in this session's
        registry entry — the caller's function object is never
        mutated — and is carried on the :class:`ScalarUdf` plan nodes
        built from it.  Functions that are pure but simply fail to
        pickle need no marking — the parallel engine detects that and
        falls back on its own.
        """
        if vectorized is not None:
            try:
                func.vectorized = vectorized
            except AttributeError:
                # Builtins/bound methods reject attributes; wrap them.
                plain = func
                def func(*args, _f=plain):  # noqa: E306
                    return _f(*args)
                func.vectorized = vectorized
        self._functions[qualified_name.lower()] = (
            func, body_cost, parallel_safe)

    # -- public API --------------------------------------------------------

    def execute(self, sql: str, cold: bool = True, finalize=None,
                engine: str | None = None, workers: int | None = None):
        """Execute any supported statement.

        ``SELECT`` returns ``(values, metrics)`` (or ``(rows, metrics)``
        with GROUP BY); ``CREATE TABLE`` returns the new
        :class:`~repro.engine.table.Table`; ``DROP TABLE`` returns 0;
        ``INSERT`` returns the number of rows inserted.  ``finalize`` (SELECT only) is applied
        to the result while the table latches are still held — see
        :meth:`query`.  ``engine`` (SELECT only) picks the execution
        path — ``"row"``, ``"vector"``, ``"parallel"``, or ``None`` for
        the executor's default; all produce identical results and
        cold-run metrics.  ``workers`` sizes the parallel engine's
        process pool (ignored by the serial engines).

        Latching: CREATE/DROP take the exclusive catalog latch; INSERT and
        DELETE take the exclusive latch of the one table they target
        (discovered from the token stream before locking anything), so
        a writer here overlaps readers and writers of *other* tables.
        Under MVCC (the default) the write latch shrinks further, to
        the copy-on-write mutate + publish step: rows are parsed and
        encoded first, a key-range write intent is declared (so
        disjoint-range writers of the *same* table overlap too), and
        only then is the table latched exclusively — concurrent
        snapshot readers never block on any of it.  Under
        ``REPRO_LATCH=coarse`` every write path degrades to the single
        database write lock.
        """
        tokens = _tokenize(sql)
        head = tokens[0]
        if head == ("kw", "SELECT"):
            return self.query(sql, cold=cold, finalize=finalize,
                              engine=engine, workers=workers)
        if head == ("kw", "CREATE"):
            with self.db.latches.ddl_latch():
                result = _Ddl(self, tokens).create_table()
            self._plan_cache.clear()
            return result
        if head == ("kw", "DROP"):
            with self.db.latches.ddl_latch():
                _Ddl(self, tokens).drop_table()
            self._plan_cache.clear()
            return 0
        if head == ("kw", "INSERT"):
            if self.db.mvcc:
                return self._insert_mvcc(tokens)
            with self.db.latches.write_latch(
                    _statement_table(tokens, "INTO")):
                return _Ddl(self, tokens).insert()
        if head == ("kw", "DELETE"):
            if self.db.mvcc:
                return self._delete_mvcc(tokens)
            with self.db.latches.write_latch(
                    _statement_table(tokens, "FROM")):
                return self._delete(tokens)
        raise SqlSyntaxError(
            f"unsupported statement starting with {head[1]!r}")

    def _insert_mvcc(self, tokens) -> int:
        """MVCC INSERT: parse and encode every row (blob writes
        included) before any latch, declare a write intent over the
        statement's key range, then latch the table only for the
        copy-on-write apply + publish step."""
        table, rows = _Ddl(self, tokens).parse_insert()
        if not rows:
            return 0
        prep = table.prepare_insert(rows)
        token = table.acquire_intent(min(prep.keys),
                                     max(prep.keys) + 1)
        try:
            with self.db.latches.write_latch(table.name):
                return table.apply_insert(prep)
        finally:
            table.release_intent(token)

    def _delete_mvcc(self, tokens) -> int:
        """MVCC DELETE: pick the victim keys on a pinned snapshot
        (consistent, and concurrent with disjoint writers), then latch
        the table only for the copy-on-write delete + publish step.
        The write intent spans the WHERE clause's primary-key range —
        the whole key space when the predicate does not bound it — so
        the victim set cannot change between selection and deletion.
        """
        parser = _Parser(self, tokens)
        parser._expect("kw", "DELETE")
        parser._expect("kw", "FROM")
        name_tok = parser._next()
        if name_tok[0] != "name":
            raise SqlSyntaxError("expected a table name")
        table = self._resolve_table(name_tok[1])
        parser.table = table
        where = None
        if parser._peek() == ("kw", "WHERE"):
            parser._next()
            where = parser._predicate()
        if parser._peek()[0] != "eof":
            raise SqlSyntaxError(
                f"unexpected trailing input {parser._peek()[1]!r}")
        pk_range = self._pk_range(table, where)
        lo, hi = pk_range if pk_range is not None else (None, None)
        token = table.acquire_intent(lo, hi)
        try:
            # Victim selection scans a pinned snapshot under the shared
            # catalog latch only (no table latch): writers of this and
            # other tables proceed; the latch just pins the catalog so
            # a concurrent DROP cannot free pages (incl. blob pages the
            # predicate reads) mid-scan.
            with self.db.latches.catalog_latch():
                snap = table.pin_snapshot()
                try:
                    if where is None:
                        keys = [row[0] for row in snap.scan()]
                    else:
                        key = self._seek_key(table, where)
                        if key is not None:
                            keys = ([key] if snap.get(key) is not None
                                    else [])
                        else:
                            ctx = _EvalContext(table)
                            keys = []
                            for row in snap.scan():
                                ctx.row = row
                                if where.eval(ctx):
                                    keys.append(row[0])
                finally:
                    snap.unpin(self.db.pool)
            with self.db.latches.write_latch(table.name):
                for key in keys:
                    table.delete(key)
            return len(keys)
        finally:
            table.release_intent(token)

    def _delete(self, tokens) -> int:
        """``DELETE FROM t [WHERE pred]``; returns rows deleted."""
        parser = _Parser(self, tokens)
        parser._expect("kw", "DELETE")
        parser._expect("kw", "FROM")
        name_tok = parser._next()
        if name_tok[0] != "name":
            raise SqlSyntaxError("expected a table name")
        table = self._resolve_table(name_tok[1])
        parser.table = table
        where = None
        if parser._peek() == ("kw", "WHERE"):
            parser._next()
            where = parser._predicate()
        if parser._peek()[0] != "eof":
            raise SqlSyntaxError(
                f"unexpected trailing input {parser._peek()[1]!r}")
        if where is None:
            keys = [row[0] for row in table.scan()]
        else:
            key = self._seek_key(table, where)
            if key is not None:
                keys = [key] if table.get(key) is not None else []
            else:
                ctx = _EvalContext(table)
                keys = []
                for row in table.scan():
                    ctx.row = row
                    if where.eval(ctx):
                        keys.append(row[0])
        for key in keys:
            table.delete(key)
        return len(keys)

    def query(self, sql: str, cold: bool = True, finalize=None,
              engine: str | None = None, workers: int | None = None):
        """Execute one aggregate SELECT; returns (values, metrics).

        A ``WHERE <pk> = <constant>`` predicate is planned as a
        clustered index *seek* (B-tree descent) instead of a full scan;
        ``GROUP BY`` runs the hash-aggregation plan and returns
        ``(rows, metrics)`` with one ``(group, agg...)`` row per group.

        Executes under the shared latch of the table it scans (plus
        the shared catalog latch), so any number of sessions can read
        concurrently — and writers of *other* tables proceed too.  A
        query that may run on the parallel engine latches every table
        shared instead: parallel workers re-open a pickled snapshot of
        the whole database, so all of it must be stable while the
        snapshot is cut and the morsels run.  ``REPRO_LATCH=coarse``
        restores the old database-wide read lock.

        ``finalize``, if given, is called on the raw result *before*
        the latches are released and its return value is returned
        instead.  Results can reference storage (a
        :class:`~repro.engine.table.MaxBlobHandle` cell points at live
        blob pages a writer may later mutate or free); a caller that
        needs to dereference such handles must do it here, while
        writers are still excluded, not after the statement returns.
        ``finalize`` must not execute further statements (the latches
        are not reentrant).

        Under MVCC (the default) a snapshot-pinning plan holds no
        table latch at all — only the shared catalog latch while it
        runs — so this SELECT proceeds concurrently with INSERT/DELETE
        on the *same* table; see :meth:`_mvcc_select_guard`.
        """
        tokens = _tokenize(sql)
        # The linter cannot see that the parallel coordinator's own
        # all-table latch (_execute_mvcc) runs only under MVCC, where
        # _mvcc_select_guard is a nullcontext for parallel plans, and
        # never under the legacy read_latch branch below.
        if self.db.mvcc:
            plan = self._plan_tokens(tokens, sql)
            with self._mvcc_select_guard(plan, engine):
                result = self._execute_plan(plan, cold, engine,  # replint: disable=RL002
                                            workers)
                if finalize is not None:
                    result = finalize(result)
                return result
        with self.db.latches.read_latch(*self._latch_set(tokens, engine)):
            result = self._query_locked(tokens, sql, cold, engine,  # replint: disable=RL002
                                        workers)
            if finalize is not None:
                result = finalize(result)
            return result

    def _mvcc_select_guard(self, plan: SelectPlan, engine: str | None):
        """Latch guard for one SELECT in MVCC mode.

        Index plans keep the table's shared latch — secondary indexes
        are not versioned, so the seek must exclude writers the old
        way.  Parallel-capable plans take no latch here: the parallel
        engine latches all tables shared itself, just around pinning
        snapshots and refreshing its worker snapshot, then scans
        latch-free.  Everything else holds only the shared catalog
        latch (keeping the table set stable while pinning) and scans a
        pinned snapshot without any table latch.
        """
        resolved = engine if engine is not None \
            else self.executor.default_engine
        if plan.kind == "index":
            return self.db.latches.read_latch(plan.table.name)
        if resolved == "parallel" and plan.kind in ("scan", "grouped"):
            return nullcontext()
        return self.db.latches.catalog_latch()

    def _latch_set(self, tokens, engine: str | None) -> tuple[str, ...]:
        """Tables a SELECT must latch: its FROM table — or every table
        (the empty set means "all" to ``read_latch``) when the
        statement may run on the parallel engine, whose workers
        snapshot the whole database."""
        resolved = engine if engine is not None \
            else self.executor.default_engine
        if resolved == "parallel":
            return ()
        return (_statement_table(tokens, "FROM"),)

    def _query_locked(self, tokens, sql: str, cold: bool,
                      engine: str | None = None,
                      workers: int | None = None):
        return self._execute_plan(self._plan_tokens(tokens, sql), cold,
                                  engine, workers)

    def prepare(self, sql: str) -> SelectPlan:
        """Parse and plan an aggregate SELECT once, caching the plan
        by exact SQL text — the server side of a ``prepare`` frame.

        Repeated :meth:`query_prepared` calls for the same text skip
        tokenizing, parsing and plan construction entirely.  The cache
        is cleared on DDL (see :meth:`execute`); data-only writes
        leave plans valid — a plan captures *structure* (expressions,
        seek keys parsed from constants), never row contents.
        """
        plan = self._plan_cache.get(sql)
        if plan is None:
            plan = self.plan_select(sql)
            self._plan_cache[sql] = plan
        return plan

    def query_prepared(self, sql: str, cold: bool = True,
                       finalize=None, engine: str | None = None,
                       workers: int | None = None):
        """Execute one aggregate SELECT through the prepared-plan
        cache: :meth:`query` semantics (latching, ``finalize`` under
        the latches, identical results) minus the per-call parse and
        plan."""
        plan = self.prepare(sql)
        # replint: same cross-mode RL002 false positive as query().
        if self.db.mvcc:
            with self._mvcc_select_guard(plan, engine):
                result = self._execute_plan(plan, cold, engine,  # replint: disable=RL002
                                            workers)
                if finalize is not None:
                    result = finalize(result)
                return result
        with self.db.latches.read_latch(
                *self._plan_latch_set(plan, engine)):
            result = self._execute_plan(plan, cold, engine, workers)  # replint: disable=RL002
            if finalize is not None:
                result = finalize(result)
            return result

    def _plan_latch_set(self, plan: SelectPlan,
                        engine: str | None) -> tuple[str, ...]:
        """:meth:`_latch_set` for an already-built plan (no token
        walk): the plan's table, or every table when the statement may
        run on the parallel engine."""
        resolved = engine if engine is not None \
            else self.executor.default_engine
        if resolved == "parallel":
            return ()
        return (plan.table.name,)

    def plan_select(self, sql: str) -> SelectPlan:
        """Parse one aggregate SELECT into a routable
        :class:`SelectPlan` without executing it (and without taking
        any latch — planning only touches the catalog).

        The same plan object drives local execution (:meth:`query`)
        and remote routing (the shard coordinator reads ``key`` and
        ``pk_range`` to decide which shards must run the statement).
        """
        return self._plan_tokens(_tokenize(sql), sql)

    def _plan_tokens(self, tokens, sql: str) -> SelectPlan:
        parser = _Parser(self, tokens)
        table, items, where, group = parser.parse()
        label = sql.strip()
        if group is not None:
            group_expr, group_text = group
            plain = [it for it in items if it[0] == "expr"]
            aggs = [it[1] for it in items if it[0] == "agg"]
            if len(plain) != 1 or items[0][0] != "expr":
                raise SqlSyntaxError(
                    "GROUP BY queries must select the group expression "
                    "first, then aggregates")
            if plain[0][2] != group_text:
                raise SqlSyntaxError(
                    f"selected expression {plain[0][2]!r} does not "
                    f"match GROUP BY {group_text!r}")
            if not aggs:
                raise SqlSyntaxError(
                    "GROUP BY queries need at least one aggregate")
            return SelectPlan(
                table=table, label=label, kind="grouped",
                aggregates=aggs, where=where, group_expr=group_expr,
                group_text=group_text,
                pk_range=self._pk_range(table, where))
        aggregates = []
        for item in items:
            if item[0] != "agg":
                raise SqlSyntaxError(
                    "non-aggregate select items need a GROUP BY")
            aggregates.append(item[1])
        key = self._seek_key(table, where)
        if key is not None:
            return SelectPlan(table=table, label=label, kind="point",
                              aggregates=aggregates, where=where,
                              key=key, pk_range=(key, key + 1))
        index = self._index_plan(table, where)
        if index is not None:
            column, equals, lo, hi = index
            return SelectPlan(table=table, label=label, kind="index",
                              aggregates=aggregates, where=where,
                              index_column=column, index_equals=equals,
                              index_lo=lo, index_hi=hi,
                              pk_range=self._pk_range(table, where))
        return SelectPlan(table=table, label=label, kind="scan",
                          aggregates=aggregates, where=where,
                          pk_range=self._pk_range(table, where))

    def _execute_plan(self, plan: SelectPlan, cold: bool,
                      engine: str | None = None,
                      workers: int | None = None):
        """Run a :class:`SelectPlan` on this session's executor.

        Callers must hold the appropriate read latches (the public
        entry points :meth:`query` / :meth:`query_partial` take them).
        """
        if plan.kind == "grouped":
            return self.executor.run_grouped(
                plan.table, plan.group_expr, plan.aggregates,
                where=plan.where, cold=cold, label=plan.label,
                engine=engine, workers=workers)
        if plan.kind == "point":
            return self.executor.run_point(
                plan.table, plan.key, plan.aggregates, cold=cold,
                label=plan.label, engine=engine, workers=workers)
        if plan.kind == "index":
            return self.executor.run_index(
                plan.table, plan.index_column, plan.aggregates,
                equals=plan.index_equals, lo=plan.index_lo,
                hi=plan.index_hi, cold=cold, label=plan.label,
                engine=engine, workers=workers)
        return self.executor.run(
            plan.table, plan.aggregates, where=plan.where, cold=cold,
            label=plan.label, engine=engine, workers=workers)

    def query_partial(self, sql: str, cold: bool = True,
                      engine: str | None = None,
                      workers: int | None = None, finalize=None):
        """Execute one aggregate SELECT but return the *unreduced*
        mergeable partial states instead of finished values — the
        shard-side half of distributed aggregation.

        Each aggregate is wrapped in a
        :class:`~repro.engine.executor.PartialCapture`, so the scan
        produces the state its ``merge`` method consumes (ordered
        non-NULL value lists, or a running count).  The caller — a
        shard server answering a ``pquery`` frame — ships those states
        to the coordinator, which folds them in shard order and
        finishes the original aggregates, reproducing single-node
        results bit for bit.

        Returns a dict with ``rows`` (rows scanned), ``metrics``
        (:class:`~repro.engine.metrics.QueryMetrics`), and either
        ``states`` (one partial per aggregate; ``groups`` is None) or
        ``groups`` (ordered ``(group_value, [partials...])`` pairs;
        ``states`` is None) for GROUP BY.  ``finalize`` has
        :meth:`query` semantics: applied under the latches, so blob
        handles inside MIN/MAX partials can be materialized safely.
        """
        tokens = _tokenize(sql)
        # replint: same cross-mode RL002 false positive as query().
        if self.db.mvcc:
            plan = self._plan_tokens(tokens, sql)
            with self._mvcc_select_guard(plan, engine):
                return self._partial_locked(plan, cold, engine,  # replint: disable=RL002
                                            workers, finalize)
        with self.db.latches.read_latch(*self._latch_set(tokens, engine)):
            plan = self._plan_tokens(tokens, sql)
            return self._partial_locked(plan, cold, engine, workers,  # replint: disable=RL002
                                        finalize)

    def _partial_locked(self, plan: SelectPlan, cold: bool,
                        engine: str | None, workers: int | None,
                        finalize):
        """Run a plan with its aggregates wrapped for partial capture
        and shape the shard-side payload (caller holds the latches)."""
        wrapped = replace(plan, aggregates=[
            PartialCapture(agg) for agg in plan.aggregates])
        result = self._execute_plan(wrapped, cold, engine, workers)
        if plan.kind == "grouped":
            rows, metrics = result
            payload = {
                "rows": metrics.rows,
                "states": None,
                "groups": [(row[0], list(row[1:])) for row in rows],
                "metrics": metrics,
            }
        else:
            values, metrics = result
            payload = {
                "rows": metrics.rows,
                "states": list(values),
                "groups": None,
                "metrics": metrics,
            }
        if finalize is not None:
            payload = finalize(payload)
        return payload

    def parse_insert(self, sql: str) -> tuple[Table, list[tuple]]:
        """Parse ``INSERT INTO ... VALUES`` into ``(table, rows)``
        without executing it (namespace calls in the VALUES list are
        evaluated to their blob values).  The shard coordinator uses
        this to partition the rows by primary key and bulk-load each
        owning shard; :meth:`execute` feeds the same rows to
        :meth:`~repro.engine.table.Table.insert_many` locally.
        """
        return _Ddl(self, _tokenize(sql)).parse_insert()

    def _pk_range(self, table: Table, where
                  ) -> tuple[int | None, int | None] | None:
        """Half-open integer primary-key interval ``[lo, hi)`` implied
        by the WHERE clause, or None when the predicate does not bound
        the key.

        Conservative by construction: bounds are read only off simple
        ``pk <op> const`` conjuncts of a top-level AND chain (any other
        conjunct merely narrows the result further, so ignoring it
        keeps the interval a superset of the matching keys).  A
        top-level OR yields None — either branch could match anywhere.
        """
        if where is None:
            return None
        pk = table.columns[0].name
        conjuncts = [where]
        leaves = []
        while conjuncts:
            node = conjuncts.pop()
            if isinstance(node, _BinOp) and node.op == "AND":
                conjuncts.append(node.left)
                conjuncts.append(node.right)
            else:
                leaves.append(node)
        if isinstance(where, _BinOp) and where.op == "OR":
            return None
        lo: int | None = None
        hi: int | None = None
        for leaf in leaves:
            parts = self._cmp_parts(leaf)
            if parts is None or parts[0] != pk:
                continue
            _col, op, value = parts
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)) or not math.isfinite(value):
                continue
            # Keys are integers: snap each bound to the tightest
            # integer interval containing the predicate's solutions.
            if op == "=":
                if value != int(value):
                    return (0, 0)  # pk = 1.5 matches nothing
                lo = max(lo, int(value)) if lo is not None \
                    else int(value)
                hi = min(hi, int(value) + 1) if hi is not None \
                    else int(value) + 1
            elif op == ">=":
                bound = math.ceil(value)
                lo = bound if lo is None else max(lo, bound)
            elif op == ">":
                bound = math.floor(value) + 1
                lo = bound if lo is None else max(lo, bound)
            elif op == "<":
                bound = math.ceil(value)
                hi = bound if hi is None else min(hi, bound)
            elif op == "<=":
                bound = math.floor(value) + 1
                hi = bound if hi is None else min(hi, bound)
        if lo is None and hi is None:
            return None
        return (lo, hi)

    def explain(self, sql: str) -> str:
        """Describe the plan a SELECT would use without executing it.

        Returns one of ``clustered index seek``, ``index seek``,
        ``index range scan``, ``hash aggregate (clustered scan)``, or
        ``clustered index scan``, with the table and predicate column.
        """
        parser = _Parser(self, _tokenize(sql))
        table, _items, where, group = parser.parse()
        if group is not None:
            return (f"hash aggregate (clustered scan) on {table.name} "
                    f"grouped by {group[1]}")
        key = self._seek_key(table, where)
        if key is not None:
            return f"clustered index seek on {table.name} (id = {key})"
        plan = self._index_plan(table, where)
        if plan is not None:
            column, equals, lo, hi = plan
            if equals is not None:
                return (f"index seek on {table.name}.{column} "
                        f"(= {equals})")
            return (f"index range scan on {table.name}.{column} "
                    f"([{lo}, {hi}))")
        suffix = " with residual predicate" if where is not None else ""
        return f"clustered index scan on {table.name}{suffix}"

    @staticmethod
    def _cmp_parts(node):
        """Decompose ``col <op> const`` (either side order) into
        ``(column, op, const)``; None if the node is not that shape."""
        if not isinstance(node, _BinOp) or node.op not in (
                "=", "<", "<=", ">", ">="):
            return None
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
        if isinstance(node.left, Col) and isinstance(node.right, Const):
            return node.left.name, node.op, node.right.value
        if isinstance(node.left, Const) and isinstance(node.right, Col):
            return node.right.name, flip[node.op], node.left.value
        return None

    def _index_plan(self, table: Table, where):
        """Choose an index seek/range plan for simple predicates on an
        indexed column: ``col = c`` or ``col >= a AND col < b``."""
        single = self._cmp_parts(where)
        if single is not None:
            column, op, value = single
            if op == "=" and table.index_on(column) is not None:
                return column, value, None, None
            return None
        if isinstance(where, _BinOp) and where.op == "AND":
            left = self._cmp_parts(where.left)
            right = self._cmp_parts(where.right)
            if left and right and left[0] == right[0] and \
                    table.index_on(left[0]) is not None:
                lo = hi = None
                for _col, op, value in (left, right):
                    if op == ">=":
                        lo = value
                    elif op == "<":
                        hi = value
                    else:
                        return None
                if lo is not None and hi is not None:
                    return left[0], None, lo, hi
        return None

    @staticmethod
    def _seek_key(table: Table, where) -> int | None:
        """Extract the key of a ``pk = const`` predicate, if that is
        the whole WHERE clause."""
        if not isinstance(where, _BinOp) or where.op != "=":
            return None
        pk = table.columns[0].name
        sides = (where.left, where.right)
        for col, const in (sides, sides[::-1]):
            if isinstance(col, Col) and col.name == pk and \
                    isinstance(const, Const) and \
                    isinstance(const.value, (int, float)):
                return int(const.value)
        return None

    # -- resolution helpers ---------------------------------------------------

    def _resolve_table(self, name: str) -> Table:
        for table_name, table in self.db.tables.items():
            if table_name.lower() == name.lower():
                return table
        raise SqlSyntaxError(f"unknown table {name!r}")

    def _resolve_function(self, schema: str, func: str
                          ) -> tuple[Callable, object, bool]:
        qualified = f"{schema}.{func}".lower()
        if qualified in self._functions:
            return self._functions[qualified]
        for ns_name, ns in NAMESPACES.items():
            if ns_name.lower() == schema.lower():
                method = getattr(ns, func, None)
                if method is None:
                    for attr in dir(ns):
                        if attr.lower() == func.lower():
                            method = getattr(ns, attr)
                            break
                if method is None:
                    raise SqlSyntaxError(
                        f"schema {ns_name} has no function {func!r}")
                return method, "item", True
        raise SqlSyntaxError(f"unknown function {schema}.{func}")


class _Parser:
    """Recursive-descent parser producing executor plans."""

    def __init__(self, session: SqlSession, tokens):
        self.session = session
        self.tokens = tokens
        self.i = 0
        self.table: Table | None = None

    def _peek(self):
        return self.tokens[self.i]

    def _next(self):
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def _expect(self, kind, value=None):
        tok = self._next()
        if tok[0] != kind or (value is not None and tok[1] != value):
            raise SqlSyntaxError(
                f"expected {value or kind}, got {tok[1]!r}")
        return tok

    def parse(self):
        self._expect("kw", "SELECT")
        # The FROM table must be known before expressions referencing
        # columns are built; scan ahead for it first.
        depth = 0
        j = self.i
        while self.tokens[j][0] != "eof":
            kind, value = self.tokens[j]
            if kind == "op" and value == "(":
                depth += 1
            elif kind == "op" and value == ")":
                depth -= 1
            elif kind == "kw" and value == "FROM" and depth == 0:
                break
            j += 1
        if self.tokens[j][0] == "eof":
            raise SqlSyntaxError("missing FROM clause")
        table_tok = self.tokens[j + 1]
        if table_tok[0] != "name":
            raise SqlSyntaxError("expected a table name after FROM")
        self.table = self.session._resolve_table(table_tok[1])

        items = [self._select_item()]
        while self._peek() == ("op", ","):
            self._next()
            items.append(self._select_item())
        self._expect("kw", "FROM")
        self._next()  # table name, already resolved
        if self._peek() == ("kw", "WITH"):
            self._next()
            self._expect("op", "(")
            self._expect("kw", "NOLOCK")
            self._expect("op", ")")
        where = None
        if self._peek() == ("kw", "WHERE"):
            self._next()
            where = self._predicate()
        group = None
        if self._peek() == ("kw", "GROUP"):
            self._next()
            self._expect("kw", "BY")
            start = self.i
            expr = self._expr()
            group = (expr, self._span_text(start, self.i))
        if self._peek()[0] != "eof":
            raise SqlSyntaxError(
                f"unexpected trailing input {self._peek()[1]!r}")
        return self.table, items, where, group

    def _span_text(self, start: int, stop: int) -> str:
        """Normalized text of a token span (for GROUP BY matching)."""
        return " ".join(t[1] for t in self.tokens[start:stop])

    def _select_item(self):
        """One select-list item: an aggregate or a plain expression
        (the latter only legal with GROUP BY)."""
        tok = self._peek()
        if tok[0] == "kw" and tok[1] in ("COUNT", "SUM", "AVG", "MIN",
                                         "MAX"):
            return ("agg", self._aggregate())
        start = self.i
        expr = self._expr()
        return ("expr", expr, self._span_text(start, self.i))

    # -- aggregates -----------------------------------------------------------

    def _aggregate(self):
        tok = self._next()
        if tok[0] != "kw" or tok[1] not in ("COUNT", "SUM", "AVG",
                                            "MIN", "MAX"):
            raise SqlSyntaxError(
                f"expected an aggregate function, got {tok[1]!r}")
        self._expect("op", "(")
        if tok[1] == "COUNT":
            self._expect("op", "*")
            self._expect("op", ")")
            return Count()
        expr = self._expr()
        self._expect("op", ")")
        return {"SUM": Sum, "AVG": Avg, "MIN": Min, "MAX": Max}[tok[1]](
            expr)

    # -- expressions -------------------------------------------------------------

    def _expr(self) -> Expression:
        node = self._term()
        while self._peek() in (("op", "+"), ("op", "-")):
            op = self._next()[1]
            node = _BinOp(op, node, self._term())
        return node

    def _term(self) -> Expression:
        node = self._factor()
        while self._peek() in (("op", "*"), ("op", "/")):
            op = self._next()[1]
            node = _BinOp(op, node, self._factor())
        return node

    def _factor(self) -> Expression:
        kind, value = self._next()
        if kind == "number":
            return Const(float(value) if "." in value or "e" in
                         value.lower() else int(value))
        if kind == "string":
            return Const(value[1:-1])
        if kind == "kw" and value == "NULL":
            return Const(None)
        if kind == "op" and value == "-":
            return _BinOp("-", Const(0), self._factor())
        if kind == "op" and value == "(":
            node = self._expr()
            self._expect("op", ")")
            return node
        if kind == "name":
            if self._peek() == ("op", "."):
                self._next()
                func_tok = self._next()
                # Function names may collide with SQL keywords
                # (FloatArray.Sum, .Min, .Max, .Count ...).
                if func_tok[0] not in ("name", "kw"):
                    raise SqlSyntaxError("expected a function name "
                                         "after '.'")
                func_name = func_tok[1]
                if func_tok[0] == "kw":
                    func_name = func_name.capitalize()
                return self._call(value, func_name)
            return self._column(value)
        raise SqlSyntaxError(f"unexpected token {value!r}")

    def _column(self, name: str) -> Expression:
        table = self.table
        try:
            index = table.column_index(name)
        except Exception:
            # Case-insensitive fallback, like T-SQL.
            matches = [c.name for c in table.columns
                       if c.name.lower() == name.lower()]
            if not matches:
                raise SqlSyntaxError(
                    f"table {table.name} has no column {name!r}")
            name = matches[0]
            index = table.column_index(name)
        col = Col(name)
        if table.columns[index].type == "varbinary_max":
            return ReadBlob(col)
        return col

    def _call(self, schema: str, func: str) -> Expression:
        self._expect("op", "(")
        args = []
        if self._peek() != ("op", ")"):
            args.append(self._expr())
            while self._peek() == ("op", ","):
                self._next()
                args.append(self._expr())
        self._expect("op", ")")
        callable_, body_cost, parallel_safe = \
            self.session._resolve_function(schema, func)
        return ScalarUdf(callable_, *args, body_cost=body_cost,
                         name=f"{schema}.{func}",
                         parallel_safe=parallel_safe)

    # -- predicates ---------------------------------------------------------------

    def _predicate(self) -> Expression:
        node = self._conjunction()
        while self._peek() == ("kw", "OR"):
            self._next()
            node = _BinOp("OR", node, self._conjunction())
        return node

    def _conjunction(self) -> Expression:
        node = self._pred_unit()
        while self._peek() == ("kw", "AND"):
            self._next()
            node = _BinOp("AND", node, self._pred_unit())
        return node

    def _pred_unit(self) -> Expression:
        if self._peek() == ("kw", "NOT"):
            self._next()
            return _Not(self._pred_unit())
        # '(' could open a nested predicate or a scalar expression; try
        # the predicate reading first and backtrack if it fails or the
        # parenthesized unit turns out to be an operand.
        if self._peek() == ("op", "("):
            save = self.i
            try:
                self._next()
                node = self._predicate()
                self._expect("op", ")")
                follow = self._peek()
                if not (follow[0] == "op"
                        and follow[1] in ("+", "-", "*", "/", "=", "<>",
                                          "!=", "<", "<=", ">", ">=")):
                    return node
            except SqlSyntaxError:
                pass
            self.i = save
        left = self._expr()
        if self._peek() == ("kw", "IS"):
            self._next()
            negate = False
            if self._peek() == ("kw", "NOT"):
                self._next()
                negate = True
            self._expect("kw", "NULL")
            return _IsNull(left, negate)
        kind, value = self._peek()
        if kind == "op" and value in ("=", "<>", "!=", "<", "<=", ">",
                                      ">="):
            self._next()
            right = self._expr()
            return _BinOp(value, left, right)
        return left


class _Ddl:
    """Parser/executor for CREATE TABLE and INSERT statements."""

    _TYPES = {"BIGINT": "bigint", "INT": "int", "SMALLINT": "smallint",
              "TINYINT": "tinyint", "FLOAT": "float", "REAL": "real"}

    def __init__(self, session: SqlSession, tokens):
        self.session = session
        self.tokens = tokens
        self.i = 0

    def _peek(self):
        return self.tokens[self.i]

    def _next(self):
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def _expect(self, kind, value=None):
        tok = self._next()
        if tok[0] != kind or (value is not None and tok[1] != value):
            raise SqlSyntaxError(
                f"expected {value or kind}, got {tok[1]!r}")
        return tok

    def create_table(self) -> Table:
        """``CREATE TABLE name (col TYPE [PRIMARY KEY], ...)``.

        Supported types: BIGINT, INT, SMALLINT, TINYINT, FLOAT, REAL,
        VARBINARY(n), VARBINARY(MAX).  The first column is the
        clustered primary key (a trailing PRIMARY KEY marker on it is
        accepted and ignored, any other placement is an error).
        """
        from .table import Column

        self._expect("kw", "CREATE")
        self._expect("kw", "TABLE")
        name_tok = self._next()
        if name_tok[0] != "name":
            raise SqlSyntaxError("expected a table name")
        self._expect("op", "(")
        columns = []
        while True:
            col_tok = self._next()
            if col_tok[0] != "name":
                raise SqlSyntaxError("expected a column name")
            columns.append(self._column_def(col_tok[1],
                                            first=not columns))
            tok = self._next()
            if tok == ("op", ")"):
                break
            if tok != ("op", ","):
                raise SqlSyntaxError(
                    f"expected ',' or ')', got {tok[1]!r}")
        if self._peek()[0] != "eof":
            raise SqlSyntaxError(
                f"unexpected trailing input {self._peek()[1]!r}")
        return self.session.db.create_table(name_tok[1], columns)

    def _column_def(self, col_name: str, first: bool):
        from .table import Column

        type_tok = self._next()
        type_name = type_tok[1].upper()
        if type_name in self._TYPES:
            column = Column(col_name, self._TYPES[type_name])
        elif type_name == "VARBINARY":
            self._expect("op", "(")
            size_tok = self._next()
            if size_tok[0] == "number":
                column = Column(col_name, "varbinary",
                                cap=int(size_tok[1]))
            elif size_tok[1].upper() == "MAX":
                column = Column(col_name, "varbinary_max")
            else:
                raise SqlSyntaxError(
                    "VARBINARY needs a size or MAX")
            self._expect("op", ")")
        else:
            raise SqlSyntaxError(f"unknown column type {type_tok[1]!r}")
        if self._peek() == ("kw", "PRIMARY"):
            self._next()
            self._expect("kw", "KEY")
            if not first:
                raise SqlSyntaxError(
                    "only the first column can be the primary key")
        return column

    def drop_table(self) -> None:
        """``DROP TABLE name`` — unregister the table from the catalog
        (the caller holds the exclusive catalog latch)."""
        self._expect("kw", "DROP")
        self._expect("kw", "TABLE")
        name_tok = self._next()
        if name_tok[0] != "name":
            raise SqlSyntaxError("expected a table name")
        if self._peek()[0] != "eof":
            raise SqlSyntaxError(
                f"unexpected trailing input {self._peek()[1]!r}")
        try:
            self.session.db.drop_table(name_tok[1])
        except ValueError as exc:
            raise SqlSyntaxError(str(exc)) from exc

    def parse_insert(self) -> tuple[Table, list[tuple]]:
        """Parse ``INSERT INTO name VALUES (v, ...), ...`` into
        ``(table, rows)`` without touching storage.

        Values are literals, NULL, or schema-qualified function calls
        over literals (``FloatArray.Vector_3(1, 2, 3)``), evaluated
        here — the returned rows are plain tuples ready for
        :meth:`~repro.engine.table.Table.insert_many` (or for shipping
        to the shard that owns them).
        """
        self._expect("kw", "INSERT")
        self._expect("kw", "INTO")
        name_tok = self._next()
        if name_tok[0] != "name":
            raise SqlSyntaxError("expected a table name")
        table = self.session._resolve_table(name_tok[1])
        self._expect("kw", "VALUES")
        rows = []
        while True:
            self._expect("op", "(")
            values = [self._value()]
            while self._peek() == ("op", ","):
                self._next()
                values.append(self._value())
            self._expect("op", ")")
            rows.append(tuple(values))
            if self._peek() == ("op", ","):
                self._next()
                continue
            break
        if self._peek()[0] != "eof":
            raise SqlSyntaxError(
                f"unexpected trailing input {self._peek()[1]!r}")
        return table, rows

    def insert(self) -> int:
        """``INSERT INTO name VALUES ...``; returns rows inserted.

        The whole statement is parsed first and inserted as one batch,
        so an ascending load into an empty table takes the bulk-load
        path.
        """
        table, rows = self.parse_insert()
        return table.insert_many(rows)

    def _value(self):
        kind, text = self._next()
        if kind == "number":
            return float(text) if "." in text or "e" in text.lower() \
                else int(text)
        if kind == "string":
            return text[1:-1].encode()
        if kind == "kw" and text == "NULL":
            return None
        if kind == "op" and text == "-":
            inner = self._value()
            return -inner
        if kind == "name" and self._peek() == ("op", "."):
            self._next()
            func_tok = self._next()
            func_name = (func_tok[1].capitalize()
                         if func_tok[0] == "kw" else func_tok[1])
            self._expect("op", "(")
            args = []
            if self._peek() != ("op", ")"):
                args.append(self._value())
                while self._peek() == ("op", ","):
                    self._next()
                    args.append(self._value())
            self._expect("op", ")")
            callable_, _cost, _psafe = self.session._resolve_function(
                text, func_name)
            return callable_(*args)
        raise SqlSyntaxError(f"unexpected value token {text!r}")
