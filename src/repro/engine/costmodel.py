"""Calibrated IO/CPU cost model for the storage engine simulator.

The paper's evaluation hardware (Section 6.1): two quad-core Xeons at
2.67 GHz (8 cores) and an IO subsystem delivering "above 1 GB/s
sequential read throughput for IO limited scan operations"; Table 1
shows IO-limited scans running at 1150 MB/s.

The model charges simulated time for every page read and every unit of
per-row CPU work the executor performs, then combines them as

    exec_time = max(io_time, cpu_core_seconds / cores)

because a clustered index scan overlaps read-ahead IO with compute: the
query is IO-bound until the per-row CPU work exceeds the IO rate, which
is precisely the transition Table 1 demonstrates (Query 3 vs Query 4).

Calibration: the sequential read rate and the COUNT(*) per-row cost are
set so Query 1 reproduces the paper's row (18 s, 45 %, 1150 MB/s at
357 M rows).  Every other Table 1 row — Query 2's 25 s, Query 4's
CPU-bound 133 s at ~215 MB/s, Query 5's 109 s — is then *predicted* by
the model, not fit; the UDF call cost is the paper's own measured
~2 µs/call (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .bufferpool import IoCounters

__all__ = ["CostModel", "PAPER_HARDWARE"]


@dataclass(frozen=True)
class CostModel:
    """Time constants of the simulated server.

    All CPU constants are seconds of *one core's* work; IO constants are
    device rates.  See the module docstring for how Table 1 calibrates
    them.
    """

    #: Parallel workers available to a scan (the paper's 8 cores).
    cores: int = 8

    #: Sequential read throughput, bytes/second.
    seq_read_bytes_per_sec: float = 1.15e9

    #: Random 8 kB reads per second (B-tree hops, out-of-page chunks
    #: fetched out of order).
    random_reads_per_sec: float = 20000.0

    #: Per-row cost of advancing a clustered index scan.
    cpu_row_base: float = 70e-9

    #: Per-byte cost of moving a record through the scan.
    cpu_per_record_byte: float = 0.6e-9

    #: Per-row cost of a COUNT(*) aggregate step.
    cpu_count_step: float = 80e-9

    #: Per-row cost of a SUM aggregate step.
    cpu_sum_step: float = 220e-9

    #: Cost of decoding one referenced fixed-width column.
    cpu_decode_fixed: float = 45e-9

    #: Cost of decoding one referenced variable-width (blob) column.
    cpu_decode_varbinary: float = 120e-9

    #: Flat cost of one CLR UDF invocation — the paper measured "a cost
    #: of about 2 microseconds per CLR function call".
    cpu_udf_call: float = 2000e-9

    #: Managed-code body cost of extracting one item from a short array
    #: (tuned so Query 4 lands ~22 % above Query 5, per Section 7.1).
    cpu_udf_body_item: float = 600e-9

    #: Managed-code body cost of an empty UDF.
    cpu_udf_body_empty: float = 30e-9

    #: Cost of one trip through the .NET binary stream wrapper
    #: (out-of-page blob access, per read call).
    cpu_stream_call: float = 1000e-9

    #: Per-byte cost of copying blob bytes through the stream wrapper.
    cpu_stream_byte: float = 0.8e-9

    def io_seconds(self, counters: IoCounters) -> float:
        """IO busy time for a set of page-read counters."""
        seq, rand = self.io_seconds_split(counters)
        return seq + rand

    def io_seconds_split(self, counters: IoCounters
                         ) -> tuple[float, float]:
        """IO busy time split into (streaming, seek) components."""
        from .constants import PAGE_SIZE
        seq_bytes = counters.sequential_reads * PAGE_SIZE
        return (seq_bytes / self.seq_read_bytes_per_sec,
                counters.random_reads / self.random_reads_per_sec)

    def exec_seconds(self, io_seconds: float,
                     cpu_core_seconds: float) -> float:
        """Wall-clock execution time: IO overlapped with parallel CPU."""
        return max(io_seconds, cpu_core_seconds / self.cores)

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with some constants replaced (for ablation benches)."""
        return replace(self, **kwargs)


#: The model calibrated to the paper's Dell PowerVault 2950 testbed.
PAPER_HARDWARE = CostModel()
