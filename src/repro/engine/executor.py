"""Query executor: clustered scans with aggregates and scalar UDFs.

This is the slice of a SQL executor the paper's evaluation exercises:
``SELECT <aggregate>(<expression>) FROM <table>`` over a clustered index
scan, where the expression may call a scalar UDF — the shape of all five
Table 1 queries.  Real work happens (the UDFs genuinely run and results
are exact); simulated time is charged through the
:class:`~repro.engine.costmodel.CostModel`, producing the execution
time / CPU % / IO MB/s triple per query.

Example::

    db = Database()
    t = db.create_table("Tscalar", [Column("id", "bigint"),
                                    Column("v1", "float")])
    ...
    ex = Executor(db)
    (count,), metrics = ex.run(t, [Count()], label="Query 1")
    (total,), metrics = ex.run(t, [Sum(Col("v1"))], label="Query 3")
"""

from __future__ import annotations

import operator
import os
import pickle
import threading
import time
from contextlib import contextmanager
from typing import Callable, Sequence

import numpy as np

from . import vectorized
from .blob import BlobStore
from .bufferpool import BufferPool
from .costmodel import PAPER_HARDWARE, CostModel
from .latches import MVCC_MODES, LatchManager, mvcc_from_env
from .locks import RWLock
from .metrics import QueryMetrics
from .page import PageFile
from .table import Column, MaxBlobHandle, Table

__all__ = [
    "Database",
    "Executor",
    "Expression",
    "Col",
    "Const",
    "ScalarUdf",
    "ReadBlob",
    "Aggregate",
    "Count",
    "Sum",
    "Avg",
    "Min",
    "Max",
]


class Database:
    """A page file, blob store, buffer pool and table catalog.

    One database may be shared by many sessions (the
    :mod:`repro.server` worker pool multiplexes per-connection
    :class:`~repro.engine.sqlfront.SqlSession` objects over a single
    instance).  :attr:`latches` is the statement-granularity latch
    hierarchy those sessions take — a shared catalog latch plus
    per-table reader/writer latches, so a writer on one table overlaps
    readers on another (see :mod:`repro.engine.latches` and
    ``docs/LOCKING.md``).  :attr:`lock` is the legacy coarse RWLock the
    latches collapse onto under ``latch_mode="coarse"`` /
    ``REPRO_LATCH=coarse``.  :meth:`create_table` itself guards the
    catalog dict so two concurrent CREATEs cannot race.

    Args:
        buffer_pages: Buffer pool capacity (``None`` = unbounded).
        latch_mode: ``"table"`` (per-table latches, the default) or
            ``"coarse"`` (one statement-granularity RWLock); ``None``
            reads ``REPRO_LATCH``.
        mvcc_mode: ``"on"`` (copy-on-write page versions: readers pin
            frozen snapshots and scan them latch-free, the default) or
            ``"off"`` (latch-per-scan, bit-for-bit the pre-MVCC
            behaviour); ``None`` reads ``REPRO_MVCC``.
    """

    #: True on databases opened as read-only snapshots (parallel
    #: workers re-open the coordinator's snapshot this way).
    read_only = False

    def __init__(self, buffer_pages: int | None = None,
                 latch_mode: str | None = None,
                 mvcc_mode: str | None = None):
        if mvcc_mode is None:
            mvcc_mode = mvcc_from_env()
        if mvcc_mode not in MVCC_MODES:
            raise ValueError(
                f"mvcc mode must be one of {MVCC_MODES}, "
                f"got {mvcc_mode!r}")
        self.mvcc = mvcc_mode == "on"
        self.pagefile = PageFile()
        self.blob_store = BlobStore(self.pagefile)
        self.pool = BufferPool(self.pagefile, buffer_pages)
        self.tables: dict[str, Table] = {}
        self.lock = RWLock()
        self.latches = LatchManager(self.lock, self._table_names,
                                    latch_mode)
        self._catalog_lock = threading.Lock()
        # Keeps write_version monotonic across DROP TABLE: a dropped
        # table's contribution (its catalog slot + mutations) would
        # otherwise vanish and the counter could move backwards.
        self._dropped_version_carry = 0

    def _table_names(self) -> list[str]:
        """Current table names — the all-tables latch set."""
        return list(self.tables)

    def __getstate__(self):
        state = self.__dict__.copy()
        # Locks, latches and the parallel worker pool are process-local.
        state["lock"] = None
        state["latches"] = None
        state["_catalog_lock"] = None
        state.pop("_worker_pool", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.lock = RWLock()
        self.latches = LatchManager(self.lock, self._table_names)
        self._catalog_lock = threading.Lock()
        for table in self.tables.values():
            table._pool_ref = self.pool

    @property
    def write_version(self) -> int:
        """Monotonic write counter: bumps on every DDL/DML operation.

        The parallel engine compares this against the version its
        worker snapshot was taken at, and re-snapshots when stale.
        """
        return len(self.tables) + sum(
            t.mutations for t in self.tables.values()) + \
            self._dropped_version_carry

    def snapshot_bytes(self) -> bytes:
        """The pickled snapshot payload :meth:`save` writes — exposed
        separately so the parallel engine can ship it through shared
        memory without a file round-trip."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    def save(self, path: str) -> None:
        """Snapshot the whole database (pages, blobs, catalog) to a
        file.  The snapshot is a pickle of this object minus its
        process-local state (locks, worker pools, cached pages travel
        but thread-local IO counters do not)."""
        with open(path, "wb") as f:
            f.write(self.snapshot_bytes())

    @classmethod
    def from_snapshot_bytes(cls, payload,
                            read_only: bool = False) -> "Database":
        """Rebuild a database from :meth:`snapshot_bytes` output
        (accepts any buffer, including a shared-memory view)."""
        db = pickle.loads(payload)
        if not isinstance(db, Database):
            raise TypeError("payload is not a Database snapshot")
        if read_only:
            db.read_only = True
            for table in db.tables.values():
                table._read_only = True
        return db

    @classmethod
    def open(cls, path: str, read_only: bool = False) -> "Database":
        """Re-open a database snapshot written by :meth:`save`.

        With ``read_only=True`` every mutator (``create_table`` and
        the table insert/update/delete paths) refuses to run — the
        mode parallel workers use, so a worker bug can never fork the
        snapshot's contents away from the coordinator's."""
        with open(path, "rb") as f:
            payload = f.read()
        return cls.from_snapshot_bytes(payload, read_only=read_only)

    def create_table(self, name: str, columns: Sequence[Column]) -> Table:
        """Create and register a clustered table."""
        if self.read_only:
            raise PermissionError(
                "cannot create tables in a read-only database snapshot")
        with self._catalog_lock:
            if name in self.tables:
                raise ValueError(f"table {name!r} already exists")
            table = Table(name, columns, self.pagefile, self.blob_store,
                          mvcc=self.mvcc)
            table._pool_ref = self.pool
            self.tables[name] = table
            return table

    def drop_table(self, name: str) -> None:
        """Unregister a table (the DROP TABLE primitive).

        Removes the catalog entry (case-insensitive, like SQL name
        resolution) and its latch.  The table's pages stay allocated
        in the page file until the process exits — there is no extent
        reclamation, which trades a little memory for never having to
        prove that no pinned snapshot still walks them.  Callers going
        through SQL hold the exclusive catalog latch
        (:meth:`LatchManager.ddl_latch`), so no statement can be
        scanning the table when it vanishes.
        """
        if self.read_only:
            raise PermissionError(
                "cannot drop tables in a read-only database snapshot")
        with self._catalog_lock:
            for key, table in self.tables.items():
                if key.lower() == name.lower():
                    del self.tables[key]
                    self._dropped_version_carry += table.mutations + 2
                    break
            else:
                raise ValueError(f"no such table {name!r}")
        self.latches.forget(name)

    def report(self) -> str:
        """Human-readable catalog report: per-table rows, pages, sizes
        and fill factors, plus file and buffer-pool totals."""
        lines = [f"{'table':<20} {'rows':>10} {'pages':>8} "
                 f"{'MB':>8} {'fill':>6} {'height':>7}  indexes"]
        for name in sorted(self.tables):
            s = self.tables[name].page_fill_stats()
            lines.append(
                f"{name:<20} {s['rows']:>10} {s['leaf_pages']:>8} "
                f"{s['data_bytes'] / 1e6:>8.2f} {s['avg_fill']:>6.0%} "
                f"{s['height']:>7}  {', '.join(s['indexes']) or '-'}")
        lines.append(
            f"file: {self.pagefile.allocated_page_count} pages used / "
            f"{self.pagefile.page_count} reserved "
            f"({self.pagefile.total_bytes / 1e6:.2f} MB); "
            f"buffer pool: {self.pool.cached_pages} cached pages")
        return "\n".join(lines)


class _RowContext:
    """Evaluation context handed to expressions for one row."""

    __slots__ = ("table", "row", "pool", "udf_calls", "stream_calls",
                 "stream_bytes", "extra_cpu")

    def __init__(self, table: Table, pool: BufferPool):
        self.table = table
        self.pool = pool
        self.row: tuple = ()
        self.udf_calls = 0
        self.stream_calls = 0
        self.stream_bytes = 0
        self.extra_cpu = 0.0


class Expression:
    """Base class for scalar expressions evaluated per row."""

    def columns(self) -> set[str]:
        """Names of table columns this expression reads."""
        return set()

    def static_cpu_cost(self, table: Table, model: CostModel) -> float:
        """Per-row CPU cost that does not depend on the row's values."""
        return 0.0

    def eval(self, ctx: _RowContext):
        raise NotImplementedError


class Col(Expression):
    """Reference to a table column by name."""

    def __init__(self, name: str):
        self.name = name

    def columns(self) -> set[str]:
        return {self.name}

    def static_cpu_cost(self, table: Table, model: CostModel) -> float:
        col = table.columns[table.column_index(self.name)]
        if col.type in ("varbinary", "varbinary_max"):
            return model.cpu_decode_varbinary
        return model.cpu_decode_fixed

    def eval(self, ctx: _RowContext):
        return ctx.row[ctx.table.column_index(self.name)]

    def eval_batch(self, ctx: "vectorized.BatchContext"):
        return ctx.batch.column(self.name)


class Const(Expression):
    """A literal value."""

    def __init__(self, value):
        self.value = value

    def eval(self, ctx: _RowContext):
        return self.value

    def eval_batch(self, ctx: "vectorized.BatchContext"):
        # Scalars broadcast; a None scalar means NULL in every lane.
        return self.value, None


class ReadBlob(Expression):
    """Materialize a ``varbinary_max`` column value.

    In-row values pass through unchanged; out-of-page values are read in
    full through the blob stream wrapper, charging the stream-call and
    per-byte costs plus the (random) page reads the chunks require.
    """

    def __init__(self, inner: Expression):
        self.inner = inner

    def columns(self) -> set[str]:
        return self.inner.columns()

    def static_cpu_cost(self, table: Table, model: CostModel) -> float:
        return self.inner.static_cpu_cost(table, model)

    def eval(self, ctx: _RowContext):
        value = self.inner.eval(ctx)
        if isinstance(value, MaxBlobHandle):
            stream = value.open_stream(ctx.pool)
            data = stream.read_at(0, value.length)
            ctx.stream_calls += stream.stream_calls
            ctx.stream_bytes += stream.bytes_read
            return data
        return value

    def eval_batch(self, ctx: "vectorized.BatchContext"):
        values, mask = vectorized.eval_node(self.inner, ctx)
        n = ctx.batch.n
        if isinstance(values, np.ndarray):
            if values.dtype != object or not any(
                    isinstance(v, MaxBlobHandle) for v in values):
                return values, mask
            # Copy before materializing: the original array may be the
            # batch's cached column, which must keep its handles.
            out = values.copy()
        else:
            if not isinstance(values, MaxBlobHandle):
                return values, mask
            out = np.empty(n, dtype=object)
            out.fill(values)
        for i in range(n):
            value = out[i]
            if isinstance(value, MaxBlobHandle):
                stream = value.open_stream(ctx.pool)
                out[i] = stream.read_at(0, value.length)
                ctx.stream_calls += stream.stream_calls
                ctx.stream_bytes += stream.bytes_read
        return out, mask


class ScalarUdf(Expression):
    """A scalar user-defined function call.

    Every call is charged the flat CLR invocation cost plus a managed
    body cost: pass ``body_cost="item"`` for an array-item extraction
    body, ``body_cost="empty"`` for an empty function (the paper's
    ``dbo.EmptyFunction``), or a float for a custom cost in seconds.

    Args:
        func: The Python callable that does the real work.
        args: Argument expressions.
        body_cost: See above.
        name: Label used in messages.
        vectorized: Optional batch kernel: ``kernel(args)`` receives a
            list of length-n NumPy arrays (one per argument, scalars
            broadcast) and returns a length-n array of results — or
            ``None`` to decline the batch, in which case the engine
            falls back to calling ``func`` once per row.  Kernels only
            see batches with no NULL argument lanes.  When omitted, a
            ``vectorized`` attribute on ``func`` itself is picked up,
            which is how the ``repro.tsql`` numbered variants publish
            their kernels.  Simulated cost is charged identically
            either way (one UDF call per row).
    """

    _BODY_KEYS = ("item", "empty")

    def __init__(self, func: Callable, *args: Expression,
                 body_cost="item", name: str | None = None,
                 vectorized: Callable | None = None,
                 parallel_safe: bool = True):
        self.func = func
        self.args = args
        self.body_cost = body_cost
        self.name = name or getattr(func, "__name__", "udf")
        self.vectorized = (vectorized if vectorized is not None
                           else getattr(func, "vectorized", None))
        # Recorded on the plan node (not stamped onto the user's
        # callable) so the parallel engine can refuse to ship it; see
        # SqlSession.register_function(parallel_safe=...).
        self.parallel_safe = parallel_safe

    def __getstate__(self):
        """Batch kernels are closures over decode machinery and do not
        pickle; drop the kernel and let the receiving process re-derive
        it from its own copy of ``func`` (the ``repro.tsql`` functions
        re-attach kernels at import time)."""
        state = self.__dict__.copy()
        state["vectorized"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.vectorized is None:
            self.vectorized = getattr(self.func, "vectorized", None)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.columns()
        return out

    def _body_seconds(self, model: CostModel) -> float:
        if self.body_cost == "item":
            return model.cpu_udf_body_item
        if self.body_cost == "empty":
            return model.cpu_udf_body_empty
        return float(self.body_cost)

    def static_cpu_cost(self, table: Table, model: CostModel) -> float:
        cost = model.cpu_udf_call + self._body_seconds(model)
        for a in self.args:
            cost += a.static_cpu_cost(table, model)
        return cost

    def eval(self, ctx: _RowContext):
        ctx.udf_calls += 1
        return self.func(*[a.eval(ctx) for a in self.args])

    def eval_batch(self, ctx: "vectorized.BatchContext"):
        n = ctx.batch.n
        args = [vectorized.eval_node(a, ctx) for a in self.args]
        # Metric parity: the row engine charges one call per row
        # whether or not a batch kernel ends up doing the work.
        ctx.udf_calls += n
        kernel = self.vectorized
        if kernel is not None and n:
            no_nulls = not any(
                vectorized.null_lanes(v, m, n).any() for v, m in args)
            if no_nulls:
                out = kernel([vectorized.as_full_array(v, n)
                              for v, _m in args])
                if out is not None:
                    return out, None
        lists = [vectorized.to_pylist(v, m, n) for v, m in args]
        func = self.func
        out = np.empty(n, dtype=object)
        for i in range(n):
            out[i] = func(*[col[i] for col in lists])
        return out, vectorized.mask_from_object(out)


class Aggregate:
    """Base class for aggregate functions.

    Subclasses implement the row-at-a-time protocol (:meth:`start`,
    :meth:`step`, :meth:`finish`).  The built-ins additionally provide
    :meth:`step_value` (advance on one already-evaluated value),
    :meth:`step_values` (advance over a list of already-evaluated
    values in row order — the vectorized grouped path's per-group
    form), and :meth:`step_batch` (advance over the whole current
    batch).  Custom aggregates may omit all three — the vector engine
    then steps them per row over materialized tuples.

    The built-ins also implement the *mergeable-state* protocol the
    parallel engine requires: :meth:`partial_start` /
    :meth:`partial_step_values` accumulate a morsel-local partial
    state on a worker, and :meth:`merge` folds a shipped partial into
    the coordinator's running state.  Partials deliberately stay
    *unreduced* (ordered value lists, not folded scalars) so the
    coordinator can replay the exact left-fold the serial engines use
    — merging in morsel order then yields bit-identical float SUM/AVG
    (and NaN-faithful MIN/MAX) no matter how many workers ran.
    Custom aggregates without :meth:`merge` make a query fall back to
    the serial vector engine rather than risk a different answer.
    """

    expr: Expression | None = None

    def step_cost(self, model: CostModel) -> float:
        raise NotImplementedError

    def start(self):
        raise NotImplementedError

    def step(self, state, ctx: _RowContext):
        raise NotImplementedError

    def finish(self, state, rows: int):
        return state


class Count(Aggregate):
    """``COUNT(*)``."""

    expr = None

    def step_cost(self, model: CostModel) -> float:
        return model.cpu_count_step

    def start(self):
        return 0

    def step(self, state, ctx):
        return state + 1

    def step_value(self, state, value):
        return state + 1

    def step_values(self, state, values):
        return state + len(values)

    def step_batch(self, state, ctx: "vectorized.BatchContext"):
        return state + ctx.batch.n

    def partial_start(self):
        return 0

    def partial_step_values(self, partial, values):
        return partial + len(values)

    def merge(self, state, partial):
        return state + partial


class Sum(Aggregate):
    """``SUM(expr)`` (SQL semantics: NULL inputs are skipped)."""

    def __init__(self, expr: Expression):
        self.expr = expr

    def step_cost(self, model: CostModel) -> float:
        return model.cpu_sum_step

    def start(self):
        return None

    def step(self, state, ctx):
        value = self.expr.eval(ctx)
        if value is None:
            return state
        return value if state is None else state + value

    def step_value(self, state, value):
        if value is None:
            return state
        return value if state is None else state + value

    def step_values(self, state, values):
        return vectorized.fold(
            operator.add, state, (v for v in values if v is not None))

    def step_batch(self, state, ctx: "vectorized.BatchContext"):
        values, mask = vectorized.eval_node(self.expr, ctx)
        vals = vectorized.nonnull_values(values, mask, ctx.batch.n)
        # Left fold, not np.sum: pairwise summation would round floats
        # differently than the row engine's sequential accumulation.
        return vectorized.fold(operator.add, state, vals)

    def partial_start(self):
        return []

    def partial_step_values(self, partial, values):
        partial.extend(v for v in values if v is not None)
        return partial

    def merge(self, state, partial):
        return vectorized.fold(operator.add, state, partial)


class Avg(Sum):
    """``AVG(expr)``."""

    def step_cost(self, model: CostModel) -> float:
        return model.cpu_sum_step + model.cpu_count_step

    def start(self):
        return (None, 0)

    def step(self, state, ctx):
        total, n = state
        value = self.expr.eval(ctx)
        if value is None:
            return state
        return (value if total is None else total + value), n + 1

    def step_value(self, state, value):
        if value is None:
            return state
        total, n = state
        return (value if total is None else total + value), n + 1

    def step_values(self, state, values):
        total, n = state
        vals = [v for v in values if v is not None]
        return vectorized.fold(operator.add, total, vals), n + len(vals)

    def step_batch(self, state, ctx: "vectorized.BatchContext"):
        total, n = state
        values, mask = vectorized.eval_node(self.expr, ctx)
        vals = vectorized.nonnull_values(values, mask, ctx.batch.n)
        return vectorized.fold(operator.add, total, vals), n + len(vals)

    def merge(self, state, partial):
        total, n = state
        return (vectorized.fold(operator.add, total, partial),
                n + len(partial))

    def finish(self, state, rows):
        total, n = state
        return None if n == 0 else total / n


class Min(Aggregate):
    """``MIN(expr)``."""

    def __init__(self, expr: Expression):
        self.expr = expr

    def step_cost(self, model: CostModel) -> float:
        return model.cpu_sum_step

    def start(self):
        return None

    def step(self, state, ctx):
        value = self.expr.eval(ctx)
        if value is None:
            return state
        return value if state is None else min(state, value)

    def step_value(self, state, value):
        if value is None:
            return state
        return value if state is None else min(state, value)

    def step_values(self, state, values):
        return vectorized.fold(
            min, state, (v for v in values if v is not None))

    def step_batch(self, state, ctx: "vectorized.BatchContext"):
        values, mask = vectorized.eval_node(self.expr, ctx)
        vals = vectorized.nonnull_values(values, mask, ctx.batch.n)
        return vectorized.fold(min, state, vals)

    def partial_start(self):
        return []

    def partial_step_values(self, partial, values):
        # Ship the full non-NULL value list, not a morsel-local
        # min/max: Python's min/max keep the *first* operand on
        # incomparable (NaN) pairs, which is order-dependent, so only
        # a full replay of the left fold is bit-identical.
        partial.extend(v for v in values if v is not None)
        return partial

    def merge(self, state, partial):
        return vectorized.fold(min, state, partial)


class Max(Min):
    """``MAX(expr)``."""

    def step(self, state, ctx):
        value = self.expr.eval(ctx)
        if value is None:
            return state
        return value if state is None else max(state, value)

    def step_value(self, state, value):
        if value is None:
            return state
        return value if state is None else max(state, value)

    def step_values(self, state, values):
        return vectorized.fold(
            max, state, (v for v in values if v is not None))

    def step_batch(self, state, ctx: "vectorized.BatchContext"):
        values, mask = vectorized.eval_node(self.expr, ctx)
        vals = vectorized.nonnull_values(values, mask, ctx.batch.n)
        return vectorized.fold(max, state, vals)

    def merge(self, state, partial):
        return vectorized.fold(max, state, partial)


class PartialCapture(Aggregate):
    """Adapter that runs an aggregate's *partial* protocol behind the
    ordinary scan interface, so any engine yields the unreduced
    mergeable state instead of a finished value.

    This is the shard side of distributed aggregation: wrap each
    aggregate of a plan, execute the plan unchanged (row, vector or
    parallel path), and the "values" that come back are the inner
    aggregates' partial states — ordered non-NULL value lists (or a
    running count) in scan order, exactly what :meth:`Aggregate.merge`
    consumes.  The coordinator then replays the serial left fold over
    the shipped partials in shard order, which keeps float SUM/AVG
    bit-identical to a single-node run (see ``docs/SHARDING.md``).

    The capture implements the mergeable protocol itself — partials
    concatenate in morsel order — so a shard is free to execute its
    slice on the parallel engine and still ship one ordered partial.
    """

    def __init__(self, inner: Aggregate):
        self.inner = inner
        self.expr = inner.expr

    def step_cost(self, model: CostModel) -> float:
        return self.inner.step_cost(model)

    def start(self):
        return self.inner.partial_start()

    def step(self, state, ctx):
        value = 1 if self.expr is None else self.expr.eval(ctx)
        return self.inner.partial_step_values(state, (value,))

    def step_value(self, state, value):
        return self.inner.partial_step_values(state, (value,))

    def step_values(self, state, values):
        return self.inner.partial_step_values(state, values)

    def step_batch(self, state, ctx: "vectorized.BatchContext"):
        if self.expr is None:
            # COUNT(*): only the lane count matters.
            return self.inner.partial_step_values(
                state, range(ctx.batch.n))
        values, mask = vectorized.eval_node(self.expr, ctx)
        return self.inner.partial_step_values(
            state, vectorized.to_pylist(values, mask, ctx.batch.n))

    def finish(self, state, rows):
        return state

    def partial_start(self):
        return self.inner.partial_start()

    def partial_step_values(self, partial, values):
        return self.inner.partial_step_values(partial, values)

    def merge(self, state, partial):
        # Captured partials concatenate (value lists) or add (counts);
        # either way the inner value order is preserved.
        if isinstance(state, list):
            state.extend(partial)
            return state
        return state + partial


def _env_default_engine() -> str:
    value = os.environ.get("REPRO_ENGINE", "").strip().lower()
    return value if value in ("row", "vector", "parallel") else "vector"


def _env_default_workers() -> int | None:
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    try:
        workers = int(raw)
    except ValueError:
        return None
    return workers if workers > 0 else None


class Executor:
    """Runs aggregate scans against one database under a cost model.

    Per-query IO metrics are deltas of the *calling thread's* buffer
    pool counters (:meth:`BufferPool.snapshot_thread_counters`), so
    they stay exact when several queries run concurrently on the
    server's worker pool — concurrent scans never inflate each other's
    counts.  A ``cold=True`` query still evicts shared cache pages
    mid-scan of others (its ``pool.clear()`` is real), which raises the
    *physical* reads of those scans; that IO genuinely happens and is
    charged to whoever re-fetches.
    """

    #: Execution path used when a call does not pass ``engine=``:
    #: ``"vector"`` (columnar batches, the default), ``"row"``, or
    #: ``"parallel"`` (morsel-driven multi-process).  Results, NULL
    #: handling and cold-run IO accounting are identical on all three.
    #: Overridable per process with ``REPRO_ENGINE``.
    default_engine = _env_default_engine()

    #: Worker-process count used when a parallel call does not pass
    #: ``workers=``; ``None`` means "pick from the machine" (CPU count
    #: capped at 8).  Overridable with ``REPRO_WORKERS``.
    default_workers = _env_default_workers()

    def __init__(self, db: Database, model: CostModel = PAPER_HARDWARE):
        self.db = db
        self.model = model

    def _resolve_engine(self, engine: str | None) -> str:
        engine = engine if engine is not None else self.default_engine
        if engine not in ("row", "vector", "parallel"):
            raise ValueError(
                f"engine must be 'row', 'vector' or 'parallel', "
                f"got {engine!r}")
        return engine

    def _resolve_workers(self, workers: int | None) -> int:
        workers = (workers if workers is not None
                   else self.default_workers)
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return workers

    @contextmanager
    def _read_view(self, table: Table, cold: bool, pin: bool = True):
        """Statement-scoped read view over one table.

        Under MVCC the statement reads a pinned frozen snapshot of the
        table (``pin=False`` keeps the live table — the index-seek
        path, whose secondary indexes are not versioned and run under
        the session's table latch), and a ``cold`` statement gets a
        *private* cold view of the buffer pool instead of clearing it
        for everybody — so per-query IO counters are independent under
        concurrency and a cold scan no longer makes its neighbours
        re-fetch and eat the charge.  Without MVCC this is the legacy
        behaviour: ``cold`` clears the shared pool.
        """
        pool = self.db.pool
        if not getattr(table, "mvcc", False):
            if cold:
                pool.clear()
            yield table
            return
        snap = table.pin_snapshot() if pin else None
        try:
            if cold:
                pool.begin_cold_view()
            try:
                yield snap if snap is not None else table
            finally:
                if cold:
                    pool.end_cold_view()
        finally:
            if snap is not None:
                snap.unpin(pool)

    def _parallel_metrics(self, res, label: str, decode_cost: float,
                          step_cost: float, extra_cpu: float
                          ) -> QueryMetrics:
        """Build QueryMetrics from a merged parallel-scan result.

        The IO counters were replayed in morsel order on the
        coordinator, so on a cold run they are identical to what a
        serial scan would have charged; the CPU formula is the same
        one the serial paths use.
        """
        model = self.model
        io = res.io
        cpu = (res.rows * (model.cpu_row_base + decode_cost + step_cost)
               + res.payload_bytes * model.cpu_per_record_byte
               + res.stream_calls * model.cpu_stream_call
               + res.stream_bytes * model.cpu_stream_byte
               + extra_cpu)
        io_seq, io_random = model.io_seconds_split(io)
        return QueryMetrics(
            label=label, rows=res.rows, io_bytes=io.physical_bytes,
            physical_reads=io.physical_reads,
            sequential_reads=io.sequential_reads,
            random_reads=io.random_reads,
            stream_calls=res.stream_calls, udf_calls=res.udf_calls,
            sim_io_seconds=io_seq + io_random,
            sim_io_seq_seconds=io_seq,
            sim_io_random_seconds=io_random,
            sim_cpu_core_seconds=cpu,
            sim_exec_seconds=model.exec_seconds(io_seq + io_random, cpu),
            cores=model.cores, wall_seconds=res.wall,
            engine="parallel", workers=res.workers)

    def run_grouped(self, table: Table, group_expr: "Expression",
                    aggregates: Sequence[Aggregate],
                    where: "Expression | None" = None, cold: bool = True,
                    label: str = "", engine: str | None = None,
                    workers: int | None = None
                    ) -> tuple[list[tuple], QueryMetrics]:
        """Execute ``SELECT group, aggs FROM table GROUP BY group``.

        One hash-aggregation pass over the clustered scan; rows are
        returned sorted by group key.  This is the paper's
        composite-spectra query shape ("group spectra by certain
        parameters ... with a simple SQL query", Section 2.2).

        Returns:
            ``(rows, metrics)`` where each row is
            ``(group_value, agg1, agg2, ...)``.
        """
        engine = self._resolve_engine(engine)
        model = self.model
        pool = self.db.pool

        decode_cost = group_expr.static_cpu_cost(table, model)
        seen = set(group_expr.columns())
        for agg in aggregates:
            if agg.expr is not None:
                decode_cost += agg.expr.static_cpu_cost(table, model)
                seen |= agg.expr.columns()
        if where is not None:
            decode_cost += where.static_cpu_cost(table, model)
        # Hash probe per row on top of the aggregate steps.
        step_cost = sum(a.step_cost(model) for a in aggregates) \
            + model.cpu_count_step

        if engine == "parallel":
            from . import parallel
            res = parallel.run_parallel_grouped(
                self.db, table, group_expr, aggregates, where, cold,
                self._resolve_workers(workers))
            if res is None:
                engine = "vector"  # honest fallback
            else:
                result = [
                    (group, *(a.finish(s, res.rows)
                              for a, s in zip(aggregates, states)))
                    for group, states in sorted(
                        res.groups.items(),
                        key=lambda kv: (kv[0] is None, kv[0]))]
                return result, self._parallel_metrics(
                    res, label, decode_cost, step_cost, 0.0)

        with self._read_view(table, cold) as view:
            before = pool.snapshot_thread_counters()

            if engine == "vector":
                ctx = vectorized.BatchContext(view, pool)
                started = time.perf_counter()
                groups, rows, payload_bytes = vectorized.scan_grouped(
                    view, pool, group_expr, aggregates, where, ctx)
                wall = time.perf_counter() - started
            else:
                ctx = _RowContext(view, pool)
                groups = {}
                rows = 0
                payload_bytes = 0
                started = time.perf_counter()
                for key, payload in view.tree.scan(pool):
                    rows += 1
                    payload_bytes += len(payload)
                    ctx.row = view.decode(key, payload)
                    if where is not None and not where.eval(ctx):
                        continue
                    group = group_expr.eval(ctx)
                    states = groups.get(group)
                    if states is None:
                        states = [a.start() for a in aggregates]
                        groups[group] = states
                    for i, agg in enumerate(aggregates):
                        states[i] = agg.step(states[i], ctx)
                wall = time.perf_counter() - started

        result = [
            (group, *(a.finish(s, rows)
                      for a, s in zip(aggregates, states)))
            for group, states in sorted(
                groups.items(),
                key=lambda kv: (kv[0] is None, kv[0]))]

        io = pool.snapshot_thread_counters().delta_since(before)
        cpu = (rows * (model.cpu_row_base + decode_cost + step_cost)
               + payload_bytes * model.cpu_per_record_byte
               + ctx.stream_calls * model.cpu_stream_call
               + ctx.stream_bytes * model.cpu_stream_byte)
        io_seq, io_random = model.io_seconds_split(io)
        metrics = QueryMetrics(
            label=label, rows=rows, io_bytes=io.physical_bytes,
            physical_reads=io.physical_reads,
            sequential_reads=io.sequential_reads,
            random_reads=io.random_reads,
            stream_calls=ctx.stream_calls, udf_calls=ctx.udf_calls,
            sim_io_seconds=io_seq + io_random,
            sim_io_seq_seconds=io_seq,
            sim_io_random_seconds=io_random,
            sim_cpu_core_seconds=cpu,
            sim_exec_seconds=model.exec_seconds(io_seq + io_random, cpu),
            cores=model.cores, wall_seconds=wall, engine=engine)
        return result, metrics

    def run_index(self, table: Table, column: str,
                  aggregates: Sequence[Aggregate], equals=None,
                  lo=None, hi=None, cold: bool = True, label: str = "",
                  engine: str | None = None, workers: int | None = None
                  ) -> tuple[tuple, QueryMetrics]:
        """Execute aggregates over rows found through a secondary
        index: an index seek / range scan plus one clustered key lookup
        per qualifying row.

        Seek plans touch a handful of scattered rows, so there is no
        batch to vectorize; ``engine`` is accepted (and validated) for
        API uniformity but the plan always executes row-at-a-time and
        reports ``engine="row"``.

        Args:
            column: The indexed column.
            equals: Equality value (exclusive with lo/hi).
            lo / hi: Half-open value range ``[lo, hi)``.
        """
        self._resolve_engine(engine)
        index = table.index_on(column)
        if index is None:
            raise ValueError(f"no index on column {column!r}")
        model = self.model
        pool = self.db.pool
        with self._read_view(table, cold, pin=False):
            before = pool.snapshot_thread_counters()
            ctx = _RowContext(table, pool)
            states = [a.start() for a in aggregates]
            rows = 0
            started = time.perf_counter()
            if equals is not None:
                pks = index.seek(equals, pool)
            else:
                pks = index.range(lo, hi, pool)
            for pk in pks:
                payload = table.tree.search(pk, pool)
                if payload is None:
                    continue
                rows += 1
                ctx.row = table.decode(pk, payload)
                for i, agg in enumerate(aggregates):
                    states[i] = agg.step(states[i], ctx)
            wall = time.perf_counter() - started
        values = tuple(a.finish(s, rows)
                       for a, s in zip(aggregates, states))

        io = pool.snapshot_thread_counters().delta_since(before)
        decode_cost = sum(
            a.expr.static_cpu_cost(table, model) for a in aggregates
            if a.expr is not None)
        cpu = (rows * (model.cpu_row_base + decode_cost
                       + sum(a.step_cost(model) for a in aggregates))
               + io.logical_reads * model.cpu_row_base
               + ctx.stream_calls * model.cpu_stream_call
               + ctx.stream_bytes * model.cpu_stream_byte)
        io_seq, io_random = model.io_seconds_split(io)
        metrics = QueryMetrics(
            label=label, rows=rows, io_bytes=io.physical_bytes,
            physical_reads=io.physical_reads,
            sequential_reads=io.sequential_reads,
            random_reads=io.random_reads,
            stream_calls=ctx.stream_calls, udf_calls=ctx.udf_calls,
            sim_io_seconds=io_seq + io_random,
            sim_io_seq_seconds=io_seq,
            sim_io_random_seconds=io_random,
            sim_cpu_core_seconds=cpu,
            sim_exec_seconds=model.exec_seconds(io_seq + io_random, cpu),
            cores=model.cores, wall_seconds=wall)
        return values, metrics

    def run_point(self, table: Table, key: int,
                  aggregates: Sequence[Aggregate], cold: bool = True,
                  label: str = "", engine: str | None = None,
                  workers: int | None = None
                  ) -> tuple[tuple, QueryMetrics]:
        """Execute aggregates over the single row with the given
        primary key — a clustered index *seek* instead of a scan.

        The B-tree descent touches ``height`` pages instead of every
        leaf; this is the plan the paper's narrow queries (one blob row
        by z-index) rely on.  Like :meth:`run_index`, a seek has no
        batch to vectorize: ``engine`` is validated but the single row
        is processed on the row path (``engine="row"`` in the metrics).
        """
        self._resolve_engine(engine)
        model = self.model
        pool = self.db.pool
        with self._read_view(table, cold) as view:
            before = pool.snapshot_thread_counters()
            ctx = _RowContext(view, pool)
            states = [a.start() for a in aggregates]
            rows = 0
            started = time.perf_counter()
            payload = view.tree.search(int(key), pool)
            if payload is not None:
                rows = 1
                ctx.row = view.decode(int(key), payload)
                for i, agg in enumerate(aggregates):
                    states[i] = agg.step(states[i], ctx)
            wall = time.perf_counter() - started
        values = tuple(a.finish(s, rows)
                       for a, s in zip(aggregates, states))

        io = pool.snapshot_thread_counters().delta_since(before)
        decode_cost = sum(
            a.expr.static_cpu_cost(table, model) for a in aggregates
            if a.expr is not None)
        cpu = (rows * (model.cpu_row_base + decode_cost
                       + sum(a.step_cost(model) for a in aggregates))
               # Binary searches down the tree: ~one row-base of work
               # per level touched.
               + io.logical_reads * model.cpu_row_base
               + ctx.stream_calls * model.cpu_stream_call
               + ctx.stream_bytes * model.cpu_stream_byte)
        io_seq, io_random = model.io_seconds_split(io)
        metrics = QueryMetrics(
            label=label, rows=rows, io_bytes=io.physical_bytes,
            physical_reads=io.physical_reads,
            sequential_reads=io.sequential_reads,
            random_reads=io.random_reads,
            stream_calls=ctx.stream_calls, udf_calls=ctx.udf_calls,
            sim_io_seconds=io_seq + io_random,
            sim_io_seq_seconds=io_seq,
            sim_io_random_seconds=io_random,
            sim_cpu_core_seconds=cpu,
            sim_exec_seconds=model.exec_seconds(io_seq + io_random, cpu),
            cores=model.cores, wall_seconds=wall)
        return values, metrics

    def run(self, table: Table, aggregates: Sequence[Aggregate],
            where: Expression | None = None, cold: bool = True,
            label: str = "", engine: str | None = None,
            workers: int | None = None
            ) -> tuple[tuple, QueryMetrics]:
        """Execute ``SELECT aggs FROM table [WHERE where]``.

        Args:
            table: Table to scan (clustered index scan, key order).
            aggregates: Aggregate list; their final values are returned
                in order.
            where: Optional predicate expression (rows where it
                evaluates falsy are skipped after being scanned).
            cold: Clear the buffer pool first, like the paper's runs.
            label: Name recorded in the metrics.
            engine: ``"row"``, ``"vector"`` or ``"parallel"``; ``None``
                uses :attr:`default_engine`.  All produce bit-identical
                results; cold-run IO accounting is identical too.  A
                parallel request that cannot parallelize safely (an
                unpicklable plan, a UDF registered
                ``parallel_safe=False``, a custom aggregate without
                ``merge``) honestly falls back to the serial vector
                path and reports ``engine="vector"``.
            workers: Worker-process count for ``engine="parallel"``
                (``None`` uses :attr:`default_workers`); ignored by
                the serial engines.

        Returns:
            ``(values, metrics)``.
        """
        engine = self._resolve_engine(engine)
        model = self.model
        pool = self.db.pool

        # Per-row static CPU: scan base + referenced-column decodes +
        # aggregate steps (+ predicate).  UDF calls inside expressions
        # are part of static cost too (one call per row); data-dependent
        # costs (blob streaming) are charged via the row context.
        decode_cost = 0.0
        seen: set[str] = set()
        exprs = [a.expr for a in aggregates if a.expr is not None]
        if where is not None:
            exprs.append(where)
        for expr in exprs:
            decode_cost += expr.static_cpu_cost(table, model)
            seen |= expr.columns()
        step_cost = sum(a.step_cost(model) for a in aggregates)

        if engine == "parallel":
            from . import parallel
            res = parallel.run_parallel_scan(
                self.db, table, aggregates, where, cold,
                self._resolve_workers(workers))
            if res is None:
                engine = "vector"  # honest fallback
            else:
                values = tuple(a.finish(s, res.rows)
                               for a, s in zip(aggregates, res.states))
                return values, self._parallel_metrics(
                    res, label, decode_cost, step_cost, res.extra_cpu)

        with self._read_view(table, cold) as view:
            before = pool.snapshot_thread_counters()

            if engine == "vector":
                ctx = vectorized.BatchContext(view, pool)
                started = time.perf_counter()
                states, rows, payload_bytes = vectorized.scan_aggregate(
                    view, pool, aggregates, where, ctx)
                wall = time.perf_counter() - started
            else:
                ctx = _RowContext(view, pool)
                states = [a.start() for a in aggregates]
                rows = 0
                payload_bytes = 0
                started = time.perf_counter()
                for key, payload in view.tree.scan(pool):
                    rows += 1
                    payload_bytes += len(payload)
                    ctx.row = view.decode(key, payload)
                    if where is not None and not where.eval(ctx):
                        continue
                    for i, agg in enumerate(aggregates):
                        states[i] = agg.step(states[i], ctx)
                wall = time.perf_counter() - started

        values = tuple(a.finish(s, rows) for a, s in zip(aggregates, states))

        io = pool.snapshot_thread_counters().delta_since(before)
        cpu_core_seconds = (
            rows * (model.cpu_row_base + decode_cost + step_cost)
            + payload_bytes * model.cpu_per_record_byte
            + ctx.stream_calls * model.cpu_stream_call
            + ctx.stream_bytes * model.cpu_stream_byte
            + ctx.extra_cpu)
        io_seq, io_random = model.io_seconds_split(io)
        io_seconds = io_seq + io_random
        metrics = QueryMetrics(
            label=label,
            rows=rows,
            io_bytes=io.physical_bytes,
            physical_reads=io.physical_reads,
            sequential_reads=io.sequential_reads,
            random_reads=io.random_reads,
            stream_calls=ctx.stream_calls,
            udf_calls=ctx.udf_calls,
            sim_io_seconds=io_seconds,
            sim_io_seq_seconds=io_seq,
            sim_io_random_seconds=io_random,
            sim_cpu_core_seconds=cpu_core_seconds,
            sim_exec_seconds=model.exec_seconds(io_seconds,
                                                cpu_core_seconds),
            cores=model.cores,
            wall_seconds=wall,
            engine=engine,
        )
        return values, metrics
