"""Server observability: latency percentiles, IO totals, per-session
counts.

Aggregates what the engine already measures per query
(:class:`~repro.engine.metrics.QueryMetrics`) into the server-level
view the stats protocol command exposes: how many queries ran, how they
spread over sessions, the p50/p95 of recent latencies, and the summed
IO/UDF counters — the Table 1 bookkeeping, lifted from one query to a
whole serving process.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["LatencyWindow", "ServerStats"]


class LatencyWindow:
    """Sliding window of the most recent latencies with percentiles.

    A bounded deque (default: last 2048 samples) — constant memory at
    any traffic volume, percentile over the recent past rather than
    process lifetime.
    """

    def __init__(self, capacity: int = 2048):
        self._samples: deque[float] = deque(maxlen=capacity)

    def add(self, seconds: float) -> None:
        self._samples.append(seconds)

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile (``p`` in [0, 100]); None if empty."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]


class ServerStats:
    """Thread-safe aggregate counters for one server process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._started = time.time()
        self.latency = LatencyWindow()
        self._queries_ok = 0
        self._queries_failed = 0
        self._rejected_busy = 0
        self._timeouts = 0
        self._sessions_opened = 0
        self._sessions_closed = 0
        # Live sessions only — closed sessions fold their count into
        # the aggregate below, so memory (and the stats frame) stays
        # bounded by the number of *concurrent* connections, not the
        # number ever opened.
        self._per_session: dict[int, int] = {}
        self._closed_session_queries = 0
        self._io_totals = {
            "rows": 0,
            "io_bytes": 0,
            "physical_reads": 0,
            "sequential_reads": 0,
            "random_reads": 0,
            "stream_calls": 0,
            "udf_calls": 0,
        }
        # Successful SELECTs by execution path ("row" / "vector" /
        # "parallel" — the engine that actually ran, so a parallel
        # request that fell back to serial counts as "vector").
        # Kept out of _io_totals: the metrics "engine" value is a
        # string, not a summable counter.
        self._engine_queries: dict[str, int] = {}
        # Zero-copy data-plane counters: prepare frames answered,
        # pipelined pexec batches (and how deep they ran), and bquery
        # streams with their chunk/byte totals — the "bytes on the
        # wire" half of the partial-read story.
        self._prepares = 0
        self._pipeline_batches = 0
        self._pipeline_statements = 0
        self._pipeline_depth_max = 0
        self._bquery_streams = 0
        self._bquery_chunks = 0
        self._bquery_bytes = 0

    # -- recording -----------------------------------------------------------

    def session_opened(self, session_id: int) -> None:
        with self._lock:
            self._sessions_opened += 1
            self._per_session.setdefault(session_id, 0)

    def session_closed(self, session_id: int) -> None:
        with self._lock:
            self._sessions_closed += 1
            self._closed_session_queries += \
                self._per_session.pop(session_id, 0)

    def record_query(self, session_id: int, latency_seconds: float,
                     metrics: dict | None) -> None:
        """Record one successful query and fold its metrics dict
        (:meth:`QueryMetrics.to_dict`) into the IO totals."""
        with self._lock:
            self._queries_ok += 1
            self._per_session[session_id] = \
                self._per_session.get(session_id, 0) + 1
            self.latency.add(latency_seconds)
            if metrics:
                for key in self._io_totals:
                    self._io_totals[key] += int(metrics.get(key, 0))
                engine = metrics.get("engine")
                if isinstance(engine, str):
                    self._engine_queries[engine] = \
                        self._engine_queries.get(engine, 0) + 1

    def record_failure(self, session_id: int) -> None:
        with self._lock:
            self._queries_failed += 1
            self._per_session[session_id] = \
                self._per_session.get(session_id, 0) + 1

    def record_busy(self) -> None:
        with self._lock:
            self._rejected_busy += 1

    def record_timeout(self, session_id: int) -> None:
        with self._lock:
            self._timeouts += 1
            self._per_session[session_id] = \
                self._per_session.get(session_id, 0) + 1

    def record_prepare(self) -> None:
        """One ``prepare`` frame answered with a ``prepared`` reply."""
        with self._lock:
            self._prepares += 1

    def record_pipeline(self, batch_size: int) -> None:
        """One ``pexec`` batch executed (``batch_size`` >= 1; serial
        clients show up as depth-1 batches)."""
        with self._lock:
            self._pipeline_batches += 1
            self._pipeline_statements += batch_size
            self._pipeline_depth_max = max(self._pipeline_depth_max,
                                           batch_size)

    def record_bquery(self, chunks: int, payload_bytes: int) -> None:
        """One ``bquery`` stream completed: how many ``bchunk`` frames
        it took and how many payload bytes crossed the wire."""
        with self._lock:
            self._bquery_streams += 1
            self._bquery_chunks += chunks
            self._bquery_bytes += payload_bytes

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-serializable view of everything above."""
        with self._lock:
            return {
                "uptime_seconds": time.time() - self._started,
                "queries_ok": self._queries_ok,
                "queries_failed": self._queries_failed,
                "rejected_busy": self._rejected_busy,
                "timeouts": self._timeouts,
                "sessions_opened": self._sessions_opened,
                "sessions_closed": self._sessions_closed,
                "sessions_active": (self._sessions_opened
                                    - self._sessions_closed),
                "per_session_queries": dict(self._per_session),
                "closed_session_queries": self._closed_session_queries,
                "latency_p50": self.latency.percentile(50),
                "latency_p95": self.latency.percentile(95),
                "latency_samples": len(self.latency),
                "io_totals": dict(self._io_totals),
                "engine_queries": dict(self._engine_queries),
                "prepares": self._prepares,
                "pipeline": {
                    "batches": self._pipeline_batches,
                    "statements": self._pipeline_statements,
                    "depth_max": self._pipeline_depth_max,
                },
                "bquery": {
                    "streams": self._bquery_streams,
                    "chunks": self._bquery_chunks,
                    "payload_bytes": self._bquery_bytes,
                },
            }
