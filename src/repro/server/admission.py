"""Admission control: overload degrades, it does not collapse.

The server runs queries on a bounded worker pool.  Up to
``max_workers`` queries execute at once; up to ``queue_limit`` more may
wait their turn; anything beyond that is rejected *immediately* with
``SERVER_BUSY`` instead of being buffered without bound — the client
gets a fast, explicit signal to back off, and the queries already
admitted keep their latency.

The controller is a plain thread-safe counter: slots are taken on the
event-loop thread before a query is submitted to the pool and released
from whatever thread finishes (or abandons) the work, so it never
depends on the loop being responsive.
"""

from __future__ import annotations

import threading

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-concurrency admission for the query worker pool.

    Args:
        max_workers: Queries executing concurrently.
        queue_limit: Additional queries allowed to wait for a worker.
    """

    def __init__(self, max_workers: int, queue_limit: int):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_workers = max_workers
        self.queue_limit = queue_limit
        self._lock = threading.Lock()
        self._in_flight = 0
        self._admitted_total = 0
        self._rejected_total = 0

    @property
    def capacity(self) -> int:
        """Total slots: executing plus queued."""
        return self.max_workers + self.queue_limit

    @property
    def in_flight(self) -> int:
        """Queries currently admitted (executing or queued)."""
        with self._lock:
            return self._in_flight

    @property
    def queue_depth(self) -> int:
        """Admitted queries beyond the worker count — waiting."""
        with self._lock:
            return max(0, self._in_flight - self.max_workers)

    def try_acquire(self) -> bool:
        """Claim a slot; False means the caller must reject with
        ``SERVER_BUSY``."""
        with self._lock:
            if self._in_flight >= self.capacity:
                self._rejected_total += 1
                return False
            self._in_flight += 1
            self._admitted_total += 1
            return True

    def release(self) -> None:
        """Return a slot (called when the query finishes, fails, or is
        abandoned after a timeout)."""
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release() without a matching "
                                   "try_acquire()")
            self._in_flight -= 1

    def snapshot(self) -> dict:
        """Counters for the stats command."""
        with self._lock:
            return {
                "max_workers": self.max_workers,
                "queue_limit": self.queue_limit,
                "in_flight": self._in_flight,
                "queue_depth": max(0,
                                   self._in_flight - self.max_workers),
                "admitted_total": self._admitted_total,
                "rejected_total": self._rejected_total,
            }
