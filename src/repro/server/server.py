"""The array-database server: asyncio TCP front, threaded query pool.

One process holds one shared :class:`~repro.engine.executor.Database`.
Each TCP connection gets its own
:class:`~repro.engine.sqlfront.SqlSession` (per-session UDF registry,
like a SQL Server SPID); statements execute on a bounded thread pool
behind the admission controller, under the database's per-table
latches (:mod:`repro.engine.latches`), so concurrent scans share and a
writer excludes only readers of *its own* table — writers on one table
overlap scans of another, like the paper's host.  With MVCC on (the
default), SELECTs pin a copy-on-write page-version snapshot and scan
it latch-free, so readers and a writer of the *same* table overlap
too; exporting ``REPRO_MVCC=off`` restores latch-per-scan, and
``REPRO_LATCH=coarse`` the old database-wide reader/writer lock.

The connection protocol is strict request/response for every frame type
except ``pexec``: the handler reads one frame, answers it, and only
then reads the next.  ``pexec`` frames may be *pipelined* — a client
sends N of them back-to-back, the handler drains the contiguous run
already sitting in the stream buffer into one batch (one admission
slot, one worker-pool hop, statements sequential) and answers with N
result frames in request order.  ``bquery`` replies are a *stream* of
bounded ``bchunk`` frames: the blob slice is resolved and read under
the table latch, then shipped chunk by chunk, so a corner of a huge
blob never trips the frame-size limit.  A query that outlives its
timeout gets an immediate ``QUERY_TIMEOUT`` error; the worker thread
finishes in the background and its admission slot is returned only
when it actually ends, so timeouts cannot be used to stampede past the
concurrency bound.

Embedders (tests, benchmarks, the CLI client's self-serve mode) can use
:class:`ServerThread` to run a server on a background event loop::

    with ServerThread(db) as handle:
        client = ArrayClient("127.0.0.1", handle.port)
        ...
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from ..core.errors import BoundsError, ShapeError
from ..core.header import HeaderError
from ..core.partial import BytesBlobStream, read_window_blob
from ..engine.executor import Database
from ..engine.sqlfront import SqlSession, SqlSyntaxError
from ..engine.table import MaxBlobHandle, Table
from . import protocol
from .admission import AdmissionController
from .stats import ServerStats

__all__ = ["ServerConfig", "ArrayServer", "ServerThread"]

#: Most ``pexec`` frames drained into one pipelined batch — bounds how
#: long a batch can hold its single admission slot.
PIPELINE_BATCH_MAX = 32


@dataclass
class ServerConfig:
    """Deployment knobs for one server process.

    Attributes:
        host / port: Listen address (port 0 picks a free port; the
            bound port is on :attr:`ArrayServer.port` after start).
        max_workers: Queries executing concurrently (thread pool size).
        queue_limit: Admitted queries allowed to wait for a worker;
            beyond ``max_workers + queue_limit`` clients get
            ``SERVER_BUSY``.
        query_timeout: Default per-query wall-clock budget in seconds,
            applied whenever a query frame omits ``timeout`` (or sends
            ``null``).  A frame may override it with its own positive
            budget or disable it with the ``"none"`` sentinel;
            ``None`` here means no default budget.
        max_frame: Largest accepted/emitted frame in bytes.
        name: Server name reported in the hello frame.
        engine_workers: Default process count for queries served by the
            ``parallel`` engine (a query frame's ``workers`` overrides
            it); ``None`` means the executor's own default.  Distinct
            from ``max_workers``, which sizes the *thread* pool that
            admits queries.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_workers: int = 4
    queue_limit: int = 8
    query_timeout: float | None = 30.0
    max_frame: int = protocol.MAX_FRAME_BYTES
    name: str = "repro-array-server"
    engine_workers: int | None = None


class ArrayServer:
    """Serves the wire protocol over one shared database.

    Args:
        db: The shared database (statements run under ``db.latches``).
        config: Deployment knobs; defaults are test-friendly.
        session_setup: Optional callable invoked with each new
            connection's :class:`SqlSession` — the hook deployments use
            to register extra UDFs server-side.
    """

    def __init__(self, db: Database, config: ServerConfig | None = None,
                 session_setup: Callable[[SqlSession], None] | None = None):
        self.db = db
        self.config = config or ServerConfig()
        self.session_setup = session_setup
        self.stats = ServerStats()
        self.admission = AdmissionController(self.config.max_workers,
                                             self.config.queue_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="repro-query")
        self._server: asyncio.AbstractServer | None = None
        self._next_session_id = 0
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections (returns immediately)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drop live connections, shut the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._next_session_id += 1
        session_id = self._next_session_id
        self._writers.add(writer)
        session = SqlSession(self.db)
        if self.session_setup is not None:
            self.session_setup(session)
        self.stats.session_opened(session_id)
        try:
            await protocol.write_frame(writer, {
                "type": "hello", "server": self.config.name,
                "protocol": protocol.PROTOCOL_VERSION,
                "session_id": session_id})
            while True:
                try:
                    frame = await protocol.read_frame(
                        reader, self.config.max_frame)
                except protocol.ProtocolError as exc:
                    # One best-effort diagnostic, then hang up: framing
                    # is broken, so the stream cannot be resynced.
                    try:
                        await protocol.write_frame(writer, _error(
                            protocol.BAD_FRAME, str(exc)))
                    except (ConnectionError, RuntimeError):
                        pass
                    break
                if frame is None:
                    break
                header, blobs = frame
                if header.get("type") == "pexec":
                    try:
                        batch, carry = await self._drain_pexec(reader)
                    except protocol.ProtocolError as exc:
                        try:
                            await protocol.write_frame(writer, _error(
                                protocol.BAD_FRAME, str(exc)))
                        except (ConnectionError, RuntimeError):
                            pass
                        break
                    await self._run_pexec_batch(
                        writer, session, session_id, [header] + batch)
                    if carry is None:
                        continue
                    header, blobs = carry
                done = await self._dispatch(writer, session, session_id,
                                            header, blobs)
                if done:
                    break
        except ConnectionError:
            pass  # client went away mid-write; nothing to answer
        # CancelledError propagates: suppressing it would break task
        # cancellation during event-loop shutdown (cleanup still runs).
        finally:
            self.stats.session_closed(session_id)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _drain_pexec(self, reader: asyncio.StreamReader
                           ) -> tuple[list[dict], tuple | None]:
        """Collect the contiguous run of pipelined ``pexec`` frames the
        client already has in flight.

        Only frames *fully buffered* in the stream reader are taken —
        the length prefix of the next frame is peeked and an incomplete
        frame is left for the normal read loop, so draining never
        blocks on the network and a lone ``pexec`` behaves exactly like
        strict request/response.  Returns ``(headers, carry)`` where
        ``carry`` is a buffered non-``pexec`` frame that must be
        dispatched after the batch is answered (or None).
        """
        batch: list[dict] = []
        carry = None
        while len(batch) + 1 < PIPELINE_BATCH_MAX:
            buffered = getattr(reader, "_buffer", None)
            if buffered is None or len(buffered) < 4:
                break
            (total,) = protocol._U32.unpack(bytes(buffered[:4]))
            if len(buffered) - 4 < total:
                break
            frame = await protocol.read_frame(reader,
                                              self.config.max_frame)
            if frame is None:
                break
            if frame[0].get("type") != "pexec":
                carry = frame
                break
            batch.append(frame[0])
        return batch, carry

    async def _dispatch(self, writer, session: SqlSession,
                        session_id: int, header: dict, blobs) -> bool:
        """Answer one request frame; True means close the connection."""
        kind = header.get("type")
        if kind == "ping":
            await protocol.write_frame(writer, {"type": "pong"})
            return False
        if kind == "close":
            await protocol.write_frame(writer, {"type": "goodbye"})
            return True
        if kind == "stats":
            await protocol.write_frame(writer, self._stats_frame())
            return False
        if kind in ("query", "pquery", "insert"):
            if kind == "insert":
                reply, reply_blobs = await self._run_insert(
                    session, session_id, header, blobs)
            else:
                reply, reply_blobs = await self._run_query(
                    session, session_id, header,
                    partial=(kind == "pquery"))
            try:
                await protocol.write_frame(writer, reply, reply_blobs,
                                           self.config.max_frame)
            except protocol.FrameTooLargeError as exc:
                # The query ran, but its reply cannot ship: the client
                # would reject the oversized frame and kill the
                # connection with no diagnosis.  Nothing has hit the
                # wire yet, so answer with an error frame instead and
                # keep the connection alive.
                await protocol.write_frame(writer, _error(
                    protocol.RESULT_TOO_LARGE,
                    f"{exc}; narrow the select list or raise "
                    f"max_frame"))
            return False
        if kind == "prepare":
            await self._run_prepare(writer, session, header)
            return False
        if kind == "pexec":
            # The connection loop batches contiguous pexec runs before
            # dispatching; one arriving here (e.g. as a carried frame)
            # is simply a batch of one.
            await self._run_pexec_batch(writer, session, session_id,
                                        [header])
            return False
        if kind == "bquery":
            return await self._run_bquery(writer, session, session_id,
                                          header)
        await protocol.write_frame(writer, _error(
            protocol.BAD_FRAME, f"unknown message type {kind!r}"))
        return False

    # -- the query path -----------------------------------------------------

    def _resolve_timeout(self, requested) -> float | None:
        """Map a query frame's ``timeout`` value to a budget in seconds.

        Absent/``null`` means the server default — a client parameter
        that merely defaults to ``None`` must never disable the budget.
        The :data:`protocol.NO_TIMEOUT` sentinel disables it on
        purpose; a positive finite number is used as-is.  Anything
        else raises ``ValueError`` (answered as ``BAD_FRAME``).
        """
        if requested is None:
            return self.config.query_timeout
        if requested == protocol.NO_TIMEOUT:
            return None
        if isinstance(requested, bool) or \
                not isinstance(requested, (int, float)):
            raise ValueError(
                f"'timeout' must be a positive number or "
                f"{protocol.NO_TIMEOUT!r}, got {requested!r}")
        timeout = float(requested)
        if not math.isfinite(timeout) or timeout <= 0:
            raise ValueError(
                f"'timeout' must be positive and finite, got "
                f"{timeout!r}")
        return timeout

    @staticmethod
    def _resolve_engine(requested) -> str | None:
        """Map a query frame's ``engine`` value to an executor engine.

        Absent/``null`` means the executor's default (the vector
        path); ``"row"`` / ``"vector"`` / ``"parallel"`` select a path
        explicitly.  Anything else raises ``ValueError`` (answered as
        ``BAD_FRAME``).
        """
        if requested is None:
            return None
        if requested not in ("row", "vector", "parallel"):
            raise ValueError(
                f"'engine' must be 'row', 'vector' or 'parallel', "
                f"got {requested!r}")
        return requested

    def _resolve_workers(self, requested) -> int | None:
        """Map a query frame's ``workers`` value to a process count.

        Absent/``null`` means the server's configured default
        (``engine_workers``, itself defaulting to the executor's
        choice).  Only meaningful with ``engine="parallel"``; the
        serial engines ignore it.
        """
        if requested is None:
            return self.config.engine_workers
        if isinstance(requested, bool) or not isinstance(requested, int):
            raise ValueError(
                f"'workers' must be a positive integer, "
                f"got {requested!r}")
        if requested < 1:
            raise ValueError(
                f"'workers' must be at least 1, got {requested!r}")
        return requested

    async def _admit_and_run(self, session_id: int,
                             timeout: float | None, job):
        """Admit one statement and run it on the worker pool — the
        shared body of the ``query``, ``pquery`` and ``insert`` paths.

        Returns ``((result, latency), None)`` on success or
        ``(None, error_header)`` for rejection, timeout or failure.
        """
        if not self.admission.try_acquire():
            self.stats.record_busy()
            return None, _error(
                protocol.SERVER_BUSY,
                f"admission queue full "
                f"({self.admission.capacity} in flight); retry later")

        loop = asyncio.get_running_loop()
        future = self._executor.submit(job)
        # The slot is held until the worker truly finishes — releasing
        # on timeout would let abandoned queries pile up unbounded.
        future.add_done_callback(lambda _f: self.admission.release())
        wrapped = asyncio.wrap_future(future, loop=loop)
        started = loop.time()
        try:
            result = await asyncio.wait_for(asyncio.shield(wrapped),
                                            timeout)
        except asyncio.TimeoutError:
            future.cancel()  # frees it if it was still queued
            # The abandoned future's eventual result/exception is
            # nobody's business now; consume it silently.
            wrapped.add_done_callback(
                lambda f: f.cancelled() or f.exception())
            self.stats.record_timeout(session_id)
            return None, _error(
                protocol.QUERY_TIMEOUT,
                f"query exceeded its {timeout:g} s budget")
        except SqlSyntaxError as exc:
            self.stats.record_failure(session_id)
            return None, _error(protocol.SQL_ERROR, str(exc))
        except protocol.WireError as exc:
            # A typed failure from behind the server (the shard
            # coordinator's SHARD_UNAVAILABLE, a shard's own error
            # passing through): keep its code on the wire.
            self.stats.record_failure(session_id)
            return None, _error(exc.code, exc.message, exc.detail)
        except CancelledError:
            self.stats.record_failure(session_id)
            return None, _error(protocol.INTERNAL, "query cancelled")
        except Exception as exc:  # engine bug surfaced to one client
            self.stats.record_failure(session_id)
            return None, _error(protocol.INTERNAL,
                                f"{type(exc).__name__}: {exc}")
        return (result, loop.time() - started), None

    async def _run_query(self, session: SqlSession, session_id: int,
                         header: dict, partial: bool = False
                         ) -> tuple[dict, list[bytes]]:
        sql = header.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return _error(protocol.SQL_ERROR,
                          "query frame needs a non-empty 'sql'"), []
        cold = bool(header.get("cold", True))
        try:
            timeout = self._resolve_timeout(header.get("timeout"))
            engine = self._resolve_engine(header.get("engine"))
            workers = self._resolve_workers(header.get("workers"))
        except ValueError as exc:
            return _error(protocol.BAD_FRAME, str(exc)), []

        if partial:
            job = lambda: self._execute_partial_sync(  # noqa: E731
                session, sql, cold, engine, workers)
        else:
            job = lambda: self._execute_sync(  # noqa: E731
                session, sql, cold, engine, workers)
        outcome, error = await self._admit_and_run(session_id, timeout,
                                                   job)
        if error is not None:
            return error, []
        result, latency = outcome
        self.stats.record_query(session_id, latency,
                                result.get("metrics"))
        if partial:
            return self._pack_presult(result, latency)
        packed, reply_blobs = protocol.pack_rows(result["rows"])
        reply = {"type": "result", "kind": result["kind"],
                 "rows": packed, "rowcount": result["rowcount"],
                 "metrics": result["metrics"],
                 "elapsed_seconds": latency}
        return reply, reply_blobs

    @staticmethod
    def _pack_presult(result: dict, latency: float
                      ) -> tuple[dict, list[bytes]]:
        blobs: list[bytes] = []
        states = result["states"]
        groups = result["groups"]
        packed_states = None if states is None else [
            protocol.pack_partial(state, blobs) for state in states]
        packed_groups = None if groups is None else [
            [protocol.pack_cell(group, blobs),
             [protocol.pack_partial(part, blobs) for part in parts]]
            for group, parts in groups]
        reply = {"type": "presult", "rows": result["rows"],
                 "states": packed_states, "groups": packed_groups,
                 "metrics": result["metrics"],
                 "elapsed_seconds": latency}
        return reply, blobs

    async def _run_insert(self, session: SqlSession, session_id: int,
                          header: dict, blobs) -> tuple[dict, list[bytes]]:
        table_name = header.get("table")
        if not isinstance(table_name, str) or not table_name:
            return _error(protocol.BAD_FRAME,
                          "insert frame needs a 'table' name"), []
        packed = header.get("rows")
        if not isinstance(packed, list):
            return _error(protocol.BAD_FRAME,
                          "insert frame needs a 'rows' list"), []
        try:
            rows = protocol.unpack_rows(packed, blobs)
            timeout = self._resolve_timeout(header.get("timeout"))
        except (protocol.ProtocolError, ValueError) as exc:
            return _error(protocol.BAD_FRAME, str(exc)), []
        outcome, error = await self._admit_and_run(
            session_id, timeout,
            lambda: self._execute_insert_sync(session, table_name,
                                              rows))
        if error is not None:
            return error, []
        inserted, latency = outcome
        self.stats.record_query(session_id, latency, None)
        return {"type": "result", "kind": "ok", "rows": [],
                "rowcount": inserted, "metrics": None,
                "elapsed_seconds": latency}, []

    # -- prepared statements and pipelining ----------------------------------

    async def _run_prepare(self, writer, session: SqlSession,
                           header: dict) -> None:
        """Answer one ``prepare`` frame with a ``prepared`` reply.

        Planning is pure catalog work (no latch, no IO), so it runs
        inline on the event loop instead of burning an admission slot.
        """
        sql = header.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            await protocol.write_frame(writer, _error(
                protocol.SQL_ERROR,
                "prepare frame needs a non-empty 'sql'"))
            return
        try:
            kind, table = self._prepare_sync(session, sql)
        except SqlSyntaxError as exc:
            await protocol.write_frame(writer, _error(
                protocol.SQL_ERROR, str(exc)))
            return
        except protocol.WireError as exc:
            await protocol.write_frame(writer, _error(exc.code,
                                                      exc.message,
                                                      exc.detail))
            return
        except Exception as exc:
            await protocol.write_frame(writer, _error(
                protocol.INTERNAL, f"{type(exc).__name__}: {exc}"))
            return
        self.stats.record_prepare()
        await protocol.write_frame(writer, {
            "type": "prepared", "sql": sql, "kind": kind,
            "table": table})

    def _prepare_sync(self, session: SqlSession,
                      sql: str) -> tuple[str, str]:
        """Plan (and cache) one SELECT; returns ``(kind, table)``."""
        plan = session.prepare(sql)
        return plan.kind, plan.table.name

    async def _run_pexec_batch(self, writer, session: SqlSession,
                               session_id: int,
                               headers: list[dict]) -> None:
        """Answer one pipelined batch of ``pexec`` frames.

        The whole batch takes one admission slot and one worker-pool
        hop; statements run sequentially on the worker thread and every
        request gets exactly one reply, in request order.  A statement
        that fails answers with an error frame in its slot without
        aborting the rest; a batch-level failure (busy, timeout)
        answers every slot with a copy of the same error.
        """
        requests: list[dict | tuple] = []
        timeout = self.config.query_timeout
        timeout_set = False
        for header in headers:
            sql = header.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                requests.append(_error(
                    protocol.SQL_ERROR,
                    "pexec frame needs a non-empty 'sql'"))
                continue
            try:
                resolved = self._resolve_timeout(header.get("timeout"))
                engine = self._resolve_engine(header.get("engine"))
                workers = self._resolve_workers(header.get("workers"))
            except ValueError as exc:
                requests.append(_error(protocol.BAD_FRAME, str(exc)))
                continue
            if not timeout_set:
                # One admission slot means one wall-clock budget: the
                # first valid frame's timeout bounds the whole batch.
                timeout = resolved
                timeout_set = True
            requests.append((sql, bool(header.get("cold", True)),
                             engine, workers))

        def job():
            replies = []
            for request in requests:
                if isinstance(request, dict):  # pre-validated error
                    replies.append((request, None))
                    continue
                sql, cold, engine, workers = request
                started = time.perf_counter()
                try:
                    result = self._execute_prepared_sync(
                        session, sql, cold, engine, workers)
                except SqlSyntaxError as exc:
                    replies.append((_error(protocol.SQL_ERROR,
                                           str(exc)), None))
                    continue
                except protocol.WireError as exc:
                    replies.append((_error(exc.code, exc.message,
                                           exc.detail),
                                    None))
                    continue
                except Exception as exc:
                    replies.append((_error(
                        protocol.INTERNAL,
                        f"{type(exc).__name__}: {exc}"), None))
                    continue
                replies.append((result,
                                time.perf_counter() - started))
            return replies

        outcome, error = await self._admit_and_run(session_id, timeout,
                                                   job)
        if error is not None:
            # Busy/timeout hit the batch as a whole — but the client
            # pipelined N requests and will read N replies.
            for _ in headers:
                await protocol.write_frame(writer, error)
            return
        replies, _batch_latency = outcome
        self.stats.record_pipeline(len(headers))
        # All N replies go out as one buffered write + drain — the
        # reply-side half of pipelining.  Per-frame drains would put a
        # syscall back on every statement and eat the batching win.
        buffer = bytearray()
        for reply, latency in replies:
            if latency is None:  # a per-statement error placeholder
                self.stats.record_failure(session_id)
                buffer += protocol.encode_frame(reply)
                continue
            self.stats.record_query(session_id, latency,
                                    reply["metrics"])
            packed, reply_blobs = protocol.pack_rows(reply["rows"])
            frame = {"type": "result", "kind": reply["kind"],
                     "rows": packed, "rowcount": reply["rowcount"],
                     "metrics": reply["metrics"],
                     "elapsed_seconds": latency}
            encoded = protocol.encode_frame(frame, reply_blobs)
            if len(encoded) > self.config.max_frame:
                encoded = protocol.encode_frame(_error(
                    protocol.RESULT_TOO_LARGE,
                    f"result frame of {len(encoded)} bytes exceeds "
                    f"max_frame {self.config.max_frame}; narrow the "
                    f"select list or raise max_frame"))
            buffer += encoded
        writer.write(bytes(buffer))
        await writer.drain()

    def _execute_prepared_sync(self, session: SqlSession, sql: str,
                               cold: bool, engine: str | None = None,
                               workers: int | None = None) -> dict:
        """Worker-thread body of the ``pexec`` path: a SELECT executes
        through the session's prepared-plan cache (parsed and planned
        once per statement text); anything else falls back to
        :meth:`_execute_sync`."""
        if sql.lstrip()[:6].upper() == "SELECT":
            rows, metrics = session.query_prepared(
                sql, cold=cold, finalize=self._materialize_result,
                engine=engine, workers=workers)
            return {"kind": "rows", "rows": rows,
                    "rowcount": len(rows),
                    "metrics": metrics.to_dict()}
        return self._execute_sync(session, sql, cold, engine, workers)

    # -- streamed partial-blob reads -----------------------------------------

    async def _run_bquery(self, writer, session: SqlSession,
                          session_id: int, header: dict) -> bool:
        """Answer one ``bquery``: resolve the blob cell and read the
        requested slice under the table latch on a worker thread, then
        stream it as bounded ``bchunk`` frames once the latch is
        released.  Returns the dispatch loop's ``done`` flag (the base
        server never closes the connection here)."""
        sql = header.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            await protocol.write_frame(writer, _error(
                protocol.SQL_ERROR,
                "bquery frame needs a non-empty 'sql'"))
            return False
        cold = bool(header.get("cold", True))
        try:
            timeout = self._resolve_timeout(header.get("timeout"))
            engine = self._resolve_engine(header.get("engine"))
            workers = self._resolve_workers(header.get("workers"))
            offset, length, window = _resolve_blob_range(header)
            chunk_bytes = self._resolve_chunk_bytes(
                header.get("chunk_bytes"))
        except ValueError as exc:
            await protocol.write_frame(writer, _error(
                protocol.BAD_FRAME, str(exc)))
            return False
        outcome, error = await self._admit_and_run(
            session_id, timeout,
            lambda: self._execute_bquery_sync(
                session, sql, cold, engine, workers, offset, length,
                window))
        if error is not None:
            await protocol.write_frame(writer, error)
            return False
        result, latency = outcome
        self.stats.record_query(session_id, latency, result["metrics"])
        payload = result["payload"]
        chunks = [payload[i:i + chunk_bytes]
                  for i in range(0, len(payload), chunk_bytes)] or [b""]
        self.stats.record_bquery(len(chunks), len(payload))
        for seq, chunk in enumerate(chunks):
            eof = seq == len(chunks) - 1
            frame = {"type": "bchunk", "seq": seq, "eof": eof,
                     "blob_len": result["blob_len"],
                     "offset": result["offset"],
                     "length": len(payload),
                     "metrics": result["metrics"] if eof else None,
                     "elapsed_seconds": latency if eof else None}
            await protocol.write_frame(writer, frame, [chunk],
                                       self.config.max_frame)
        return False

    def _resolve_chunk_bytes(self, requested) -> int:
        """Map a ``bquery`` frame's ``chunk_bytes`` to a payload size
        per chunk: the protocol default, clamped so a chunk frame
        always fits well inside ``max_frame``."""
        cap = max(1, min(protocol.DEFAULT_CHUNK_BYTES,
                         self.config.max_frame - 1024))
        if requested is None:
            return cap
        if isinstance(requested, bool) or \
                not isinstance(requested, int) or requested < 1:
            raise ValueError(
                f"'chunk_bytes' must be a positive integer, "
                f"got {requested!r}")
        return min(requested, cap)

    def _execute_bquery_sync(self, session: SqlSession, sql: str,
                             cold: bool, engine: str | None,
                             workers: int | None, offset: int,
                             length: int | None,
                             window: tuple | None) -> dict:
        """Worker-thread body of the ``bquery`` path.

        The statement runs like any SELECT, but the finalize hook —
        executing while the table latch is still held, so a concurrent
        DELETE cannot free the blob pages mid-read — resolves the
        single blob cell to a *stream* and reads only the requested
        byte range (or re-encodes the requested array window), never
        the whole blob.
        """
        def finalize(result):
            values, metrics = result
            if isinstance(values, list):
                raise protocol.WireError(
                    protocol.SQL_ERROR,
                    "a bquery statement cannot use GROUP BY")
            cells = tuple(values)
            if len(cells) != 1:
                raise protocol.WireError(
                    protocol.SQL_ERROR,
                    f"a bquery statement must select exactly one "
                    f"aggregate, got {len(cells)}")
            cell = cells[0]
            if isinstance(cell, MaxBlobHandle):
                stream = cell.open_stream(self.db.pool)
            elif isinstance(cell, (bytes, bytearray, memoryview)):
                stream = BytesBlobStream(bytes(cell))
            else:
                raise protocol.WireError(
                    protocol.SQL_ERROR,
                    f"a bquery statement must produce a blob cell, "
                    f"got {type(cell).__name__}")
            blob_len = stream.length()
            try:
                if window is not None:
                    payload = read_window_blob(stream, window[0],
                                               window[1])
                    served_offset = 0
                else:
                    end = blob_len if length is None else \
                        offset + length
                    if offset > blob_len or end > blob_len:
                        raise protocol.WireError(
                            protocol.BAD_FRAME,
                            f"byte range [{offset}, {end}) beyond "
                            f"blob of {blob_len} bytes")
                    payload = stream.read_at(offset, end - offset)
                    served_offset = offset
            except (BoundsError, ShapeError, HeaderError,
                    ValueError) as exc:
                raise protocol.WireError(protocol.BAD_FRAME,
                                         str(exc)) from exc
            return {"payload": payload, "blob_len": blob_len,
                    "offset": served_offset,
                    "metrics": metrics.to_dict()}

        return session.query(sql, cold=cold, finalize=finalize,
                             engine=engine, workers=workers)

    def _execute_sync(self, session: SqlSession, sql: str,
                      cold: bool, engine: str | None = None,
                      workers: int | None = None) -> dict:
        """Worker-thread body: execute and normalize the result."""
        result = session.execute(sql, cold=cold,
                                 finalize=self._materialize_result,
                                 engine=engine, workers=workers)
        if isinstance(result, Table):
            return {"kind": "ok", "rows": [],
                    "rowcount": 0, "metrics": None,
                    "detail": f"table {result.name} created"}
        if isinstance(result, int):
            return {"kind": "ok", "rows": [], "rowcount": result,
                    "metrics": None}
        rows, metrics = result
        return {"kind": "rows", "rows": rows, "rowcount": len(rows),
                "metrics": metrics.to_dict()}

    def _execute_partial_sync(self, session: SqlSession, sql: str,
                              cold: bool, engine: str | None = None,
                              workers: int | None = None) -> dict:
        """Worker-thread body of the ``pquery`` path: run the SELECT
        with its aggregates' mergeable partial states left unreduced
        (the shard half of distributed aggregation)."""
        payload = session.query_partial(
            sql, cold=cold, engine=engine, workers=workers,
            finalize=self._materialize_partials)
        return {"kind": "partial", "rows": payload["rows"],
                "states": payload["states"],
                "groups": payload["groups"],
                "metrics": payload["metrics"].to_dict()}

    def _materialize_partials(self, payload: dict) -> dict:
        """``query_partial`` finalize hook: resolve blob handles inside
        MIN/MAX value-list partials while the table latch is held (same
        reasoning as :meth:`_materialize_result`)."""
        def fix(partial):
            if isinstance(partial, list):
                return [cell.read_all(self.db.pool)
                        if isinstance(cell, MaxBlobHandle) else cell
                        for cell in partial]
            return partial

        if payload["states"] is not None:
            payload["states"] = [fix(s) for s in payload["states"]]
        if payload["groups"] is not None:
            payload["groups"] = [(group, [fix(s) for s in parts])
                                 for group, parts in payload["groups"]]
        return payload

    def _execute_insert_sync(self, session: SqlSession,
                             table_name: str, rows) -> int:
        """Worker-thread body of the binary bulk-load path: append the
        batch with the same discipline as a SQL INSERT — under MVCC
        the rows are encoded and their blobs written *before* the
        exclusive latch, which shrinks to the copy-on-write apply +
        publish step; with MVCC off the whole load runs latched."""
        table = session._resolve_table(table_name)
        if not self.db.mvcc:
            with self.db.latches.write_latch(table.name):
                return table.insert_many(rows)
        prep = table.prepare_insert(list(rows))
        if not prep.keys:
            return 0
        token = table.acquire_intent(min(prep.keys), max(prep.keys) + 1)
        try:
            with self.db.latches.write_latch(table.name):
                return table.apply_insert(prep)
        finally:
            table.release_intent(token)

    def _materialize_result(self, result):
        """SELECT finalize hook: normalize to a row list and resolve
        blob handles to bytes.

        Runs inside :meth:`SqlSession.query`'s read lock on purpose —
        a :class:`MaxBlobHandle` cell points at live blob pages, and
        reading them after the lock drops would race a concurrent
        DELETE/INSERT mutating or freeing those pages mid-read.
        Out-of-page handles cannot cross the wire anyway, so ship the
        bytes (charged to the shared pool).
        """
        values, metrics = result
        rows = values if isinstance(values, list) else [tuple(values)]
        rows = [tuple(cell.read_all(self.db.pool)
                      if isinstance(cell, MaxBlobHandle) else cell
                      for cell in row)
                for row in rows]
        return rows, metrics

    # -- stats ----------------------------------------------------------------

    def _stats_frame(self) -> dict:
        from ..engine import parallel
        pool = self.db.pool.snapshot_counters()
        return {
            "type": "stats",
            "server": self.config.name,
            "admission": self.admission.snapshot(),
            # Live processes across the parallel engine's worker
            # pools (0 until the first parallel query spawns one).
            "parallel_workers": parallel.active_workers(),
            "pool_counters": {
                "logical_reads": pool.logical_reads,
                "physical_reads": pool.physical_reads,
                "sequential_reads": pool.sequential_reads,
                "random_reads": pool.random_reads,
            },
            **self.stats.snapshot(),
        }


def _error(code: str, message: str, detail: object = None) -> dict:
    frame = {"type": "error", "code": code, "message": message}
    if detail is not None:
        frame["detail"] = detail
    return frame


def _resolve_blob_range(header: dict
                        ) -> tuple[int, int | None, tuple | None]:
    """Validate a ``bquery`` frame's slice keys.

    Returns ``(offset, length, window)`` — byte mode leaves ``window``
    None; window mode returns ``(offset_tuple, size_tuple)`` in
    ``window`` with the byte keys forced to their defaults.  Raises
    ``ValueError`` (answered as ``BAD_FRAME``) for malformed or mixed
    requests.
    """
    offset = header.get("offset", 0)
    length = header.get("length")
    window = header.get("window")
    if isinstance(offset, bool) or not isinstance(offset, int) or \
            offset < 0:
        raise ValueError(
            f"'offset' must be a non-negative integer, got {offset!r}")
    if length is not None and (
            isinstance(length, bool) or not isinstance(length, int)
            or length < 0):
        raise ValueError(
            f"'length' must be a non-negative integer or null, "
            f"got {length!r}")
    if window is None:
        return offset, length, None
    if offset or length is not None:
        raise ValueError(
            "a bquery is either a byte range or a window, not both")
    if not isinstance(window, dict) or \
            set(window) != {"offset", "size"}:
        raise ValueError(
            "'window' must be an object with 'offset' and 'size' "
            "lists")
    win_offset = window["offset"]
    win_size = window["size"]
    for name, values in (("offset", win_offset), ("size", win_size)):
        if not isinstance(values, list) or not values or not all(
                isinstance(v, int) and not isinstance(v, bool)
                for v in values):
            raise ValueError(
                f"window '{name}' must be a non-empty list of "
                f"integers, got {values!r}")
    if len(win_offset) != len(win_size):
        raise ValueError(
            f"window offset/size rank mismatch: {len(win_offset)} vs "
            f"{len(win_size)}")
    return 0, None, (tuple(win_offset), tuple(win_size))


class ServerThread:
    """Runs an :class:`ArrayServer` on a daemon thread's event loop.

    The embedding pattern used by the tests, the throughput benchmark
    and ``repro client --serve-rows``: start, read :attr:`port`,
    connect ordinary blocking clients, stop.  Also usable as a context
    manager.
    """

    def __init__(self, db: Database | None = None,
                 config: ServerConfig | None = None,
                 session_setup=None,
                 server: ArrayServer | None = None):
        if server is None:
            if db is None:
                raise ValueError(
                    "ServerThread needs a db or a prebuilt server")
            server = ArrayServer(db, config, session_setup)
        self.server = server
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-server")

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        error = self._take_error()
        if error is not None:
            raise error
        if self.port is None:
            raise RuntimeError("server failed to start within 30 s")
        return self

    def stop(self) -> None:
        """Stop the server and join its thread.

        Re-raises any error the serving loop died with — including a
        crash *after* startup succeeded, which otherwise would vanish
        silently (the thread is a daemon; nothing else ever reads it).
        """
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already dead — the error surfaces below
        self._thread.join(timeout=30)
        error = self._take_error()
        if error is not None:
            raise error

    def _take_error(self) -> BaseException | None:
        """Consume the pending loop error, if any (raise-once)."""
        error, self._startup_error = self._startup_error, None
        return error

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            # Startup failures are re-raised from start(); a crash
            # after _ready.set() is held for stop()/__exit__ to
            # surface.
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.server.stop()
