"""The serving layer: a concurrent array-database server and client.

The paper's array library matters because it lives inside a *server*
that many scientific clients hit at once; this package is the
reproduction's equivalent of that hosting layer.  It multiplexes
per-connection :class:`~repro.engine.sqlfront.SqlSession` objects over
one shared :class:`~repro.engine.executor.Database`, speaks a
length-prefixed JSON + binary wire protocol
(:mod:`repro.server.protocol`), bounds concurrency with admission
control (:mod:`repro.server.admission`) so overload degrades into fast
``SERVER_BUSY`` rejections instead of collapse, and aggregates the
engine's per-query metrics into server-level observability
(:mod:`repro.server.stats`).

See ``docs/SERVER.md`` for the protocol spec and deployment knobs.
"""

from .admission import AdmissionController
from .client import (
    NO_TIMEOUT,
    ArrayClient,
    AsyncArrayClient,
    QueryResult,
    QueryTimeoutError,
    ResultTooLargeError,
    RetryPolicy,
    ServerBusyError,
    ServerError,
    ShardUnavailableError,
)
from .protocol import (
    BAD_FRAME,
    INTERNAL,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    QUERY_TIMEOUT,
    RESULT_TOO_LARGE,
    SERVER_BUSY,
    SHARD_UNAVAILABLE,
    SQL_ERROR,
    FrameTooLargeError,
    ProtocolError,
    WireError,
)
from .server import ArrayServer, ServerConfig, ServerThread
from .stats import LatencyWindow, ServerStats

__all__ = [
    "AdmissionController",
    "NO_TIMEOUT",
    "ArrayClient",
    "AsyncArrayClient",
    "QueryResult",
    "RetryPolicy",
    "ServerError",
    "ServerBusyError",
    "QueryTimeoutError",
    "ResultTooLargeError",
    "ShardUnavailableError",
    "ProtocolError",
    "FrameTooLargeError",
    "WireError",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "SERVER_BUSY",
    "QUERY_TIMEOUT",
    "SQL_ERROR",
    "BAD_FRAME",
    "RESULT_TOO_LARGE",
    "SHARD_UNAVAILABLE",
    "INTERNAL",
    "ArrayServer",
    "ServerConfig",
    "ServerThread",
    "LatencyWindow",
    "ServerStats",
]
