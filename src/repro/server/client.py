"""Client library for the array-database server.

Mirrors the paper's Section 5.2 .NET client surface: the application
talks SQL, gets back typed rows whose array cells are raw ``VARBINARY``
blobs, and converts those blobs to native arrays client-side (the
paper's ``SqlArray.ToArray()`` round trip is :meth:`query_array` here,
going through :class:`repro.core.SqlArray`).

Two flavours over the same wire protocol:

* :class:`ArrayClient` — blocking sockets, for scripts, benchmarks and
  the CLI.
* :class:`AsyncArrayClient` — asyncio streams, for concurrent callers
  living inside an event loop.

Example::

    with ArrayClient("127.0.0.1", 7433) as client:
        result = client.query(
            "SELECT SUM(FloatArray.Item_1(v, 0)) FROM Tvector "
            "WITH (NOLOCK)")
        total = result.scalar()
        print(result.metrics["sim_exec_seconds"])
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field

from . import protocol

__all__ = [
    "NO_TIMEOUT",
    "ServerError",
    "ServerBusyError",
    "QueryTimeoutError",
    "ResultTooLargeError",
    "ShardUnavailableError",
    "RetryPolicy",
    "QueryResult",
    "ArrayClient",
    "AsyncArrayClient",
]

#: Pass as a query's ``timeout`` to explicitly disable the per-query
#: budget (``timeout=None`` means "use the server's default").
NO_TIMEOUT = protocol.NO_TIMEOUT


def _query_header(sql: str, cold: bool, timeout,
                  engine: str | None = None,
                  workers: int | None = None) -> dict:
    """Build a query frame header.

    ``timeout=None`` (the parameter default) omits the key so the
    server applies its configured default; a number or
    :data:`NO_TIMEOUT` is sent through for the server to validate.
    ``engine=None`` likewise omits the key (server default, the
    vector path); ``"row"``/``"vector"``/``"parallel"`` are sent
    through, as is ``workers`` (the parallel engine's process count;
    ``None`` → server default).
    """
    header = {"type": "query", "sql": sql, "cold": cold}
    if timeout is not None:
        header["timeout"] = timeout
    if engine is not None:
        header["engine"] = engine
    if workers is not None:
        header["workers"] = workers
    return header


class ServerError(Exception):
    """An error frame from the server (or a broken conversation)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServerBusyError(ServerError):
    """Admission control rejected the query; back off and retry."""


class QueryTimeoutError(ServerError):
    """The query outlived its per-query budget and was abandoned."""


class ResultTooLargeError(ServerError):
    """The query ran but its result frame would exceed the server's
    ``max_frame``; narrow the select list or raise the limit."""


class ShardUnavailableError(ServerError):
    """A shard coordinator needed a shard that is dead or stayed
    saturated through the coordinator's bounded retry.  The connection
    survives; retry once the shard recovers."""


_ERROR_TYPES = {
    protocol.SERVER_BUSY: ServerBusyError,
    protocol.QUERY_TIMEOUT: QueryTimeoutError,
    protocol.RESULT_TOO_LARGE: ResultTooLargeError,
    protocol.SHARD_UNAVAILABLE: ShardUnavailableError,
}


@dataclass(frozen=True)
class RetryPolicy:
    """Opt-in bounded exponential backoff for ``SERVER_BUSY``.

    Off by default everywhere: a client constructed without a policy
    raises :class:`ServerBusyError` on the first rejection, exactly as
    before.  With a policy, a busy reply is retried up to
    ``max_retries`` more times, sleeping ``backoff_base * 2**attempt``
    seconds (capped at ``backoff_cap``) before each retry.

    Only ``SERVER_BUSY`` is ever retried: it is the one reply that
    guarantees the statement did *not* run.  A ``QUERY_TIMEOUT`` means
    the query consumed its whole server-side budget — retrying would
    double the damage — and the other codes are not transient.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** attempt))


def _raise_for_error(header: dict) -> None:
    if header.get("type") == "error":
        code = header.get("code", protocol.INTERNAL)
        exc_type = _ERROR_TYPES.get(code, ServerError)
        raise exc_type(code, header.get("message", ""))


@dataclass
class QueryResult:
    """One statement's outcome.

    Attributes:
        kind: ``"rows"`` for SELECT, ``"ok"`` for DDL/DML.
        rows: Result rows (blob cells are ``bytes``).
        rowcount: Rows returned, or rows affected for DDL/DML.
        metrics: The server's :meth:`QueryMetrics.to_dict` payload
            (None for DDL/DML).
        elapsed_seconds: Server-side wall latency of the call.
    """

    kind: str
    rows: list = field(default_factory=list)
    rowcount: int = 0
    metrics: dict | None = None
    elapsed_seconds: float = 0.0

    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"result is not scalar ({self.rowcount} rows)")
        return self.rows[0][0]

    def metrics_obj(self):
        """The metrics as a :class:`~repro.engine.QueryMetrics`."""
        from ..engine.metrics import QueryMetrics

        if self.metrics is None:
            raise ValueError("statement carried no metrics")
        return QueryMetrics.from_dict(self.metrics)


def _parse_result(header: dict, blobs) -> QueryResult:
    _raise_for_error(header)
    if header.get("type") != "result":
        raise ServerError(protocol.INTERNAL,
                          f"expected a result frame, got "
                          f"{header.get('type')!r}")
    return QueryResult(
        kind=header.get("kind", "rows"),
        rows=protocol.unpack_rows(header.get("rows", []), blobs),
        rowcount=header.get("rowcount", 0),
        metrics=header.get("metrics"),
        elapsed_seconds=header.get("elapsed_seconds", 0.0))


class ArrayClient:
    """Blocking client; connects (and reads the hello) on construction.

    Args:
        host / port: Server address.
        timeout: Socket timeout for connect and replies (seconds).
        max_frame: Largest accepted reply frame.
        retry: Optional :class:`RetryPolicy` enabling bounded backoff
            on ``SERVER_BUSY`` (default None: fail fast, as before).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7433,
                 timeout: float | None = 60.0,
                 max_frame: int = protocol.MAX_FRAME_BYTES,
                 retry: RetryPolicy | None = None):
        self._max_frame = max_frame
        self._retry = retry
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello, _ = self._request_raw(None)
        if hello.get("type") != "hello":
            raise ServerError(protocol.INTERNAL,
                              f"expected hello, got {hello!r}")
        self.server_name = hello.get("server", "")
        self.session_id = hello.get("session_id")

    # -- plumbing -----------------------------------------------------------

    def _request_raw(self, header: dict | None,
                     blobs=()) -> tuple[dict, list[bytes]]:
        if header is not None:
            protocol.write_frame_sock(self._sock, header, blobs)
        reply = protocol.read_frame_sock(self._sock, self._max_frame)
        if reply is None:
            raise ServerError(protocol.INTERNAL,
                              "server closed the connection")
        return reply

    # -- public API ----------------------------------------------------------

    def query(self, sql: str, cold: bool = True,
              timeout: float | None = None,
              engine: str | None = None,
              workers: int | None = None) -> QueryResult:
        """Execute one statement; raises :class:`ServerBusyError`,
        :class:`QueryTimeoutError` or :class:`ServerError`.

        ``timeout=None`` uses the server's default budget; pass a
        positive number to override it or :data:`NO_TIMEOUT` to
        disable it for this query.  ``engine`` picks the execution
        path for a SELECT — ``None`` for the server default (vector),
        or ``"row"``/``"vector"``/``"parallel"`` explicitly; the reply
        metrics' ``"engine"`` key reports which path actually ran (a
        parallel request may legitimately come back ``"vector"`` when
        the plan cannot parallelize).  ``workers`` sizes the parallel
        engine's process pool for this query (``None`` → server
        default).

        With a :class:`RetryPolicy`, ``SERVER_BUSY`` rejections are
        retried with bounded exponential backoff; every other error
        (including ``QUERY_TIMEOUT``) raises immediately.
        """
        attempt = 0
        while True:
            try:
                header, blobs = self._request_raw(
                    _query_header(sql, cold, timeout, engine, workers))
                return _parse_result(header, blobs)
            except ServerBusyError:
                if self._retry is None or \
                        attempt >= self._retry.max_retries:
                    raise
                time.sleep(self._retry.delay(attempt))
                attempt += 1

    execute = query

    def query_array(self, sql: str, cold: bool = True,
                    timeout: float | None = None):
        """Run a query whose scalar result is an array blob and decode
        it to a NumPy array (the paper's client-side ``ToArray()``)."""
        from ..core import SqlArray

        blob = self.query(sql, cold=cold, timeout=timeout).scalar()
        if not isinstance(blob, (bytes, bytearray)):
            raise ValueError(
                f"query returned {type(blob).__name__}, not a blob")
        return SqlArray.from_blob(blob).to_numpy()

    def stats(self) -> dict:
        """The server's stats snapshot (admission, latency, IO)."""
        header, _ = self._request_raw({"type": "stats"})
        _raise_for_error(header)
        return header

    def ping(self) -> None:
        header, _ = self._request_raw({"type": "ping"})
        _raise_for_error(header)
        if header.get("type") != "pong":
            raise ServerError(protocol.INTERNAL,
                              f"expected pong, got {header!r}")

    def close(self) -> None:
        """Say goodbye (best effort) and drop the socket."""
        try:
            protocol.write_frame_sock(self._sock, {"type": "close"})
            protocol.read_frame_sock(self._sock, self._max_frame)
        except (OSError, protocol.ProtocolError):
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ArrayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncArrayClient:
    """Asyncio twin of :class:`ArrayClient`.

    Use :meth:`connect` (or ``async with AsyncArrayClient.connect(...)``
    via :func:`contextlib.asynccontextmanager`-free protocol below)::

        client = await AsyncArrayClient.connect(host, port)
        result = await client.query("SELECT COUNT(*) FROM T")
        await client.close()
    """

    def __init__(self, reader, writer,
                 max_frame: int = protocol.MAX_FRAME_BYTES,
                 retry: RetryPolicy | None = None):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._retry = retry
        self.server_name = ""
        self.session_id = None

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 7433,
                      max_frame: int = protocol.MAX_FRAME_BYTES,
                      retry: RetryPolicy | None = None
                      ) -> "AsyncArrayClient":
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame, retry)
        hello = await protocol.read_frame(reader, max_frame)
        if hello is None or hello[0].get("type") != "hello":
            raise ServerError(protocol.INTERNAL,
                              f"expected hello, got {hello!r}")
        client.server_name = hello[0].get("server", "")
        client.session_id = hello[0].get("session_id")
        return client

    async def _request(self, header: dict) -> tuple[dict, list[bytes]]:
        await protocol.write_frame(self._writer, header)
        reply = await protocol.read_frame(self._reader, self._max_frame)
        if reply is None:
            raise ServerError(protocol.INTERNAL,
                              "server closed the connection")
        return reply

    async def query(self, sql: str, cold: bool = True,
                    timeout: float | None = None,
                    engine: str | None = None,
                    workers: int | None = None) -> QueryResult:
        """Asyncio twin of :meth:`ArrayClient.query` (same ``timeout``,
        ``engine``, ``workers`` and ``SERVER_BUSY``-retry semantics)."""
        import asyncio

        attempt = 0
        while True:
            try:
                header, blobs = await self._request(
                    _query_header(sql, cold, timeout, engine, workers))
                return _parse_result(header, blobs)
            except ServerBusyError:
                if self._retry is None or \
                        attempt >= self._retry.max_retries:
                    raise
                await asyncio.sleep(self._retry.delay(attempt))
                attempt += 1

    async def stats(self) -> dict:
        header, _ = await self._request({"type": "stats"})
        _raise_for_error(header)
        return header

    async def ping(self) -> None:
        header, _ = await self._request({"type": "ping"})
        _raise_for_error(header)
        if header.get("type") != "pong":
            raise ServerError(protocol.INTERNAL,
                              f"expected pong, got {header!r}")

    async def close(self) -> None:
        try:
            await self._request({"type": "close"})
        except (OSError, ServerError, protocol.ProtocolError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncArrayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
