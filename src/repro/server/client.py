"""Client library for the array-database server.

Mirrors the paper's Section 5.2 .NET client surface: the application
talks SQL, gets back typed rows whose array cells are raw ``VARBINARY``
blobs, and converts those blobs to native arrays client-side (the
paper's ``SqlArray.ToArray()`` round trip is :meth:`query_array` here,
going through :class:`repro.core.SqlArray`).

Two flavours over the same wire protocol:

* :class:`ArrayClient` — blocking sockets, for scripts, benchmarks and
  the CLI.
* :class:`AsyncArrayClient` — asyncio streams, for concurrent callers
  living inside an event loop.

Example::

    with ArrayClient("127.0.0.1", 7433) as client:
        result = client.query(
            "SELECT SUM(FloatArray.Item_1(v, 0)) FROM Tvector "
            "WITH (NOLOCK)")
        total = result.scalar()
        print(result.metrics["sim_exec_seconds"])
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, field

from . import protocol

__all__ = [
    "NO_TIMEOUT",
    "ServerError",
    "ServerBusyError",
    "QueryTimeoutError",
    "ResultTooLargeError",
    "ShardUnavailableError",
    "RetryPolicy",
    "QueryResult",
    "BlobSlice",
    "ArrayClient",
    "AsyncArrayClient",
]

#: Pass as a query's ``timeout`` to explicitly disable the per-query
#: budget (``timeout=None`` means "use the server's default").
NO_TIMEOUT = protocol.NO_TIMEOUT


def _wire_mode() -> str:
    """The request frame type ``query()`` uses for plain statements.

    ``REPRO_WIRE=prepared`` routes every statement through ``pexec``
    (the server's prepared-plan cache) instead of ``query`` — replies
    are ordinary result frames, so the switch is transparent to
    callers.  Used by CI to re-run the whole server suite over the
    pipelined wire.
    """
    return "pexec" if os.environ.get("REPRO_WIRE") == "prepared" \
        else "query"


def _query_header(sql: str, cold: bool, timeout,
                  engine: str | None = None,
                  workers: int | None = None) -> dict:
    """Build a query frame header.

    ``timeout=None`` (the parameter default) omits the key so the
    server applies its configured default; a number or
    :data:`NO_TIMEOUT` is sent through for the server to validate.
    ``engine=None`` likewise omits the key (server default, the
    vector path); ``"row"``/``"vector"``/``"parallel"`` are sent
    through, as is ``workers`` (the parallel engine's process count;
    ``None`` → server default).
    """
    header = {"type": "query", "sql": sql, "cold": cold}
    if timeout is not None:
        header["timeout"] = timeout
    if engine is not None:
        header["engine"] = engine
    if workers is not None:
        header["workers"] = workers
    return header


class ServerError(Exception):
    """An error frame from the server (or a broken conversation).

    ``detail`` mirrors the frame's optional ``detail`` key — structured
    context such as a shard coordinator's partial-progress report for
    a cross-shard write that died halfway (``partial_rowcount``,
    ``applied_shards``, ``failed_shards``); ``None`` when the frame
    carried none.
    """

    def __init__(self, code: str, message: str,
                 detail: object = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.detail = detail


class ServerBusyError(ServerError):
    """Admission control rejected the query; back off and retry."""


class QueryTimeoutError(ServerError):
    """The query outlived its per-query budget and was abandoned."""


class ResultTooLargeError(ServerError):
    """The query ran but its result frame would exceed the server's
    ``max_frame``; narrow the select list or raise the limit."""


class ShardUnavailableError(ServerError):
    """A shard coordinator needed a shard that is dead or stayed
    saturated through the coordinator's bounded retry.  The connection
    survives; retry once the shard recovers."""


_ERROR_TYPES = {
    protocol.SERVER_BUSY: ServerBusyError,
    protocol.QUERY_TIMEOUT: QueryTimeoutError,
    protocol.RESULT_TOO_LARGE: ResultTooLargeError,
    protocol.SHARD_UNAVAILABLE: ShardUnavailableError,
}


@dataclass(frozen=True)
class RetryPolicy:
    """Opt-in bounded exponential backoff for ``SERVER_BUSY``.

    Off by default everywhere: a client constructed without a policy
    raises :class:`ServerBusyError` on the first rejection, exactly as
    before.  With a policy, a busy reply is retried up to
    ``max_retries`` more times, sleeping ``backoff_base * 2**attempt``
    seconds (capped at ``backoff_cap``) before each retry.

    Only ``SERVER_BUSY`` is ever retried: it is the one reply that
    guarantees the statement did *not* run.  A ``QUERY_TIMEOUT`` means
    the query consumed its whole server-side budget — retrying would
    double the damage — and the other codes are not transient.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** attempt))


def _raise_for_error(header: dict) -> None:
    if header.get("type") == "error":
        code = header.get("code", protocol.INTERNAL)
        exc_type = _ERROR_TYPES.get(code, ServerError)
        raise exc_type(code, header.get("message", ""),
                       header.get("detail"))


@dataclass
class QueryResult:
    """One statement's outcome.

    Attributes:
        kind: ``"rows"`` for SELECT, ``"ok"`` for DDL/DML.
        rows: Result rows (blob cells are ``bytes``).
        rowcount: Rows returned, or rows affected for DDL/DML.
        metrics: The server's :meth:`QueryMetrics.to_dict` payload
            (None for DDL/DML).
        elapsed_seconds: Server-side wall latency of the call.
    """

    kind: str
    rows: list = field(default_factory=list)
    rowcount: int = 0
    metrics: dict | None = None
    elapsed_seconds: float = 0.0

    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"result is not scalar ({self.rowcount} rows)")
        return self.rows[0][0]

    def metrics_obj(self):
        """The metrics as a :class:`~repro.engine.QueryMetrics`."""
        from ..engine.metrics import QueryMetrics

        if self.metrics is None:
            raise ValueError("statement carried no metrics")
        return QueryMetrics.from_dict(self.metrics)


@dataclass(frozen=True)
class BlobSlice:
    """One ``bquery``'s worth of partial-blob bytes.

    Attributes:
        data: The slice payload (byte mode: the raw bytes; window
            mode: a standalone array blob for ``SqlArray.from_blob``).
        blob_len: Length of the *whole* stored blob — the bytes that
            did NOT have to cross the wire are ``blob_len -
            len(data)``.
        offset: Byte offset the slice was served from (0 in window
            mode).
        chunks: ``bchunk`` frames the stream took.
        wire_bytes: Payload bytes received (== ``len(data)``; kept
            separate so callers can assert on wire traffic directly).
        metrics: Cold-run metrics from the final chunk.
        elapsed_seconds: Server-side latency of the statement.
    """

    data: bytes
    blob_len: int
    offset: int
    chunks: int
    wire_bytes: int
    metrics: dict | None
    elapsed_seconds: float


def _parse_result(header: dict, blobs) -> QueryResult:
    _raise_for_error(header)
    if header.get("type") != "result":
        raise ServerError(protocol.INTERNAL,
                          f"expected a result frame, got "
                          f"{header.get('type')!r}")
    return QueryResult(
        kind=header.get("kind", "rows"),
        rows=protocol.unpack_rows(header.get("rows", []), blobs),
        rowcount=header.get("rowcount", 0),
        metrics=header.get("metrics"),
        elapsed_seconds=header.get("elapsed_seconds", 0.0))


class ArrayClient:
    """Blocking client; connects (and reads the hello) on construction.

    Args:
        host / port: Server address.
        timeout: Socket timeout for connect and replies (seconds).
        max_frame: Largest accepted reply frame.
        retry: Optional :class:`RetryPolicy` enabling bounded backoff
            on ``SERVER_BUSY`` (default None: fail fast, as before).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7433,
                 timeout: float | None = 60.0,
                 max_frame: int = protocol.MAX_FRAME_BYTES,
                 retry: RetryPolicy | None = None):
        self._max_frame = max_frame
        self._retry = retry
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello, _ = self._request_raw(None)
        if hello.get("type") != "hello":
            raise ServerError(protocol.INTERNAL,
                              f"expected hello, got {hello!r}")
        self.server_name = hello.get("server", "")
        self.session_id = hello.get("session_id")

    # -- plumbing -----------------------------------------------------------

    def _request_raw(self, header: dict | None,
                     blobs=()) -> tuple[dict, list[bytes]]:
        if header is not None:
            protocol.write_frame_sock(self._sock, header, blobs)
        reply = protocol.read_frame_sock(self._sock, self._max_frame)
        if reply is None:
            raise ServerError(protocol.INTERNAL,
                              "server closed the connection")
        return reply

    # -- public API ----------------------------------------------------------

    def query(self, sql: str, cold: bool = True,
              timeout: float | None = None,
              engine: str | None = None,
              workers: int | None = None) -> QueryResult:
        """Execute one statement; raises :class:`ServerBusyError`,
        :class:`QueryTimeoutError` or :class:`ServerError`.

        ``timeout=None`` uses the server's default budget; pass a
        positive number to override it or :data:`NO_TIMEOUT` to
        disable it for this query.  ``engine`` picks the execution
        path for a SELECT — ``None`` for the server default (vector),
        or ``"row"``/``"vector"``/``"parallel"`` explicitly; the reply
        metrics' ``"engine"`` key reports which path actually ran (a
        parallel request may legitimately come back ``"vector"`` when
        the plan cannot parallelize).  ``workers`` sizes the parallel
        engine's process pool for this query (``None`` → server
        default).

        With a :class:`RetryPolicy`, ``SERVER_BUSY`` rejections are
        retried with bounded exponential backoff; every other error
        (including ``QUERY_TIMEOUT``) raises immediately.
        """
        attempt = 0
        request = dict(_query_header(sql, cold, timeout, engine,
                                     workers), type=_wire_mode())
        while True:
            try:
                header, blobs = self._request_raw(request)
                return _parse_result(header, blobs)
            except ServerBusyError:
                if self._retry is None or \
                        attempt >= self._retry.max_retries:
                    raise
                time.sleep(self._retry.delay(attempt))
                attempt += 1

    execute = query

    def prepare(self, sql: str) -> dict:
        """Parse and plan a SELECT server-side (cached by statement
        text); returns the ``prepared`` reply's ``{"kind", "table"}``.
        Optional — :meth:`query_pipeline` auto-prepares on first use —
        but preparing up front moves the parse cost out of the first
        pipelined batch."""
        header, _ = self._request_raw({"type": "prepare", "sql": sql})
        _raise_for_error(header)
        if header.get("type") != "prepared":
            raise ServerError(protocol.INTERNAL,
                              f"expected prepared, got "
                              f"{header.get('type')!r}")
        return {"kind": header.get("kind"),
                "table": header.get("table")}

    def query_pipeline(self, statements, cold: bool = True,
                       timeout: float | None = None,
                       engine: str | None = None,
                       workers: int | None = None,
                       return_exceptions: bool = False) -> list:
        """Execute many statements pipelined: every ``pexec`` frame is
        sent before the first reply is read, so the round trip is paid
        once per *batch* instead of once per statement.

        Replies come back in statement order.  A failed statement's
        slot holds its :class:`ServerError`; with the default
        ``return_exceptions=False`` the first error is raised *after*
        all replies are drained (the connection stays usable either
        way).
        """
        statements = list(statements)
        buffer = bytearray()
        for sql in statements:
            header = dict(_query_header(sql, cold, timeout, engine,
                                        workers), type="pexec")
            buffer += protocol.encode_frame(header)
        if buffer:
            self._sock.sendall(bytes(buffer))
        results: list = []
        first_error: ServerError | None = None
        # The server answers a batch with one buffered write, so the
        # replies arrive in a few large segments: read through a local
        # buffer and slice frames out of it instead of paying two
        # recv() calls per reply.
        replies = bytearray()
        for _ in statements:
            while len(replies) < 4:
                self._recv_into(replies)
            (total,) = protocol._U32.unpack(replies[:4])
            if total > self._max_frame:
                raise ServerError(
                    protocol.INTERNAL,
                    f"reply frame of {total} bytes exceeds the "
                    f"client max_frame {self._max_frame}")
            while len(replies) - 4 < total:
                self._recv_into(replies)
            payload = bytes(replies[4:4 + total])
            del replies[:4 + total]
            header, blobs = protocol.decode_frame(payload)
            try:
                results.append(_parse_result(header, blobs))
            except ServerError as exc:
                results.append(exc)
                if first_error is None:
                    first_error = exc
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    def _recv_into(self, buffer: bytearray) -> None:
        chunk = self._sock.recv(1 << 16)
        if not chunk:
            raise ServerError(protocol.INTERNAL,
                              "server closed the connection")
        buffer += chunk

    def query_blob(self, sql: str, offset: int = 0,
                   length: int | None = None, cold: bool = True,
                   timeout: float | None = None,
                   chunk_bytes: int | None = None) -> BlobSlice:
        """Read one byte range of a blob-valued scalar SELECT without
        shipping the rest of the blob.

        The server walks the blob B-tree's pointer chain to the pages
        the range covers and streams the slice back as bounded
        ``bchunk`` frames; :attr:`BlobSlice.wire_bytes` is exactly the
        slice, not the blob.  ``length=None`` reads to the end.
        """
        header: dict = {"type": "bquery", "sql": sql, "cold": cold,
                        "offset": int(offset)}
        if length is not None:
            header["length"] = int(length)
        if timeout is not None:
            header["timeout"] = timeout
        if chunk_bytes is not None:
            header["chunk_bytes"] = int(chunk_bytes)
        return self._read_bquery(header)

    def _read_bquery(self, header: dict) -> BlobSlice:
        protocol.write_frame_sock(self._sock, header)
        parts: list[bytes] = []
        seq = 0
        while True:
            reply, blobs = self._request_raw(None)
            if seq == 0:
                _raise_for_error(reply)
            if reply.get("type") != "bchunk" or reply.get("seq") != seq:
                raise ServerError(
                    protocol.INTERNAL,
                    f"expected bchunk {seq}, got {reply!r}")
            parts.append(blobs[0] if blobs else b"")
            seq += 1
            if reply.get("eof"):
                data = b"".join(parts)
                return BlobSlice(
                    data=data,
                    blob_len=reply.get("blob_len", 0),
                    offset=reply.get("offset", 0),
                    chunks=seq,
                    wire_bytes=len(data),
                    metrics=reply.get("metrics"),
                    elapsed_seconds=reply.get("elapsed_seconds")
                    or 0.0)

    def query_array(self, sql: str, cold: bool = True,
                    timeout: float | None = None, slice=None):
        """Run a query whose scalar result is an array blob and decode
        it to a NumPy array (the paper's client-side ``ToArray()``).

        With ``slice=(offset, size)`` (one entry per dimension) only
        the requested window crosses the wire: the server reads the
        window's byte runs through the blob stream and re-encodes them
        as a standalone array blob — bit-identical to slicing the full
        array client-side.
        """
        from ..core import SqlArray

        if slice is not None:
            win_offset, win_size = slice
            header: dict = {
                "type": "bquery", "sql": sql, "cold": cold,
                "window": {"offset": [int(o) for o in win_offset],
                           "size": [int(s) for s in win_size]}}
            if timeout is not None:
                header["timeout"] = timeout
            result = self._read_bquery(header)
            return SqlArray.from_blob(result.data).to_numpy()
        blob = self.query(sql, cold=cold, timeout=timeout).scalar()
        if not isinstance(blob, (bytes, bytearray)):
            raise ValueError(
                f"query returned {type(blob).__name__}, not a blob")
        return SqlArray.from_blob(blob).to_numpy()

    def stats(self) -> dict:
        """The server's stats snapshot (admission, latency, IO)."""
        header, _ = self._request_raw({"type": "stats"})
        _raise_for_error(header)
        return header

    def ping(self) -> None:
        header, _ = self._request_raw({"type": "ping"})
        _raise_for_error(header)
        if header.get("type") != "pong":
            raise ServerError(protocol.INTERNAL,
                              f"expected pong, got {header!r}")

    def close(self) -> None:
        """Say goodbye (best effort) and drop the socket."""
        try:
            protocol.write_frame_sock(self._sock, {"type": "close"})
            protocol.read_frame_sock(self._sock, self._max_frame)
        except (OSError, protocol.ProtocolError):
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ArrayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncArrayClient:
    """Asyncio twin of :class:`ArrayClient`.

    Use :meth:`connect` (or ``async with AsyncArrayClient.connect(...)``
    via :func:`contextlib.asynccontextmanager`-free protocol below)::

        client = await AsyncArrayClient.connect(host, port)
        result = await client.query("SELECT COUNT(*) FROM T")
        await client.close()
    """

    def __init__(self, reader, writer,
                 max_frame: int = protocol.MAX_FRAME_BYTES,
                 retry: RetryPolicy | None = None):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._retry = retry
        self.server_name = ""
        self.session_id = None

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 7433,
                      max_frame: int = protocol.MAX_FRAME_BYTES,
                      retry: RetryPolicy | None = None
                      ) -> "AsyncArrayClient":
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame, retry)
        hello = await protocol.read_frame(reader, max_frame)
        if hello is None or hello[0].get("type") != "hello":
            raise ServerError(protocol.INTERNAL,
                              f"expected hello, got {hello!r}")
        client.server_name = hello[0].get("server", "")
        client.session_id = hello[0].get("session_id")
        return client

    async def _request(self, header: dict) -> tuple[dict, list[bytes]]:
        await protocol.write_frame(self._writer, header)
        reply = await protocol.read_frame(self._reader, self._max_frame)
        if reply is None:
            raise ServerError(protocol.INTERNAL,
                              "server closed the connection")
        return reply

    async def query(self, sql: str, cold: bool = True,
                    timeout: float | None = None,
                    engine: str | None = None,
                    workers: int | None = None) -> QueryResult:
        """Asyncio twin of :meth:`ArrayClient.query` (same ``timeout``,
        ``engine``, ``workers`` and ``SERVER_BUSY``-retry semantics)."""
        import asyncio

        attempt = 0
        request = dict(_query_header(sql, cold, timeout, engine,
                                     workers), type=_wire_mode())
        while True:
            try:
                header, blobs = await self._request(request)
                return _parse_result(header, blobs)
            except ServerBusyError:
                if self._retry is None or \
                        attempt >= self._retry.max_retries:
                    raise
                await asyncio.sleep(self._retry.delay(attempt))
                attempt += 1

    async def prepare(self, sql: str) -> dict:
        """Asyncio twin of :meth:`ArrayClient.prepare`."""
        header, _ = await self._request({"type": "prepare",
                                         "sql": sql})
        _raise_for_error(header)
        if header.get("type") != "prepared":
            raise ServerError(protocol.INTERNAL,
                              f"expected prepared, got "
                              f"{header.get('type')!r}")
        return {"kind": header.get("kind"),
                "table": header.get("table")}

    async def query_pipeline(self, statements, cold: bool = True,
                             timeout: float | None = None,
                             engine: str | None = None,
                             workers: int | None = None,
                             return_exceptions: bool = False) -> list:
        """Asyncio twin of :meth:`ArrayClient.query_pipeline`: all
        ``pexec`` frames are written (and drained) before the first
        reply is awaited."""
        statements = list(statements)
        for sql in statements:
            header = dict(_query_header(sql, cold, timeout, engine,
                                        workers), type="pexec")
            self._writer.write(protocol.encode_frame(header))
        if statements:
            await self._writer.drain()
        results: list = []
        first_error: ServerError | None = None
        for _ in statements:
            reply = await protocol.read_frame(self._reader,
                                              self._max_frame)
            if reply is None:
                raise ServerError(protocol.INTERNAL,
                                  "server closed the connection")
            try:
                results.append(_parse_result(*reply))
            except ServerError as exc:
                results.append(exc)
                if first_error is None:
                    first_error = exc
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    async def query_blob(self, sql: str, offset: int = 0,
                         length: int | None = None, cold: bool = True,
                         timeout: float | None = None,
                         chunk_bytes: int | None = None) -> BlobSlice:
        """Asyncio twin of :meth:`ArrayClient.query_blob`."""
        header: dict = {"type": "bquery", "sql": sql, "cold": cold,
                        "offset": int(offset)}
        if length is not None:
            header["length"] = int(length)
        if timeout is not None:
            header["timeout"] = timeout
        if chunk_bytes is not None:
            header["chunk_bytes"] = int(chunk_bytes)
        return await self._read_bquery(header)

    async def _read_bquery(self, header: dict) -> BlobSlice:
        await protocol.write_frame(self._writer, header)
        parts: list[bytes] = []
        seq = 0
        while True:
            frame = await protocol.read_frame(self._reader,
                                              self._max_frame)
            if frame is None:
                raise ServerError(protocol.INTERNAL,
                                  "server closed the connection")
            reply, blobs = frame
            if seq == 0:
                _raise_for_error(reply)
            if reply.get("type") != "bchunk" or reply.get("seq") != seq:
                raise ServerError(
                    protocol.INTERNAL,
                    f"expected bchunk {seq}, got {reply!r}")
            parts.append(blobs[0] if blobs else b"")
            seq += 1
            if reply.get("eof"):
                data = b"".join(parts)
                return BlobSlice(
                    data=data,
                    blob_len=reply.get("blob_len", 0),
                    offset=reply.get("offset", 0),
                    chunks=seq,
                    wire_bytes=len(data),
                    metrics=reply.get("metrics"),
                    elapsed_seconds=reply.get("elapsed_seconds")
                    or 0.0)

    async def query_array(self, sql: str, cold: bool = True,
                          timeout: float | None = None, slice=None):
        """Asyncio twin of :meth:`ArrayClient.query_array` (including
        the windowed ``slice=`` partial-read path)."""
        from ..core import SqlArray

        if slice is not None:
            win_offset, win_size = slice
            header: dict = {
                "type": "bquery", "sql": sql, "cold": cold,
                "window": {"offset": [int(o) for o in win_offset],
                           "size": [int(s) for s in win_size]}}
            if timeout is not None:
                header["timeout"] = timeout
            result = await self._read_bquery(header)
            return SqlArray.from_blob(result.data).to_numpy()
        blob = (await self.query(sql, cold=cold,
                                 timeout=timeout)).scalar()
        if not isinstance(blob, (bytes, bytearray)):
            raise ValueError(
                f"query returned {type(blob).__name__}, not a blob")
        return SqlArray.from_blob(blob).to_numpy()

    async def stats(self) -> dict:
        header, _ = await self._request({"type": "stats"})
        _raise_for_error(header)
        return header

    async def ping(self) -> None:
        header, _ = await self._request({"type": "ping"})
        _raise_for_error(header)
        if header.get("type") != "pong":
            raise ServerError(protocol.INTERNAL,
                              f"expected pong, got {header!r}")

    async def close(self) -> None:
        try:
            await self._request({"type": "close"})
        except (OSError, ServerError, protocol.ProtocolError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncArrayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
