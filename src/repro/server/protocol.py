"""The wire protocol: length-prefixed frames of JSON plus raw blobs.

The paper's clients talk to SQL Server over TDS; this reproduction's
serving layer speaks a much smaller protocol with the same split
personality — a structured header for query text, result rows and
metrics, and an *uninterpreted binary tail* for array blobs, so a
gigabyte ``VARBINARY`` never round-trips through base64 or JSON string
escaping.

Frame layout (all integers big-endian)::

    +-------------+--------------+---------------+-----------------+
    | total: u32  | hdr_len: u32 | header (JSON) | blob bytes ...  |
    +-------------+--------------+---------------+-----------------+

``total`` counts everything after itself.  The header is a UTF-8 JSON
object with at least a ``"type"`` key; if it carries blobs it lists
their lengths under ``"blobs"`` and the binary tail is their
concatenation in order.  Inside JSON-encoded rows a blob-valued cell
is the marker object ``{"$blob": i}`` referencing tail blob ``i``.

Message types
-------------

Client to server:

``query``   ``{"type": "query", "sql": str, "cold": bool,
"timeout": float | "none",
"engine": "row" | "vector" | "parallel" | null, "workers": int | null}``

A query's ``timeout`` key is optional: absent or ``null`` means "use
the server's configured default"; a positive finite number is the
budget in seconds; the string sentinel :data:`NO_TIMEOUT` (``"none"``)
explicitly disables the budget.  Anything else is rejected with a
``BAD_FRAME`` error reply (the connection survives).  The optional
``engine`` key picks the execution path for a SELECT — ``"row"``
(tuple at a time), ``"vector"`` (columnar batches, the default) or
``"parallel"`` (morsel-driven multi-process); any other value is a
``BAD_FRAME``.  The optional ``workers`` key (a positive integer)
sizes the parallel engine's process pool; absent or ``null`` means
the server's configured default.  All paths return identical results
and cold-run metrics (the metrics dict's ``"engine"`` key reports
which one actually ran — a parallel request falls back to ``vector``
when its plan cannot parallelize).
``stats``   ``{"type": "stats"}``
``ping``    ``{"type": "ping"}``
``close``   ``{"type": "close"}``
``pquery``  ``{"type": "pquery", "sql": str, "cold": bool,
"timeout": float | "none",
"engine": "row" | "vector" | "parallel" | null, "workers": int | null}``

A partial-state query: same key semantics and validation as ``query``,
but the statement must be an aggregate SELECT and the reply is a
``presult`` frame carrying the aggregates' *unreduced* mergeable
partial states instead of finished values.  This is the shard half of
distributed aggregation — a coordinator scatters one ``pquery`` per
shard, merges the partial states in shard order, and finishes the
aggregates itself (see ``docs/SHARDING.md``).

``insert``  ``{"type": "insert", "table": str, "rows": [...],
"timeout": float | "none"}``

A binary bulk load: ``rows`` are packed like result rows (blob cells
as ``{"$blob": i}`` markers into the frame tail) and appended to the
named table in one :meth:`Table.insert_many` batch under its exclusive
latch.  Answered with an ok ``result`` frame whose ``rowcount`` is the
number of rows inserted.

``prepare`` ``{"type": "prepare", "sql": str}``

Parse and plan an aggregate SELECT server-side, caching the plan in
the connection's session keyed by exact SQL text.  Answered with a
``prepared`` frame (or an ``error`` with ``SQL_ERROR``).  Preparing is
idempotent and optional — a ``pexec`` for unprepared text auto-prepares
on first execution.

``pexec``   ``{"type": "pexec", "sql": str, "cold": bool,
"timeout": float | "none",
"engine": "row" | "vector" | "parallel" | null, "workers": int | null}``

Execute a statement through the session's prepared-plan cache: same
key semantics, validation and reply (``result``/``error``) as
``query``, but a SELECT skips per-request parsing and planning.
``pexec`` is the one request type that may be **pipelined**: a client
may send N ``pexec`` frames back-to-back before reading the N replies.
Replies always come back in request order, one per request; a failed
statement answers with an ``error`` frame in its slot without aborting
the later pipelined statements.  The server drains contiguous buffered
``pexec`` frames into one admission slot and one worker-pool hop (the
batch shares the first frame's timeout budget; on timeout every
statement in the batch answers ``QUERY_TIMEOUT``).

``bquery``  ``{"type": "bquery", "sql": str, "cold": bool,
"timeout": float | "none",
"engine": "row" | "vector" | "parallel" | null, "workers": int | null,
"offset": int, "length": int | null,
"window": {"offset": [int, ...], "size": [int, ...]} | null,
"chunk_bytes": int | null}``

A streamed *partial-blob* read: the statement must produce a single
blob-valued cell (``SELECT MAX(m) FROM t WHERE id = k``, say).  The
server resolves the cell to a blob *handle* under the table latch and
reads only the requested bytes — a byte range (``offset``/``length``;
``length`` null means "to the end") or a ``window`` (a
``Subarray``-shaped slice of a stored array, served by walking the
blob B-tree's pointer chain and re-encoded as a standalone array
blob).  The reply is a sequence of ``bchunk`` frames, each carrying at
most ``chunk_bytes`` of payload (server-clamped), so a corner of a
huge blob never trips ``RESULT_TOO_LARGE``.  Total payload on the
wire is the slice's bytes, not the blob's.

Server to client:

``hello``   ``{"type": "hello", "server": str, "protocol": 1}``
``result``  ``{"type": "result", "kind": "rows" | "ok",
"rows": [...], "rowcount": int, "metrics": dict | None}``
``error``   ``{"type": "error", "code": str, "message": str,
"detail": object | null}``

The optional ``detail`` key carries structured, machine-readable
context for the failure; absent and ``null`` mean "no detail".  A
shard coordinator uses it to report **partial progress** of a
cross-shard write that died halfway: a ``SHARD_UNAVAILABLE`` reply to
a broadcast DELETE or a bulk insert carries
``{"partial_rowcount": int, "applied_shards": [int, ...],
"failed_shards": [int, ...]}`` (and per-shard rowcounts under
``"applied"``), so the caller knows exactly which shards committed
before the failure instead of learning nothing.
``stats``   ``{"type": "stats", ...snapshot...}``
``pong``    ``{"type": "pong"}``
``goodbye`` ``{"type": "goodbye"}``
``prepared`` ``{"type": "prepared", "sql": str, "kind": str,
"table": str}``

The reply to a ``prepare``: echoes the statement text and reports the
cached plan's access-path ``kind`` (``"scan"``, ``"point"``,
``"index"`` or ``"grouped"``) and target ``table``.

``bchunk`` ``{"type": "bchunk", "seq": int, "eof": bool,
"blob_len": int, "offset": int, "length": int,
"metrics": dict | null, "elapsed_seconds": float | null}``

One chunk of a ``bquery`` reply, carrying exactly one tail blob (the
chunk's payload — possibly empty on the final frame of an empty
slice).  ``seq`` counts from 0; ``blob_len`` is the *whole* stored
blob's length; ``offset``/``length`` describe the byte range actually
served (window mode reports the re-encoded window blob:
``offset`` 0 and ``length`` equal to its size).  Frames arrive in
``seq`` order and the stream ends with the single frame whose ``eof``
is true, which also carries the cold-run ``metrics`` and
``elapsed_seconds`` (earlier frames ship ``null`` for both).  Errors
are only ever sent *instead of* the first chunk — once chunk 0 is on
the wire the stream always runs to ``eof``.
``presult`` ``{"type": "presult", "rows": int,
"states": [...] | null, "groups": [[group, [...]], ...] | null,
"metrics": dict, "elapsed_seconds": float}``

The reply to a ``pquery``: ``rows`` is the number of rows the shard
scanned, ``states`` holds one packed partial state per aggregate (a
scalar SELECT; ``groups`` is null), and ``groups`` holds ordered
``[group_value, [partial, ...]]`` pairs for GROUP BY (``states`` is
null).  A partial state is packed by :func:`pack_partial`: a count
partial ships as a plain JSON int; an all-float value list ships as a
little-endian float64 blob referenced by ``{"$pf8": i}``; an all-int
list as an int64 blob under ``{"$pi8": i}``; anything else falls back
to ``{"$pvals": [...]}`` with per-value packing (blob cells become
``{"$blob": i}``).

Error codes are the :data:`SERVER_BUSY`, :data:`QUERY_TIMEOUT`,
:data:`SQL_ERROR`, :data:`BAD_FRAME`, :data:`RESULT_TOO_LARGE`,
:data:`SHARD_UNAVAILABLE` and :data:`INTERNAL` constants.
``SHARD_UNAVAILABLE`` is raised only by a shard coordinator: a
statement needed a shard that is dead or stayed saturated through the
coordinator's bounded retry.  The client connection survives, and the
statement can be retried once the shard recovers.

The frame-size limit is enforced on *both* sides of the wire: readers
reject an oversized length prefix before allocating anything, and the
write helpers refuse to emit a frame larger than ``max_frame``
(:class:`FrameTooLargeError`).  A server whose query result would
exceed the limit answers with a ``RESULT_TOO_LARGE`` error frame
instead — the statement ran, but its reply cannot ship; the connection
survives and the client can narrow the select list or raise the limit.
"""

from __future__ import annotations

import json
import numbers
import socket
import struct
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # the sync client never has to import asyncio
    import asyncio

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "DEFAULT_CHUNK_BYTES",
    "NO_TIMEOUT",
    "SERVER_BUSY",
    "QUERY_TIMEOUT",
    "SQL_ERROR",
    "BAD_FRAME",
    "RESULT_TOO_LARGE",
    "SHARD_UNAVAILABLE",
    "INTERNAL",
    "ProtocolError",
    "FrameTooLargeError",
    "WireError",
    "encode_frame",
    "decode_frame",
    "pack_rows",
    "unpack_rows",
    "pack_cell",
    "unpack_cell",
    "pack_partial",
    "unpack_partial",
    "read_frame",
    "write_frame",
    "read_frame_sock",
    "write_frame_sock",
]

#: Protocol revision carried in the server's hello frame.
PROTOCOL_VERSION = 1

#: Default per-frame ceiling (64 MiB) — a malformed or hostile length
#: prefix is rejected before any allocation happens.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Default (and also maximum-honoured) payload bytes per ``bchunk``
#: frame.  A client may ask for less via the ``chunk_bytes`` request
#: key; asking for more is clamped, so a stream's frames always fit
#: well under ``MAX_FRAME_BYTES``.
DEFAULT_CHUNK_BYTES = 256 * 1024

#: Wire sentinel for a query frame's ``timeout`` key that *explicitly*
#: disables the per-query budget.  A ``null`` (or absent) timeout means
#: "use the server default" instead — so a client whose parameter
#: simply defaults to ``None`` can never switch budgets off by
#: accident.
NO_TIMEOUT = "none"

# Error codes.
SERVER_BUSY = "SERVER_BUSY"
QUERY_TIMEOUT = "QUERY_TIMEOUT"
SQL_ERROR = "SQL_ERROR"
BAD_FRAME = "BAD_FRAME"
RESULT_TOO_LARGE = "RESULT_TOO_LARGE"
SHARD_UNAVAILABLE = "SHARD_UNAVAILABLE"
INTERNAL = "INTERNAL"

_U32 = struct.Struct("!I")


class ProtocolError(Exception):
    """Raised for frames that violate the wire format."""


class FrameTooLargeError(ProtocolError):
    """Raised by the write helpers for an outgoing frame over the
    ``max_frame`` limit — caught *before* any bytes hit the wire, so
    the stream stays framed and the connection survives."""


class WireError(Exception):
    """A typed failure to be answered as an ``error`` frame.

    Raised by layers that execute *behind* a server — the shard
    coordinator, mainly — to surface a specific error code
    (:data:`SHARD_UNAVAILABLE`, a shard's own ``SQL_ERROR``, ...) to
    the client instead of the generic :data:`INTERNAL` mapping for
    unexpected exceptions.
    """

    def __init__(self, code: str, message: str,
                 detail: object = None) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        #: Optional JSON-serializable context shipped in the error
        #: frame's ``detail`` key (partial-progress reports, mainly).
        self.detail = detail


# -- value packing -----------------------------------------------------------

def _pack_value(value: object, blobs: list[bytes]) -> object:
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        blobs.append(bytes(value))
        return {"$blob": len(blobs) - 1}
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_pack_value(v, blobs) for v in value]
    raise ProtocolError(
        f"cannot encode value of type {type(value).__name__}")


def _unpack_value(value: object, blobs: Sequence[bytes]) -> object:
    if isinstance(value, dict):
        if set(value) != {"$blob"}:
            raise ProtocolError(f"unexpected object cell {value!r}")
        index = value["$blob"]
        if not isinstance(index, int) or not 0 <= index < len(blobs):
            raise ProtocolError(f"blob reference {index!r} out of range")
        return blobs[index]
    if isinstance(value, list):
        return [_unpack_value(v, blobs) for v in value]
    return value


def pack_rows(rows: Sequence[Sequence[object]]
              ) -> tuple[list[list[object]], list[bytes]]:
    """JSON-encode result rows; blob cells are moved to the binary
    tail and replaced by ``{"$blob": i}`` markers."""
    blobs: list[bytes] = []
    packed = [[_pack_value(cell, blobs) for cell in row]
              for row in rows]
    return packed, blobs


def unpack_rows(rows: Sequence[Sequence[object]],
                blobs: Sequence[bytes]) -> list[tuple[object, ...]]:
    """Invert :func:`pack_rows`, resolving blob markers."""
    return [tuple(_unpack_value(cell, blobs) for cell in row)
            for row in rows]


def pack_cell(value: object, blobs: list[bytes]) -> object:
    """Pack one standalone value (a GROUP BY key, say) with result-row
    cell semantics: blob values move into ``blobs`` and become
    ``{"$blob": i}`` markers."""
    return _pack_value(value, blobs)


def unpack_cell(value: object, blobs: Sequence[bytes]) -> object:
    """Invert :func:`pack_cell`."""
    return _unpack_value(value, blobs)


# -- partial aggregate states (pquery/presult) -------------------------------

def pack_partial(partial: object, blobs: list[bytes]) -> object:
    """Encode one mergeable aggregate partial for a ``presult`` frame.

    A count partial (int) stays inline JSON.  A value-list partial —
    the ordered non-NULL values a SUM/AVG/MIN/MAX fold consumes —
    becomes a typed binary column in the frame tail when homogeneous:
    ``{"$pf8": i}`` for little-endian float64, ``{"$pi8": i}`` for
    little-endian int64, so a million-value partial ships as 8 MB of
    raw bytes rather than JSON text.  The exact bit patterns survive
    the round trip, which is what keeps distributed float SUM/AVG
    bit-identical.  Mixed or non-numeric lists (MIN/MAX over blobs,
    say) fall back to ``{"$pvals": [...]}`` with per-value packing.
    """
    if isinstance(partial, bool):
        raise ProtocolError("a bool is not a partial aggregate state")
    if isinstance(partial, numbers.Integral):
        return int(partial)
    if not isinstance(partial, (list, tuple)):
        raise ProtocolError(
            f"cannot encode partial state of type "
            f"{type(partial).__name__}")
    values = list(partial)
    if values:
        if all(isinstance(v, float) and not isinstance(v, bool)
               for v in values):
            blobs.append(struct.pack(f"<{len(values)}d", *values))
            return {"$pf8": len(blobs) - 1}
        if all(isinstance(v, numbers.Integral)
               and not isinstance(v, bool) for v in values):
            try:
                blobs.append(
                    struct.pack(f"<{len(values)}q",
                                *(int(v) for v in values)))
                return {"$pi8": len(blobs) - 1}
            except struct.error:
                pass  # out of int64 range: fall back to JSON ints
    return {"$pvals": [_pack_value(v, blobs) for v in values]}


def _partial_blob(marker: object, blobs: Sequence[bytes]) -> bytes:
    if not isinstance(marker, int) or isinstance(marker, bool) or \
            not 0 <= marker < len(blobs):
        raise ProtocolError(
            f"partial blob reference {marker!r} out of range")
    data = blobs[marker]
    if len(data) % 8:
        raise ProtocolError(
            f"partial blob of {len(data)} bytes is not a multiple of 8")
    return data


def unpack_partial(value: object, blobs: Sequence[bytes]) -> object:
    """Invert :func:`pack_partial`."""
    if isinstance(value, bool):
        raise ProtocolError("a bool is not a partial aggregate state")
    if isinstance(value, int):
        return value
    if isinstance(value, dict):
        if set(value) == {"$pf8"}:
            data = _partial_blob(value["$pf8"], blobs)
            return list(struct.unpack(f"<{len(data) // 8}d", data))
        if set(value) == {"$pi8"}:
            data = _partial_blob(value["$pi8"], blobs)
            return list(struct.unpack(f"<{len(data) // 8}q", data))
        if set(value) == {"$pvals"}:
            items = value["$pvals"]
            if not isinstance(items, list):
                raise ProtocolError(
                    f"bad generic partial payload {items!r}")
            return [_unpack_value(v, blobs) for v in items]
    raise ProtocolError(f"bad partial state {value!r}")


# -- framing -----------------------------------------------------------------

def encode_frame(header: dict[str, object],
                 blobs: Sequence[bytes] = ()) -> bytes:
    """Serialize one frame (header JSON + binary tail)."""
    if "type" not in header:
        raise ProtocolError("frame header needs a 'type' key")
    if blobs:
        header = dict(header, blobs=[len(b) for b in blobs])
    body = json.dumps(header, separators=(",", ":")).encode()
    tail = b"".join(blobs)
    total = 4 + len(body) + len(tail)
    return _U32.pack(total) + _U32.pack(len(body)) + body + tail


def decode_frame(payload: bytes) -> tuple[dict[str, object], list[bytes]]:
    """Parse one frame payload (everything after the ``total`` prefix)
    into ``(header, blobs)``."""
    if len(payload) < 4:
        raise ProtocolError("frame shorter than its header-length field")
    (hdr_len,) = _U32.unpack_from(payload)
    if 4 + hdr_len > len(payload):
        raise ProtocolError(
            f"header length {hdr_len} exceeds frame of {len(payload)} "
            "bytes")
    try:
        header = json.loads(payload[4:4 + hdr_len].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError("header is not an object with a 'type' key")
    tail = payload[4 + hdr_len:]
    lengths = header.get("blobs", [])
    if not isinstance(lengths, list) or \
            not all(isinstance(n, int) and n >= 0 for n in lengths):
        raise ProtocolError(f"bad blob length list {lengths!r}")
    if sum(lengths) != len(tail):
        raise ProtocolError(
            f"blob lengths {lengths} do not cover a {len(tail)}-byte "
            "tail")
    blobs: list[bytes] = []
    pos = 0
    for n in lengths:
        blobs.append(tail[pos:pos + n])
        pos += n
    return header, blobs


def _check_total(total: int, max_frame: int) -> None:
    if total < 4:
        raise ProtocolError(f"frame of {total} bytes is too short")
    if total > max_frame:
        raise ProtocolError(
            f"frame of {total} bytes exceeds the {max_frame}-byte limit")


def _check_outgoing(frame: bytes, max_frame: int) -> None:
    """Reject an encoded frame the peer's reader is bound to refuse.

    Mirrors the read-side :func:`_check_total`: ``total`` counts
    everything after the 4-byte length prefix.  Emitting the frame
    anyway would make the *receiver* kill the connection with a bare
    ``ProtocolError`` and no diagnosis — failing here, before any bytes
    are written, keeps the stream framed so the sender can answer with
    a proper error frame instead."""
    total = len(frame) - _U32.size
    if total > max_frame:
        raise FrameTooLargeError(
            f"outgoing frame of {total} bytes exceeds the "
            f"{max_frame}-byte limit")


# -- asyncio stream IO --------------------------------------------------------

async def read_frame(reader: "asyncio.StreamReader",
                     max_frame: int = MAX_FRAME_BYTES
                     ) -> tuple[dict[str, object], list[bytes]] | None:
    """Read one frame from an asyncio stream reader.

    Returns ``None`` on a clean EOF (peer closed between frames);
    raises :class:`ProtocolError` on truncation or malformed data.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-prefix") from exc
    (total,) = _U32.unpack(prefix)
    _check_total(total, max_frame)
    try:
        payload = await reader.readexactly(total)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_frame(payload)


async def write_frame(writer: "asyncio.StreamWriter",
                      header: dict[str, object],
                      blobs: Sequence[bytes] = (),
                      max_frame: int = MAX_FRAME_BYTES) -> None:
    """Write one frame to an asyncio stream writer and drain.

    Raises :class:`FrameTooLargeError` — before writing anything — if
    the encoded frame exceeds ``max_frame``.
    """
    frame = encode_frame(header, blobs)
    _check_outgoing(frame, max_frame)
    writer.write(frame)
    await writer.drain()


# -- blocking socket IO (sync client) ----------------------------------------

def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(
                "connection closed mid-frame" if chunks or n != remaining
                else "connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sock(sock: socket.socket,
                    max_frame: int = MAX_FRAME_BYTES
                    ) -> tuple[dict[str, object], list[bytes]] | None:
    """Blocking-socket twin of :func:`read_frame` (None on clean EOF)."""
    prefix = sock.recv(4)
    if not prefix:
        return None
    while len(prefix) < 4:
        more = sock.recv(4 - len(prefix))
        if not more:
            raise ProtocolError("connection closed mid-prefix")
        prefix += more
    (total,) = _U32.unpack(prefix)
    _check_total(total, max_frame)
    return decode_frame(_recv_exactly(sock, total))


def write_frame_sock(sock: socket.socket, header: dict[str, object],
                     blobs: Sequence[bytes] = (),
                     max_frame: int = MAX_FRAME_BYTES) -> None:
    """Blocking-socket twin of :func:`write_frame` (same
    :class:`FrameTooLargeError` behaviour)."""
    frame = encode_frame(header, blobs)
    _check_outgoing(frame, max_frame)
    sock.sendall(frame)
