"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``table1 [rows]`` — regenerate the paper's Table 1 (delegates to
  the benchmark harness logic).
* ``info`` — print the library inventory: schemas, registered SQL
  functions, supported element types.
"""

from __future__ import annotations

import sys


def _cmd_table1(args: list[str]) -> int:
    rows = int(args[0]) if args else 20_000
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                    "..", "..", "benchmarks"))
    try:
        from table1_harness import main as harness_main
    except ImportError:
        print("table1_harness.py not found; run from a source checkout",
              file=sys.stderr)
        return 1
    harness_main(rows)
    return 0


def _cmd_info(_args: list[str]) -> int:
    from repro.core import ALL_DTYPES
    from repro.sqlbind import connect
    from repro.tsql import MATH_EXPORTS, NAMESPACES

    print("Element types:")
    for dt in ALL_DTYPES:
        print(f"  {dt.name:<11} code 0x{dt.code:02x}  "
              f"{dt.itemsize} bytes  schema {dt.schema_name}")
    print(f"\nT-SQL schemas: {len(NAMESPACES)} "
          f"({', '.join(sorted(NAMESPACES)[:6])}, ...)")
    print(f"Math UDFs per float/complex schema: {len(MATH_EXPORTS)}")
    conn = connect()
    print(f"SQLite functions registered by connect(): "
          f"{conn.registered_functions}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {"table1": _cmd_table1, "info": _cmd_info}
    if not argv or argv[0] not in commands:
        names = ", ".join(sorted(commands))
        print(f"usage: python -m repro {{{names}}} [args]",
              file=sys.stderr)
        return 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
