"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``table1 [rows]`` — regenerate the paper's Table 1 (delegates to
  the benchmark harness logic).
* ``info`` — print the library inventory: schemas, registered SQL
  functions, supported element types.
* ``serve`` — run the array-database server over the two Table 1
  evaluation tables (see ``docs/SERVER.md``).
* ``shard-serve`` — run a sharded cluster: N shard server processes
  plus a scatter-gather coordinator (see ``docs/SHARDING.md``).
* ``client`` — issue a query (or fetch stats) against a running
  server and print rows plus the Table 1 metrics triple.
* ``lint`` — run replint, the AST-based invariant checker, over the
  source tree (see ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args: list[str]) -> int:
    rows = int(args[0]) if args else 20_000
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                    "..", "..", "benchmarks"))
    try:
        from table1_harness import main as harness_main
    except ImportError:
        print("table1_harness.py not found; run from a source checkout",
              file=sys.stderr)
        return 1
    harness_main(rows)
    return 0


def _cmd_info(_args: list[str]) -> int:
    from repro.core import ALL_DTYPES
    from repro.sqlbind import connect
    from repro.tsql import MATH_EXPORTS, NAMESPACES

    print("Element types:")
    for dt in ALL_DTYPES:
        print(f"  {dt.name:<11} code 0x{dt.code:02x}  "
              f"{dt.itemsize} bytes  schema {dt.schema_name}")
    print(f"\nT-SQL schemas: {len(NAMESPACES)} "
          f"({', '.join(sorted(NAMESPACES)[:6])}, ...)")
    print(f"Math UDFs per float/complex schema: {len(MATH_EXPORTS)}")
    conn = connect()
    print(f"SQLite functions registered by connect(): "
          f"{conn.registered_functions}")
    return 0


def _load_demo_db(rows: int):
    """The two Section 6.2 evaluation tables, for a self-contained
    server deployment."""
    import numpy as np

    from repro.engine import Column, Database
    from repro.tsql import FloatArray

    db = Database()
    tscalar = db.create_table(
        "Tscalar", [Column("id", "bigint")] +
        [Column(f"v{i}", "float") for i in range(1, 6)])
    tvector = db.create_table(
        "Tvector", [Column("id", "bigint"),
                    Column("v", "varbinary", cap=100)])
    values = np.random.default_rng(0).standard_normal((rows, 5))
    for i in range(rows):
        tscalar.insert((i, *values[i]))
        tvector.insert((i, FloatArray.Vector_5(*values[i])))
    return db


def _cmd_serve(args: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the array database over TCP.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7433)
    parser.add_argument("--rows", type=int, default=5000,
                        help="rows loaded into the evaluation tables")
    parser.add_argument("--workers", type=int, default=4,
                        help="concurrent query workers")
    parser.add_argument("--queue", type=int, default=8,
                        help="admission queue depth beyond the workers")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-query timeout in seconds")
    parser.add_argument("--engine-workers", type=int, default=None,
                        metavar="N",
                        help="default process count for queries run "
                             "with engine=parallel (distinct from "
                             "--workers, the query thread pool)")
    opts = parser.parse_args(args)

    import asyncio

    from repro.server import ArrayServer, ServerConfig

    print(f"Loading evaluation tables at {opts.rows:,} rows ...")
    db = _load_demo_db(opts.rows)
    config = ServerConfig(host=opts.host, port=opts.port,
                          max_workers=opts.workers,
                          queue_limit=opts.queue,
                          query_timeout=opts.timeout,
                          engine_workers=opts.engine_workers)
    server = ArrayServer(db, config)

    async def _serve():
        await server.start()
        engine_workers = (f", engine-workers={opts.engine_workers}"
                          if opts.engine_workers else "")
        print(f"repro-array-server listening on "
              f"{opts.host}:{server.port} "
              f"(workers={opts.workers}, queue={opts.queue}, "
              f"timeout={opts.timeout:g}s{engine_workers})")
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _cmd_shard_serve(args: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro shard-serve",
        description="Serve the array database as a sharded cluster: "
                    "N shard processes plus a coordinator speaking "
                    "the ordinary wire protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7433,
                        help="coordinator port (shards bind ephemeral "
                             "loopback ports)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=1,
                        help="server processes per shard; with more "
                             "than one, reads fail over to a sibling "
                             "when a replica dies")
    parser.add_argument("--partitioning", choices=("range", "hash"),
                        default="range")
    parser.add_argument("--rows", type=int, default=5000,
                        help="rows loaded into the evaluation tables")
    parser.add_argument("--workers", type=int, default=4,
                        help="query workers per shard and on the "
                             "coordinator")
    parser.add_argument("--queue", type=int, default=8,
                        help="admission queue depth beyond the workers")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="coordinator per-query timeout in seconds")
    opts = parser.parse_args(args)

    import asyncio

    import numpy as np

    from repro.server import ServerConfig
    from repro.shard import ShardConfig, ShardServer, start_cluster
    from repro.tsql import FloatArray

    shard_config = ShardConfig(
        shards=opts.shards, replicas=opts.replicas,
        partitioning=opts.partitioning,
        key_lo=0, key_hi=max(opts.rows, 1),
        host="127.0.0.1", max_workers=opts.workers,
        queue_limit=opts.queue)
    print(f"Starting {opts.shards} shard(s) x {opts.replicas} "
          f"replica(s) ...")
    fleet, router = start_cluster(shard_config)
    try:
        print(f"Loading evaluation tables at {opts.rows:,} rows ...")
        router.execute(
            "CREATE TABLE Tscalar (id BIGINT PRIMARY KEY, "
            "v1 FLOAT, v2 FLOAT, v3 FLOAT, v4 FLOAT, v5 FLOAT)")
        router.execute(
            "CREATE TABLE Tvector (id BIGINT PRIMARY KEY, "
            "v VARBINARY(100))")
        values = np.random.default_rng(0).standard_normal(
            (opts.rows, 5))
        router.insert_rows(
            "Tscalar",
            [(i, *map(float, values[i])) for i in range(opts.rows)])
        router.insert_rows(
            "Tvector",
            [(i, bytes(FloatArray.Vector_5(*values[i])))
             for i in range(opts.rows)])

        coordinator = ShardServer(router, ServerConfig(
            host=opts.host, port=opts.port,
            max_workers=opts.workers, queue_limit=opts.queue,
            query_timeout=opts.timeout, name="repro-shard-coordinator"))

        async def _serve():
            await coordinator.start()
            shards = ", ".join(
                "|".join(f"{h}:{p}" for h, p in replica_set)
                for replica_set in fleet.addresses)
            print(f"repro-shard-coordinator listening on "
                  f"{opts.host}:{coordinator.port} "
                  f"({opts.shards} shards [{shards}], "
                  f"replicas={opts.replicas}, "
                  f"partitioning={opts.partitioning})")
            await coordinator.serve_forever()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("\nshutting down")
    finally:
        fleet.stop()
    return 0


def _cmd_client(args: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro client",
        description="Query a running array-database server.")
    parser.add_argument("sql", nargs="?",
                        help="statement to execute")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7433)
    parser.add_argument("--stats", action="store_true",
                        help="print the server stats snapshot instead")
    parser.add_argument("--warm", action="store_true",
                        help="keep the buffer pool warm (cold is the "
                             "paper's default)")
    opts = parser.parse_args(args)
    if not opts.stats and not opts.sql:
        parser.error("need a SQL statement (or --stats)")

    import json

    from repro.server import ArrayClient, ServerError

    try:
        with ArrayClient(opts.host, opts.port) as client:
            if opts.stats:
                print(json.dumps(client.stats(), indent=2,
                                 sort_keys=True))
                return 0
            result = client.query(opts.sql, cold=not opts.warm)
            if result.kind == "ok":
                print(f"ok ({result.rowcount} rows affected)")
                return 0
            for row in result.rows:
                print("\t".join(
                    f"0x{cell.hex()}" if isinstance(cell, bytes)
                    else str(cell) for cell in row))
            m = result.metrics or {}
            print(f"-- {result.rowcount} row(s); "
                  f"sim {m.get('sim_exec_seconds', 0):.3f} s, "
                  f"cpu {m.get('cpu_percent', 0):.0f} %, "
                  f"io {m.get('io_mb_per_s', 0):.0f} MB/s; "
                  f"server wall {result.elapsed_seconds * 1e3:.1f} ms")
            return 0
    except ServerError as exc:
        print(f"server error — {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {opts.host}:{opts.port} — {exc}",
              file=sys.stderr)
        return 1


def _cmd_lint(args: list[str]) -> int:
    from repro.analysis.__main__ import main as lint_main
    return lint_main(args)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {"table1": _cmd_table1, "info": _cmd_info,
                "serve": _cmd_serve, "shard-serve": _cmd_shard_serve,
                "client": _cmd_client, "lint": _cmd_lint}
    if not argv or argv[0] not in commands:
        names = ", ".join(sorted(commands))
        print(f"usage: python -m repro {{{names}}} [args]",
              file=sys.stderr)
        return 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
