"""Real SQL surface: the array library registered as SQLite UDFs.

::

    from repro.sqlbind import connect

    conn = connect()
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v BLOB)")
    conn.execute("INSERT INTO t VALUES (1, FloatArray_Vector_3(1, 2, 3))")
    conn.execute("SELECT FloatArray_Item_1(v, 2) FROM t").fetchone()
"""

from .connection import ArrayConnection, SqliteBlobStream, connect
from .registry import SCALAR_EXPORTS, register_all, register_namespace

__all__ = [
    "connect",
    "ArrayConnection",
    "SqliteBlobStream",
    "register_all",
    "register_namespace",
    "SCALAR_EXPORTS",
]
