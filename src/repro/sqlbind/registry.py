"""Registration of the array functions as SQLite UDFs.

The paper's library exposes arrays to SQL through CLR UDFs registered in
per-type schemas.  SQLite is the in-process SQL engine available here
(per the reproduction plan), and it supports exactly the needed
extension points: deterministic scalar functions and aggregate classes.
Since SQLite has no schemas, function names flatten the schema with an
underscore::

    SELECT FloatArray_Item_1(v, 0) FROM Tvector;
    SELECT FloatArray_Sum(v) FROM Tvector;
    SELECT FloatArrayMax_Subarray(a, IntArray_Vector_3(1, 4, 6),
                                  IntArray_Vector_3(5, 5, 5), 0);

Aggregates registered per element type:

* ``<Schema>_ConcatAgg(dims, index, value)`` — the paper's ``Concat``
  UDA (Section 4.2); the state is genuinely carried across rows by
  SQLite so, unlike SQL Server, no per-row serialization happens.
* ``<Schema>_AvgAgg(blob)`` — element-wise average of an array column
  (composite spectra with ``GROUP BY``, Section 2.2).
* ``<Schema>_SumAgg(blob)`` — element-wise sum of an array column.
"""

from __future__ import annotations

import sqlite3

from ..core import aggregates as _agg
from ..core.errors import ArrayError
from ..core.sqlarray import SqlArray
from ..tsql.mathfuncs import MATH_EXPORTS
from ..tsql.namespaces import NAMESPACES, ArrayNamespace

__all__ = ["register_all", "register_namespace", "SCALAR_EXPORTS"]

#: Namespace methods exported as SQLite scalar functions, with their
#: SQLite argument counts (-1 = variadic).
SCALAR_EXPORTS: dict[str, int] = {}
SCALAR_EXPORTS.update({f"Vector_{n}": n for n in range(1, 11)})
SCALAR_EXPORTS.update({f"Matrix_{n}": n * n for n in range(1, 5)})
SCALAR_EXPORTS.update({f"Item_{n}": n + 1 for n in range(1, 7)})
SCALAR_EXPORTS.update({f"UpdateItem_{n}": n + 2 for n in range(1, 7)})
SCALAR_EXPORTS.update({f"Zeros_{n}": n for n in range(1, 7)})
SCALAR_EXPORTS.update({f"Fill_{n}": n + 1 for n in range(1, 7)})
SCALAR_EXPORTS.update({
    "Rank": 1,
    "Count": 1,
    "DimSize": 2,
    "Dims": 1,
    "Item": 2,
    "UpdateItem": 3,
    "Subarray": 4,
    "Reshape": 2,
    "Raw": 1,
    "Cast": 2,
    "ToString": 1,
    "ToShort": 1,
    "ToMax": 1,
    "ConvertTo": 2,
    "Sum": 1,
    "Mean": 1,
    "Min": 1,
    "Max": 1,
    "Std": 1,
    "SumAxis": 2,
    "MeanAxis": 2,
    "Add": 2,
    "Subtract": 2,
    "Multiply": 2,
    "Divide": 2,
    "Scale": 2,
    "Dot": 2,
})


def _wrap_scalar(method):
    """Adapt a namespace method to SQLite calling conventions.

    SQLite passes blobs as ``bytes`` and raises
    ``sqlite3.OperationalError`` with our message when the function
    raises, so array errors surface as SQL errors (the same developer
    experience as a failed CLR UDF).
    """

    def udf(*args):
        try:
            result = method(*args)
        except ArrayError as exc:
            raise sqlite3.OperationalError(str(exc)) from exc
        if isinstance(result, complex):
            # SQLite has no complex type; surface as text.
            return repr(result)
        return result

    return udf


class _ConcatAgg:
    """SQLite aggregate: assemble an array from (dims, index, value)
    rows — the UDA the paper had to abandon on SQL Server."""

    def __init__(self):
        self._agg = None
        self._dtype = None

    def step(self, dims_blob, index_blob, value):
        try:
            if self._agg is None:
                dims = SqlArray.from_blob(dims_blob)
                self._shape = tuple(int(d) for d in dims.to_numpy())
                self._agg = _agg.ConcatAggregate(self._shape, self._dtype)
            index = SqlArray.from_blob(index_blob)
            self._agg.accumulate(
                [int(i) for i in index.to_numpy()], value)
        except ArrayError as exc:
            raise sqlite3.OperationalError(str(exc)) from exc

    def finalize(self):
        if self._agg is None:
            return None
        return self._agg.terminate().to_blob()


class _ArraySetAgg:
    """SQLite aggregate folding equal-shape arrays element-wise."""

    #: 'avg' or 'sum'; set by subclass factory.
    mode = "avg"

    def __init__(self):
        self._arrays = []

    def step(self, blob):
        if blob is None:
            return
        try:
            self._arrays.append(SqlArray.from_blob(blob))
        except ArrayError as exc:
            raise sqlite3.OperationalError(str(exc)) from exc

    def finalize(self):
        if not self._arrays:
            return None
        try:
            if self.mode == "avg":
                out = _agg.average_arrays(self._arrays)
            else:
                out = _agg.sum_arrays(self._arrays)
        except ArrayError as exc:
            raise sqlite3.OperationalError(str(exc)) from exc
        return out.to_blob()


def register_namespace(conn: sqlite3.Connection,
                       ns: ArrayNamespace) -> int:
    """Register one schema's functions on a connection.

    Returns the number of functions registered.  Names are
    ``<SchemaName>_<FunctionName>``.
    """
    registered = 0
    for method_name, argc in SCALAR_EXPORTS.items():
        method = getattr(ns, method_name)
        conn.create_function(f"{ns.name}_{method_name}", argc,
                             _wrap_scalar(method), deterministic=True)
        registered += 1
    if not ns.dtype.is_integer:
        # The math layer (FFTForward, SvdValues, ...) exists on the
        # floating and complex schemas only, as in the paper.
        for method_name, argc in MATH_EXPORTS.items():
            method = getattr(ns, method_name)
            conn.create_function(f"{ns.name}_{method_name}", argc,
                                 _wrap_scalar(method),
                                 deterministic=True)
            registered += 1

    dtype = ns.dtype

    class Concat(_ConcatAgg):
        def __init__(self, _dtype=dtype):
            super().__init__()
            self._dtype = _dtype

    class AvgAgg(_ArraySetAgg):
        mode = "avg"

    class SumAgg(_ArraySetAgg):
        mode = "sum"

    conn.create_aggregate(f"{ns.name}_ConcatAgg", 3, Concat)
    conn.create_aggregate(f"{ns.name}_AvgAgg", 1, AvgAgg)
    conn.create_aggregate(f"{ns.name}_SumAgg", 1, SumAgg)
    return registered + 3


def _register_complex_udt(conn: sqlite3.Connection) -> int:
    """Register the scalar complex UDT functions (paper Section 3.4).

    The UDT travels as its 16-byte (or 8-byte single precision) native
    blob; ``Complex_New`` constructs one, the accessors and arithmetic
    work on blobs, and ``Complex_ToString`` renders it.
    """
    from ..core.complextype import SqlComplex

    def _bin(f):
        def udf(*args):
            try:
                out = f(*args)
            except ArrayError as exc:
                raise sqlite3.OperationalError(str(exc)) from exc
            if isinstance(out, SqlComplex):
                return out.to_bytes()
            return out
        return udf

    functions = {
        "Complex_New": (2, lambda re, im: SqlComplex.new(re, im)),
        "Complex_FromPolar": (2, lambda m, p:
                              SqlComplex.from_polar(m, p)),
        "Complex_FromString": (1, lambda t: SqlComplex.from_string(t)),
        "Complex_Re": (1, lambda b: SqlComplex.from_bytes(b).real),
        "Complex_Im": (1, lambda b: SqlComplex.from_bytes(b).imag),
        "Complex_Abs": (1, lambda b: SqlComplex.from_bytes(b).abs()),
        "Complex_Phase": (1, lambda b:
                          SqlComplex.from_bytes(b).phase()),
        "Complex_Conj": (1, lambda b:
                         SqlComplex.from_bytes(b).conjugate()),
        "Complex_Neg": (1, lambda b: -SqlComplex.from_bytes(b)),
        "Complex_Add": (2, lambda a, b: SqlComplex.from_bytes(a)
                        + SqlComplex.from_bytes(b)),
        "Complex_Sub": (2, lambda a, b: SqlComplex.from_bytes(a)
                        - SqlComplex.from_bytes(b)),
        "Complex_Mul": (2, lambda a, b: SqlComplex.from_bytes(a)
                        * SqlComplex.from_bytes(b)),
        "Complex_Div": (2, lambda a, b: SqlComplex.from_bytes(a)
                        / SqlComplex.from_bytes(b)),
        "Complex_Scale": (2, lambda b, f:
                          SqlComplex.from_bytes(b) * f),
        "Complex_ToString": (1, lambda b:
                             SqlComplex.from_bytes(b).to_string()),
    }
    for name, (argc, f) in functions.items():
        conn.create_function(name, argc, _bin(f), deterministic=True)
    return len(functions)


def register_all(conn: sqlite3.Connection) -> int:
    """Register every generated schema's functions plus the
    type-independent helpers; returns the total count."""
    total = 0
    for ns in NAMESPACES.values():
        total += register_namespace(conn, ns)

    from ..tsql.namespaces import FromString

    conn.create_function("Array_FromString", 1,
                         _wrap_scalar(FromString), deterministic=True)
    total += 1
    total += _register_complex_udt(conn)
    return total
