"""Array-aware SQLite connections.

:func:`connect` opens a SQLite database with every array UDF registered
and returns an :class:`ArrayConnection`, a thin ``sqlite3.Connection``
wrapper adding the client-side conveniences the paper's .NET interface
provides (Section 5.2): store/load helpers between numpy arrays and
array blobs, a ``to_table`` helper standing in for the table-valued
functions, and incremental (partial) blob reads against stored max
arrays via SQLite's blob handles — the stream-wrapper path.
"""

from __future__ import annotations

import sqlite3
from typing import Iterator

import numpy as np

from ..core.dtypes import ArrayDType
from ..core.errors import BoundsError
from ..core.ops import to_table
from ..core.sqlarray import SqlArray
from .registry import register_all

__all__ = ["connect", "ArrayConnection", "SqliteBlobStream"]


class SqliteBlobStream:
    """:class:`repro.core.partial.BlobStream` over a SQLite blob handle.

    Opened with :meth:`ArrayConnection.open_array_blob`; lets
    :func:`repro.core.partial.read_subarray` subset an array stored in a
    SQLite row without pulling the whole value — SQLite's incremental
    blob IO playing the role of SQL Server's stream wrapper.
    """

    def __init__(self, handle):
        self._handle = handle
        self._length = len(handle)
        self.bytes_read = 0
        self.read_calls = 0

    def read_at(self, offset: int, size: int) -> bytes:
        if offset < 0 or offset + size > self._length:
            raise BoundsError(
                f"read [{offset}, {offset + size}) beyond blob of "
                f"{self._length} bytes")
        self._handle.seek(offset)
        self.bytes_read += size
        self.read_calls += 1
        return self._handle.read(size)

    def length(self) -> int:
        return self._length

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SqliteBlobStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ArrayConnection:
    """A ``sqlite3.Connection`` with array helpers.

    All unknown attributes delegate to the underlying connection, so it
    can be used anywhere a plain connection works.
    """

    def __init__(self, conn: sqlite3.Connection):
        self.raw = conn
        self.registered_functions = register_all(conn)

    def __getattr__(self, name):
        return getattr(self.raw, name)

    def __enter__(self) -> "ArrayConnection":
        self.raw.__enter__()
        return self

    def __exit__(self, *exc):
        return self.raw.__exit__(*exc)

    # -- client-side conversions (paper Section 5.2) -------------------------

    def store_array(self, values, dtype: ArrayDType | str | None = None
                    ) -> bytes:
        """Convert a numpy array (or nested sequence) to a blob ready to
        bind as a SQL parameter."""
        return SqlArray.from_numpy(np.asarray(values), dtype).to_blob()

    def load_array(self, blob: bytes) -> np.ndarray:
        """Convert a fetched blob back to a numpy array (column-major),
        like the paper's ``dr.SqlFloatArray(dr.GetSqlBinary(1))``."""
        return SqlArray.from_blob(blob).to_numpy()

    def to_table(self, blob: bytes) -> Iterator[tuple]:
        """Yield ``(i0, ..., value)`` rows from an array blob — the
        table-valued ``ToTable`` function (SQLite's Python API has no
        TVFs, so this runs client side)."""
        return to_table(SqlArray.from_blob(blob))

    def open_array_blob(self, table: str, column: str, rowid: int,
                        readonly: bool = True) -> SqliteBlobStream:
        """Open an incremental stream over an array stored in a row.

        Combine with :func:`repro.core.partial.read_subarray` to subset
        stored arrays without materializing them::

            with conn.open_array_blob("cubes", "data", 42) as stream:
                window = read_subarray(stream, (0, 0, 0), (8, 8, 8))
        """
        handle = self.raw.blobopen(table, column, rowid,
                                   readonly=readonly)
        return SqliteBlobStream(handle)


def connect(database: str = ":memory:", **kwargs) -> ArrayConnection:
    """Open a SQLite database with the full array library registered.

    Accepts the same arguments as :func:`sqlite3.connect`.
    """
    conn = sqlite3.connect(database, **kwargs)
    return ArrayConnection(conn)
