"""replint framework: file walking, rule registry, suppressions, reporting.

The checker is pure stdlib (``ast`` + ``tokenize``-free line scanning) so it
can run in any environment the engine runs in, including CI images without
third-party linters installed.

Suppression syntax (mirrors the usual linter conventions):

- ``# replint: disable=RL001`` on a line suppresses the named rule(s) for
  findings reported on that exact line.  Multiple rules may be given,
  comma-separated; ``all`` suppresses every rule.
- ``# replint: disable-file=RL001`` anywhere in a file suppresses the rule(s)
  for the whole file.

Exit codes: 0 = clean or warnings only, 1 = error-tier findings (or
unparsable source), 2 = usage error.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import os
import re
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .callgraph import CallGraph
    from .flow.lockgraph import ProgramLockAnalysis

PARSE_RULE = "PARSE"

_SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*disable(?P<scope>-file)?\s*=\s*(?P<rules>[A-Za-z0-9_,\s*]+)"
)


SEVERITIES = ("error", "warn")


@dataclasses.dataclass(frozen=True)
class Finding:
    """A single rule violation anchored to a file, line and column.

    ``severity`` is ``"error"`` (breaks the build — exit code 1) or
    ``"warn"`` (reported, but warnings alone leave the exit code 0).
    Rules normally leave it to :func:`run_rules`, which stamps each
    finding with its rule's severity.  ``col`` is 1-based (0 = not
    known); ``end_line`` optionally closes a multi-line span — both
    make the human output editor-clickable (``path:line:col:``).
    """

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    col: int = 0
    end_line: int | None = None

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }
        if self.end_line is not None:
            out["end_line"] = self.end_line
        return out

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used by ``--baseline`` suppression.  Line and
        column are deliberately excluded so unrelated edits above a
        known finding don't un-suppress it."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        pos = f"{self.line}:{self.col}" if self.col else f"{self.line}"
        return f"{self.path}:{pos}: {self.rule}{tag} {self.message}"


class SourceFile:
    """A parsed source file plus its suppression table."""

    def __init__(self, path: str, text: str, display_path: str | None = None) -> None:
        self.path = path
        self.display_path = display_path or path
        self.text = text
        self.lines = text.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: str | None = None
        self.line_suppressions: dict[int, frozenset[str]] = {}
        self.file_suppressions: frozenset[str] = frozenset()
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as exc:  # pragma: no cover - exercised via tests
            self.parse_error = f"{exc.msg} (line {exc.lineno})"
        self._scan_suppressions()

    @property
    def basename(self) -> str:
        return os.path.basename(self.path)

    def _scan_suppressions(self) -> None:
        file_rules: set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = frozenset(
                token.strip()
                for token in match.group("rules").split(",")
                if token.strip()
            )
            if not rules:
                continue
            if match.group("scope"):
                file_rules.update(rules)
            else:
                self.line_suppressions[lineno] = rules
        self.file_suppressions = frozenset(file_rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions or "all" in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(line)
        if rules is None:
            return False
        return rule in rules or "all" in rules


class LintContext:
    """Shared state for a lint run (memoises the call graph and the
    whole-program flow analysis across rules)."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._graph: CallGraph | None = None
        self._flow: ProgramLockAnalysis | None = None

    def callgraph(self, files: Sequence[SourceFile]) -> CallGraph:
        if self._graph is None:
            from .callgraph import CallGraph

            self._graph = CallGraph.build(files)
        return self._graph

    def flow(self, files: Sequence[SourceFile]) -> "ProgramLockAnalysis":
        if self._flow is None:
            from .flow.lockgraph import ProgramLockAnalysis

            self._flow = ProgramLockAnalysis(files, self.callgraph(files))
        return self._flow


class Rule:
    """Base class for replint rules."""

    code: str = ""
    name: str = ""
    description: str = ""
    #: ``"error"`` rules gate CI (exit 1); ``"warn"`` rules only report.
    severity: str = "error"

    def check(self, files: Sequence[SourceFile], ctx: LintContext) -> list[Finding]:
        raise NotImplementedError


def collect_files(paths: Iterable[str], root: str | None = None) -> list[SourceFile]:
    """Expand files/directories into parsed :class:`SourceFile` objects."""

    seen: set[str] = set()
    out: list[SourceFile] = []
    base = os.path.abspath(root) if root else os.getcwd()

    def add(path: str) -> None:
        abspath = os.path.abspath(path)
        if abspath in seen:
            return
        seen.add(abspath)
        try:
            with open(abspath, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return
        display = os.path.relpath(abspath, base)
        if display.startswith(".."):
            display = abspath
        out.append(SourceFile(abspath, text, display_path=display))

    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in {"__pycache__", ".git"}
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        add(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            add(path)
    return out


def run_rules(
    files: Sequence[SourceFile],
    rules: Sequence[Rule],
    ctx: LintContext | None = None,
) -> list[Finding]:
    """Run rules over parsed files, applying suppressions, sorted output."""

    if ctx is None:
        ctx = LintContext(os.getcwd())
    by_path = {f.path: f for f in files}
    by_display = {f.display_path: f for f in files}
    findings: list[Finding] = []
    for source in files:
        if source.parse_error is not None:
            findings.append(
                Finding(
                    rule=PARSE_RULE,
                    path=source.display_path,
                    line=1,
                    message=f"could not parse: {source.parse_error}",
                )
            )
    parsed = [f for f in files if f.tree is not None]
    for rule in rules:
        for finding in rule.check(parsed, ctx):
            source = by_path.get(finding.path) or by_display.get(finding.path)
            if source is not None:
                if source.is_suppressed(finding.rule, finding.line):
                    continue
                if finding.path != source.display_path:
                    finding = dataclasses.replace(finding, path=source.display_path)
            if finding.severity != rule.severity:
                finding = dataclasses.replace(finding, severity=rule.severity)
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def error_count(findings: Sequence[Finding]) -> int:
    """Findings that gate the exit code (severity ``error``; a PARSE
    failure always counts)."""
    return sum(1 for f in findings if f.severity == "error")


def render_human(findings: Sequence[Finding]) -> str:
    if not findings:
        return "replint: clean"
    lines = [finding.render() for finding in findings]
    errors = error_count(findings)
    warns = len(findings) - errors
    summary = f"replint: {len(findings)} finding(s)"
    if warns:
        summary += f" ({errors} error(s), {warns} warning(s))"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
            "errors": error_count(findings),
        },
        indent=2,
        sort_keys=True,
    )


# -- baselines ---------------------------------------------------------------

def write_baseline(findings: Sequence[Finding], path: str) -> None:
    """Snapshot current findings so ``--baseline`` can suppress them.
    Entries are (rule, path, message) — line/column free, so the
    baseline survives unrelated edits."""
    entries = sorted({finding.baseline_key() for finding in findings})
    payload = {
        "version": 1,
        "entries": [
            {"rule": rule, "path": fpath, "message": message}
            for rule, fpath, message in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    """Baseline keys from a snapshot file; raises ``ValueError`` on a
    malformed file (a silently ignored baseline would unsuppress
    everything)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or not isinstance(
            payload.get("entries"), list):
        raise ValueError(f"{path}: not a replint baseline file")
    keys: set[tuple[str, str, str]] = set()
    for entry in payload["entries"]:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: malformed baseline entry")
        keys.add((str(entry.get("rule", "")), str(entry.get("path", "")),
                  str(entry.get("message", ""))))
    return keys


def apply_baseline(
    findings: Sequence[Finding],
    baseline: set[tuple[str, str, str]],
) -> list[Finding]:
    """Drop findings whose (rule, path, message) is in the baseline."""
    return [f for f in findings if f.baseline_key() not in baseline]
