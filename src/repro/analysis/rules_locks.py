"""RL001 lock discipline and RL002 lock ordering.

RL001 — every path from a public ``SqlSession`` entry point to a page- or
tree-mutating sink (``BufferPool.fetch``/``fetch_many``, ``Table.insert``/
``insert_many``/``delete``, ``BTree.insert``/``delete``/``bulk_load``, and
the ``Executor.run*`` family, which assumes the caller holds the lock) must
pass through a statement guard — a ``db.latches.read_latch(...)`` /
``write_latch(...)`` / ``ddl_latch()`` context (the per-table latch
hierarchy, see ``repro.engine.latches``) or the legacy
``db.lock.read_lock()`` / ``write_lock()`` — the way ``SqlSession.execute``
and ``SqlSession.query`` do.  Edges taken *inside* a guard are satisfied
and not traversed further; any unguarded path that reaches a sink is
reported at the first call edge of that path.

RL002 — the lock hierarchy is ``catalog latch > table latches > pool/page
``_lock`` mutexes``, acquired strictly downward, and neither the RWLock nor
the latch set is re-entrant.  The rule flags, lexically and through calls:

- acquiring an RWLock guard while a pool guard is held (inverse order);
- acquiring an RWLock guard while an RWLock guard is already held
  (re-entrancy — a read holder taking ``write_lock`` deadlocks by design,
  see ``repro.engine.locks``);
- acquiring a latch guard while a pool guard is held (a leaf mutex is
  *below* the latch level; taking a latch under it inverts the hierarchy);
- acquiring a latch guard while a latch guard is already held (unordered
  multi-table acquisition — a statement's whole latch set must be taken in
  one sorted ``read_latch``/``write_latch`` call, never incrementally).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .callgraph import (
    LATCH_GUARD,
    POOL_GUARD,
    RWLOCK_GUARD,
    CallGraph,
    CallSite,
    FunctionInfo,
)
from .framework import Finding, LintContext, Rule, SourceFile

#: Classes whose public methods are statement entry points.
ENTRY_CLASSES = ("SqlSession",)

#: (class name, method name) pairs that require the database RWLock.
LOCK_SINKS = frozenset(
    {
        ("BufferPool", "fetch"),
        ("BufferPool", "fetch_many"),
        ("Table", "insert"),
        ("Table", "insert_many"),
        ("Table", "delete"),
        ("BTree", "insert"),
        ("BTree", "delete"),
        ("BTree", "bulk_load"),
        ("Executor", "run"),
        ("Executor", "run_point"),
        ("Executor", "run_index"),
        ("Executor", "run_grouped"),
    }
)


def _is_sink(info: FunctionInfo) -> bool:
    return (info.class_name or "", info.name) in LOCK_SINKS


class LockDisciplineRule(Rule):
    code = "RL001"
    name = "lock-discipline"
    description = (
        "public SqlSession entry points must hold a table latch (or "
        "db.lock) before reaching BufferPool/Table/BTree/Executor sinks"
    )

    def check(self, files: Sequence[SourceFile], ctx: LintContext) -> list[Finding]:
        graph = ctx.callgraph(files)
        findings: list[Finding] = []
        reported: set[tuple[str, str]] = set()
        for entry_class in ENTRY_CLASSES:
            for entry in graph.iter_methods(entry_class):
                if entry.name.startswith("_"):
                    continue
                findings.extend(self._scan_entry(graph, entry, reported))
        return findings

    def _scan_entry(
        self,
        graph: CallGraph,
        entry: FunctionInfo,
        reported: set[tuple[str, str]],
    ) -> list[Finding]:
        findings: list[Finding] = []
        # BFS over unguarded call edges; each queue item carries the call
        # path so the report can show how the sink is reached.
        queue: deque[tuple[FunctionInfo, tuple[str, ...], CallSite | None]] = deque(
            [(entry, (entry.qualname,), None)]
        )
        visited: set[int] = {id(entry)}
        while queue:
            func, path, first_edge = queue.popleft()
            for call in func.calls:
                if call.guarded:
                    continue  # satisfied: edge under a latch or db.lock
                for target in graph.resolve(call, func):
                    edge = first_edge or call
                    if _is_sink(target):
                        key = (entry.qualname, target.qualname)
                        if key in reported:
                            continue
                        reported.add(key)
                        chain = " -> ".join(path + (target.qualname,))
                        findings.append(
                            Finding(
                                rule=self.code,
                                path=func.display_path,
                                line=call.line,
                                col=call.col,
                                message=(
                                    f"{entry.qualname} reaches "
                                    f"{target.qualname} without holding "
                                    "a table latch or db.lock "
                                    f"(path: {chain})"
                                ),
                            )
                        )
                        continue
                    if id(target) in visited:
                        continue
                    visited.add(id(target))
                    queue.append((target, path + (target.qualname,), edge))
        return findings


class LockOrderRule(Rule):
    code = "RL002"
    name = "lock-order"
    description = (
        "never acquire db.lock or a table latch while holding a pool "
        "_lock, never re-acquire the non-reentrant RWLock, and never "
        "nest latch acquisitions (multi-table latch sets are taken in "
        "one sorted call)"
    )

    def check(self, files: Sequence[SourceFile], ctx: LintContext) -> list[Finding]:
        graph = ctx.callgraph(files)
        findings: list[Finding] = []
        for func in graph.functions:
            findings.extend(self._lexical(func))
            findings.extend(self._through_calls(graph, func))
        return findings

    def _lexical(self, func: FunctionInfo) -> list[Finding]:
        findings: list[Finding] = []
        for event in func.lock_events:
            if event.kind == RWLOCK_GUARD:
                if RWLOCK_GUARD in event.held_before:
                    findings.append(
                        Finding(
                            rule=self.code,
                            path=func.display_path,
                            line=event.line,
                            col=event.col,
                            message=(
                                f"{func.qualname} re-acquires the RWLock "
                                "while already holding it (RWLock is not "
                                "re-entrant)"
                            ),
                        )
                    )
                if POOL_GUARD in event.held_before:
                    findings.append(
                        Finding(
                            rule=self.code,
                            path=func.display_path,
                            line=event.line,
                            col=event.col,
                            message=(
                                f"{func.qualname} acquires the RWLock while "
                                "holding a pool _lock (inverse lock order)"
                            ),
                        )
                    )
            elif event.kind == LATCH_GUARD:
                if LATCH_GUARD in event.held_before:
                    findings.append(
                        Finding(
                            rule=self.code,
                            path=func.display_path,
                            line=event.line,
                            col=event.col,
                            message=(
                                f"{func.qualname} acquires a table latch "
                                "while already holding one (unordered "
                                "multi-table acquisition; take the whole "
                                "latch set in one sorted "
                                "read_latch/write_latch call)"
                            ),
                        )
                    )
                if POOL_GUARD in event.held_before:
                    findings.append(
                        Finding(
                            rule=self.code,
                            path=func.display_path,
                            line=event.line,
                            col=event.col,
                            message=(
                                f"{func.qualname} acquires a table latch "
                                "while holding a pool _lock (the pool lock "
                                "is a leaf below the latch level)"
                            ),
                        )
                    )
        return findings

    def _through_calls(self, graph: CallGraph, func: FunctionInfo) -> list[Finding]:
        findings: list[Finding] = []
        for call in func.calls:
            if not call.held:
                continue
            holds_rw = RWLOCK_GUARD in call.held
            holds_latch = LATCH_GUARD in call.held
            holds_pool = POOL_GUARD in call.held
            if not (holds_rw or holds_latch or holds_pool):
                continue
            rw_offender = self._reaches(
                graph, call, func, lambda f: f.acquires_rwlock)
            if rw_offender is not None:
                if holds_rw:
                    findings.append(
                        Finding(
                            rule=self.code,
                            path=func.display_path,
                            line=call.line,
                            col=call.col,
                            message=(
                                f"{func.qualname} holds the RWLock and "
                                f"calls into {rw_offender.label}, which "
                                "re-acquires it (RWLock is not re-entrant)"
                            ),
                        )
                    )
                elif holds_pool:
                    findings.append(
                        Finding(
                            rule=self.code,
                            path=func.display_path,
                            line=call.line,
                            col=call.col,
                            message=(
                                f"{func.qualname} holds a pool _lock and "
                                f"calls into {rw_offender.label}, which "
                                "acquires the RWLock (inverse lock order)"
                            ),
                        )
                    )
            if not (holds_latch or holds_pool):
                continue
            latch_offender = self._reaches(
                graph, call, func, lambda f: f.acquires_latch)
            if latch_offender is None:
                continue
            if holds_latch:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=func.display_path,
                        line=call.line,
                        col=call.col,
                        message=(
                            f"{func.qualname} holds a table latch and calls "
                            f"into {latch_offender.label}, which acquires "
                            "another latch (unordered multi-table "
                            "acquisition)"
                        ),
                    )
                )
            elif holds_pool:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=func.display_path,
                        line=call.line,
                        col=call.col,
                        message=(
                            f"{func.qualname} holds a pool _lock and calls "
                            f"into {latch_offender.label}, which acquires a "
                            "table latch (the pool lock is a leaf below "
                            "the latch level)"
                        ),
                    )
                )
        return findings

    def _reaches(
        self,
        graph: CallGraph,
        call: CallSite,
        caller: FunctionInfo,
        predicate,
    ) -> FunctionInfo | None:
        """First function reachable from ``call`` satisfying
        ``predicate`` (BFS over resolved call edges), or ``None``."""
        queue: deque[FunctionInfo] = deque(graph.resolve(call, caller))
        visited: set[int] = set()
        while queue:
            func = queue.popleft()
            if id(func) in visited:
                continue
            visited.add(id(func))
            if predicate(func):
                return func
            for inner in func.calls:
                queue.extend(graph.resolve(inner, func))
        return None
