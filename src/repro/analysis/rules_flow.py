"""RL004 lock-order cycles and RL005 blocking under an exclusive latch.

Both rules run on the flow-sensitive layer (:mod:`repro.analysis.flow`)
rather than the lexical callgraph heuristics:

RL004 — the whole-program lock-order graph (nodes = lock classes such
as ``catalog``, ``table``, ``pool``, ``pagefile``, ``intent``,
``workerpool``, ``mutex:<Class>``; edges = *acquired-while-held* pairs
discovered by the intraprocedural lock dataflow propagated over the
typed call graph) must be acyclic.  A cycle is a potential deadlock:
two threads each holding one class and waiting for the other.  Each
cycle is reported once, with the witness call paths for every edge on
it so the offending acquisition sites can be found directly.  Edges
*into* ``workerpool`` are exempt (mode-exclusive with its outgoing
edges; see :mod:`repro.analysis.flow.lockgraph`).

RL004 also checks that the checked-in ``lock_graph.json`` (consumed by
the runtime sentinel :mod:`repro.engine.lockcheck` as its rank table)
matches the graph computed from the tree; regenerate it with
``repro lint --write-lock-graph`` after intentional locking changes.
The drift check only runs when the linted set includes the engine's
latch module — fixture and test-tree lints never compare against it.

RL005 (warn) — a statement holding an *exclusive* latch (``table``
write, ``catalog`` DDL, legacy ``db`` write lock) stalls every reader
of that table for as long as it runs; calling into a blocking sink
(``time.sleep``, subprocess spawns, ``socket`` accept/recv/connect,
``select.select``, ``input``) under one turns a latency hiccup into a
whole-table outage.  The dataflow knows the held-set per call site, so
shared-mode acquisitions (plain ``read_latch``) never trip this — the
blind spot of the old lexical approach.
"""

from __future__ import annotations

import re
from typing import Sequence

from .flow.lockgraph import (
    LockGraph,
    default_lock_graph_path,
    load_lock_graph,
)
from .framework import Finding, LintContext, Rule, SourceFile

#: ``qualname (path:line)`` hop format used in witness strings.
_SITE_RE = re.compile(r"\(([^()]+):(\d+)\)")

#: The drift check runs only when this engine module is in the linted
#: set — i.e. a real-tree lint, not a fixture or test-tree lint.
_DRIFT_MARKER = ("engine", "latches.py")


def _witness_site(witness: str) -> tuple[str, int]:
    """(path, line) of the first hop of a witness chain."""
    match = _SITE_RE.search(witness)
    if match is None:  # pragma: no cover - witnesses always carry sites
        return ("<unknown>", 1)
    return (match.group(1), int(match.group(2)))


def _has_drift_marker(files: Sequence[SourceFile]) -> bool:
    for source in files:
        parts = source.path.replace("\\", "/").split("/")
        if tuple(parts[-2:]) == _DRIFT_MARKER:
            return True
    return False


class LockCycleRule(Rule):
    code = "RL004"
    name = "lock-order-cycle"
    description = (
        "the whole-program lock-order graph (acquired-while-held edges "
        "over lock classes) must be acyclic, and must match the "
        "checked-in lock_graph.json used by the runtime sentinel"
    )

    def check(self, files: Sequence[SourceFile], ctx: LintContext) -> list[Finding]:
        analysis = ctx.flow(files)
        graph = analysis.lock_graph
        findings: list[Finding] = []
        for cycle in graph.cycles():
            arrows = " -> ".join(cycle)
            parts: list[str] = []
            first_site: tuple[str, int] | None = None
            for src, dst in zip(cycle, cycle[1:]):
                witnesses = graph.edges.get((src, dst), [])
                for witness in witnesses:
                    parts.append(f"[{src} -> {dst}] {witness}")
                if first_site is None and witnesses:
                    first_site = _witness_site(witnesses[0])
            path, line = first_site or ("<unknown>", 1)
            detail = "; ".join(parts)
            findings.append(
                Finding(
                    rule=self.code,
                    path=path,
                    line=line,
                    message=(
                        f"lock-order cycle {arrows}: two threads "
                        "taking these classes in opposite orders can "
                        f"deadlock; witness paths: {detail}"
                    ),
                )
            )
        if _has_drift_marker(files):
            findings.extend(self._check_drift(graph, ctx))
        return findings

    def _check_drift(self, graph: LockGraph,
                     ctx: LintContext) -> list[Finding]:
        import os

        path = default_lock_graph_path()
        display = os.path.relpath(path, ctx.root)
        if display.startswith(".."):
            display = path
        checked_in = load_lock_graph(path)
        computed = graph.to_json_dict()
        if checked_in is None:
            return [
                Finding(
                    rule=self.code,
                    path=display,
                    line=1,
                    message=(
                        "lock_graph.json is missing or unreadable; the "
                        "runtime sentinel has no acquisition order to "
                        "enforce — run `repro lint --write-lock-graph`"
                    ),
                )
            ]
        if checked_in != computed:
            stale_keys = sorted(
                key for key in set(checked_in) | set(computed)
                if checked_in.get(key) != computed.get(key)
            )
            return [
                Finding(
                    rule=self.code,
                    path=display,
                    line=1,
                    message=(
                        "lock_graph.json is stale (differs from the "
                        f"tree in: {', '.join(stale_keys)}); run "
                        "`repro lint --write-lock-graph` and review "
                        "the ordering change"
                    ),
                )
            ]
        return []


class BlockingUnderLatchRule(Rule):
    code = "RL005"
    name = "blocking-under-exclusive-latch"
    description = (
        "never call a blocking sink (sleep, subprocess, socket I/O, "
        "select, input) while holding an exclusive latch — every "
        "reader of the table stalls for the duration"
    )
    severity = "warn"

    def check(self, files: Sequence[SourceFile], ctx: LintContext) -> list[Finding]:
        analysis = ctx.flow(files)
        findings: list[Finding] = []
        for info, name, line, col, cls, chain in (
                analysis.blocking_under_exclusive()):
            if chain:
                hops = " -> ".join(chain)
                message = (
                    f"{info.qualname} holds the exclusive {cls!r} "
                    f"latch and calls {name}(), which may block "
                    f"(via {hops})"
                )
            else:
                message = (
                    f"{info.qualname} calls blocking {name}() while "
                    f"holding the exclusive {cls!r} latch; readers of "
                    "the latched table stall for the duration"
                )
            findings.append(
                Finding(
                    rule=self.code,
                    path=info.display_path,
                    line=line,
                    col=col,
                    message=message,
                )
            )
        return findings
