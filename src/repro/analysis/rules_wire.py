"""RW301 — the wire schema is frozen; drift must be deliberate.

``repro.server.protocol`` is the contract between every deployed client and
the server.  This rule extracts the observable schema from the module's AST
and docstring — error-code constants, ``PROTOCOL_VERSION``,
``MAX_FRAME_BYTES``, ``NO_TIMEOUT``, and the frame types/keys documented in
the module docstring — and diffs it against the checked-in
``protocol_schema.json`` sitting next to the module.  Any drift (a new
error code, a removed frame key, a version bump) fails the lint until the
schema file is regenerated *and* ``docs/SERVER.md`` documents the change;
every error code must appear in the docs.

Regenerate the schema after an intentional protocol change with::

    python -m repro.analysis --write-schema src/repro/server/protocol.py
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Sequence

from .framework import Finding, LintContext, Rule, SourceFile

SCHEMA_FILENAME = "protocol_schema.json"
_ERROR_CODE_RE = re.compile(r"^[A-Z][A-Z_]+$")
_FRAME_TYPE_RE = re.compile(r"\"type\":\s*\"(\w+)\"")
_FRAME_KEY_RE = re.compile(r"\"(\$?\w+)\"\s*:")


def _fold_int(node: ast.expr) -> int | None:
    """Evaluate small constant integer expressions (``64 * 1024 * 1024``)."""

    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.BinOp):
        left = _fold_int(node.left)
        right = _fold_int(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Pow):
            return left**right
    return None


def extract_schema(tree: ast.Module) -> dict[str, object]:
    """Extract the observable wire schema from a protocol module's AST."""

    error_codes: list[str] = []
    protocol_version: int | None = None
    max_frame_bytes: int | None = None
    no_timeout: str | None = None
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        name = target.id
        value = node.value
        if name == "PROTOCOL_VERSION":
            protocol_version = _fold_int(value)
        elif name == "MAX_FRAME_BYTES":
            max_frame_bytes = _fold_int(value)
        elif name == "NO_TIMEOUT":
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                no_timeout = value.value
        elif (
            _ERROR_CODE_RE.match(name)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
            and value.value.isupper()
        ):
            error_codes.append(value.value)

    docstring = ast.get_docstring(tree, clean=False) or ""
    frame_types = sorted(set(_FRAME_TYPE_RE.findall(docstring)))
    frame_keys = sorted(set(_FRAME_KEY_RE.findall(docstring)))

    return {
        "error_codes": sorted(set(error_codes)),
        "frame_keys": frame_keys,
        "frame_types": frame_types,
        "max_frame_bytes": max_frame_bytes,
        "no_timeout": no_timeout,
        "protocol_version": protocol_version,
    }


def write_schema(protocol_path: str) -> str:
    """Regenerate ``protocol_schema.json`` next to the given module."""

    with open(protocol_path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=protocol_path)
    schema = extract_schema(tree)
    schema_path = os.path.join(os.path.dirname(protocol_path), SCHEMA_FILENAME)
    with open(schema_path, "w", encoding="utf-8") as handle:
        json.dump(schema, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return schema_path


def _find_server_docs(start_dir: str) -> str | None:
    current = os.path.abspath(start_dir)
    for _ in range(8):
        candidate = os.path.join(current, "docs", "SERVER.md")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            break
        current = parent
    return None


class WireSchemaRule(Rule):
    code = "RW301"
    name = "wire-schema-freeze"
    description = (
        "protocol.py must match the checked-in protocol_schema.json and "
        "every error code must be documented in docs/SERVER.md"
    )

    def check(self, files: Sequence[SourceFile], ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for source in files:
            if source.basename != "protocol.py" or source.tree is None:
                continue
            schema = extract_schema(source.tree)
            if not schema["error_codes"] and not schema["frame_types"]:
                continue  # not a wire-protocol module
            findings.extend(self._diff_schema(source, schema))
            findings.extend(self._check_docs(source, schema))
        return findings

    def _diff_schema(
        self, source: SourceFile, schema: dict[str, object]
    ) -> list[Finding]:
        schema_path = os.path.join(os.path.dirname(source.path), SCHEMA_FILENAME)
        if not os.path.isfile(schema_path):
            return [
                Finding(
                    rule=self.code,
                    path=source.display_path,
                    line=1,
                    message=(
                        f"no {SCHEMA_FILENAME} next to the protocol module; "
                        "run python -m repro.analysis --write-schema "
                        f"{source.display_path}"
                    ),
                )
            ]
        try:
            with open(schema_path, "r", encoding="utf-8") as handle:
                frozen = json.load(handle)
        except (OSError, ValueError) as exc:
            return [
                Finding(
                    rule=self.code,
                    path=source.display_path,
                    line=1,
                    message=f"unreadable {SCHEMA_FILENAME}: {exc}",
                )
            ]
        findings: list[Finding] = []
        for field in ("error_codes", "frame_types", "frame_keys"):
            current_raw = schema.get(field)
            current = set(current_raw) if isinstance(current_raw, list) else set()
            saved = set(frozen.get(field) or [])
            for added in sorted(current - saved):
                findings.append(
                    Finding(
                        rule=self.code,
                        path=source.display_path,
                        line=1,
                        message=(
                            f"{field}: '{added}' added to the wire protocol "
                            f"but missing from {SCHEMA_FILENAME}; regenerate "
                            "the schema and document the change"
                        ),
                    )
                )
            for removed in sorted(saved - current):
                findings.append(
                    Finding(
                        rule=self.code,
                        path=source.display_path,
                        line=1,
                        message=(
                            f"{field}: '{removed}' is frozen in "
                            f"{SCHEMA_FILENAME} but no longer present in the "
                            "protocol module (breaking change)"
                        ),
                    )
                )
        for field in ("protocol_version", "max_frame_bytes", "no_timeout"):
            if field in frozen and frozen[field] != schema.get(field):
                findings.append(
                    Finding(
                        rule=self.code,
                        path=source.display_path,
                        line=1,
                        message=(
                            f"{field} drifted: protocol module has "
                            f"{schema.get(field)!r}, {SCHEMA_FILENAME} has "
                            f"{frozen[field]!r}"
                        ),
                    )
                )
        return findings

    def _check_docs(
        self, source: SourceFile, schema: dict[str, object]
    ) -> list[Finding]:
        docs_path = _find_server_docs(os.path.dirname(source.path))
        if docs_path is None:
            return []
        try:
            with open(docs_path, "r", encoding="utf-8") as handle:
                docs_text = handle.read()
        except OSError:
            return []
        findings: list[Finding] = []
        error_codes = schema.get("error_codes") or []
        assert isinstance(error_codes, list)
        for code in error_codes:
            if code not in docs_text:
                findings.append(
                    Finding(
                        rule=self.code,
                        path=source.display_path,
                        line=1,
                        message=(
                            f"error code '{code}' is not documented in "
                            f"{os.path.relpath(docs_path, os.path.dirname(source.path))}"
                        ),
                    )
                )
        return findings
