"""Whole-program lock-order graph over the typed call graph.

:class:`ProgramLockAnalysis` runs the intraprocedural lock dataflow
(:func:`.dataflow.analyze_locks`) over every function in the linted
tree, then propagates two transitive facts over
:class:`~repro.analysis.callgraph.CallGraph` edges:

- **TRANS_ACQ** — the lock classes a function may acquire, directly or
  through any callee, with one witness hop per (function, class) so a
  full call path can be reconstructed for diagnostics;
- **TRANS_BLOCK** — whether a function may reach a blocking call
  (``time.sleep``, subprocess spawns, socket ops, ...), again with a
  witness chain (consumed by RL005).

Edges of the :class:`LockGraph` are *acquired-while-held* pairs of
lock classes: for every acquisition site, every lock class in any
possible held-set before it contributes an edge ``held -> acquired``;
for every call site, every class the callee may transitively acquire
contributes ``held -> acquired-in-callee``.  Self-edges are excluded —
intra-class ordering (the sorted per-table latch set, the re-entrant
buffer-pool lock) is RL002's lexical discipline and the runtime
sentinel's name-order check, not a graph cycle.

**The workerpool exemption.**  Edges *into* ``workerpool`` are
recorded but excluded from cycle detection and the exported order:
the legacy (``REPRO_MVCC=off``) path takes the worker-pool mutex under
a held table latch, while the MVCC path takes latches under the
worker-pool mutex — the two orders are mode-exclusive at runtime (a
process is either in MVCC mode or not), so the class-level graph would
show a cycle that no execution can produce.  The runtime sentinel
mirrors this by not instrumenting the worker-pool mutex.  See
docs/LOCKING.md.

The acyclic graph is exported to ``lock_graph.json`` (nodes, ordered
edges, and a deterministic topological order) which the runtime
sentinel :mod:`repro.engine.lockcheck` loads as its rank table; RL004
detects drift between the tree and the checked-in file.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import os
from typing import Mapping, Sequence, Union

from ..callgraph import CallGraph, FunctionInfo
from ..framework import SourceFile
from .dataflow import (
    EXCLUSIVE_LATCH_CLASSES,
    LEGACY_CLASSES,
    MVCC_CLASSES,
    FunctionLockFacts,
    LockClassifier,
    State,
    analyze_locks,
)

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Lock classes whose *incoming* edges are excluded from cycle
#: detection and the exported order (mode-exclusive with their
#: outgoing edges; see module docstring).
ORDER_EXEMPT_INCOMING = frozenset({"workerpool"})

#: ``with``-method names whose token sets are built in to the
#: classifier; a ``@contextmanager`` summary never overrides them.
_BUILTIN_GUARDS = frozenset({
    "read_latch", "write_latch", "ddl_latch", "catalog_latch",
    "_mvcc_select_guard", "read_lock", "write_lock",
})

#: Default JSON file name, checked in next to the analysis package.
LOCK_GRAPH_BASENAME = "lock_graph.json"


def default_lock_graph_path() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), LOCK_GRAPH_BASENAME)


def _is_contextmanager(func: FuncDef) -> bool:
    for dec in func.decorator_list:
        name = dec.attr if isinstance(dec, ast.Attribute) else (
            dec.id if isinstance(dec, ast.Name) else None)
        if name in ("contextmanager", "asynccontextmanager"):
            return True
    return False


def _iter_defs(
    files: Sequence[SourceFile],
) -> list[tuple[SourceFile, str | None, FuncDef]]:
    """Module-level functions and direct class methods, mirroring
    ``CallGraph.build``'s collection order."""
    out: list[tuple[SourceFile, str | None, FuncDef]] = []
    for source in files:
        if source.tree is None:
            continue
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((source, None, node))
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        out.append((source, node.name, item))
    return out


@dataclasses.dataclass
class LockGraph:
    """Class-level acquired-while-held graph with witnesses."""

    nodes: set[str] = dataclasses.field(default_factory=set)
    #: (src, dst) -> up to a few witness path strings.
    edges: dict[tuple[str, str], list[str]] = dataclasses.field(
        default_factory=dict)

    _WITNESS_CAP = 3

    def add_node(self, cls: str) -> None:
        self.nodes.add(cls)

    def add_edge(self, src: str, dst: str, witness: str) -> None:
        if src == dst:
            return
        # The legacy `db` RWLock and the MVCC `catalog`/`table` latches
        # are alternatives of the *same* guards; a process holds one
        # family or the other, never both, so cross-family edges
        # describe no real execution (they arise interprocedurally,
        # where a callee's summary carries both mode alternatives).
        pair = {src, dst}
        if pair & LEGACY_CLASSES and pair & MVCC_CLASSES:
            return
        self.nodes.add(src)
        self.nodes.add(dst)
        paths = self.edges.setdefault((src, dst), [])
        if len(paths) < self._WITNESS_CAP and witness not in paths:
            paths.append(witness)

    # -- ordering ----------------------------------------------------------

    def order_edges(self) -> set[tuple[str, str]]:
        """Edges that constrain the acquisition order (exempt-incoming
        classes keep only their outgoing edges)."""
        return {(s, d) for (s, d) in self.edges
                if d not in ORDER_EXEMPT_INCOMING}

    def cycles(self) -> list[list[str]]:
        """One representative elementary cycle per strongly connected
        component of the order edges, deterministic."""
        edges = self.order_edges()
        adj: dict[str, list[str]] = {n: [] for n in self.nodes}
        for src, dst in sorted(edges):
            adj[src].append(dst)

        index: dict[str, int] = {}
        low: dict[str, int] = {}
        stack: list[str] = []
        on_stack: set[str] = set()
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in adj[v]:
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                comp: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                if len(comp) > 1:
                    sccs.append(sorted(comp))

        for node in sorted(self.nodes):
            if node not in index:
                strongconnect(node)

        out: list[list[str]] = []
        for comp in sorted(sccs):
            comp_set = set(comp)
            start = comp[0]
            # Shortest cycle through `start` inside the component.
            parent: dict[str, str] = {}
            frontier = [start]
            found: str | None = None
            while frontier and found is None:
                nxt: list[str] = []
                for v in frontier:
                    for w in adj[v]:
                        if w == start:
                            found = v
                            break
                        if w in comp_set and w not in parent:
                            parent[w] = v
                            nxt.append(w)
                    if found is not None:
                        break
                frontier = nxt
            if found is None:  # pragma: no cover - SCC guarantees a cycle
                continue
            path = [found]
            while path[-1] != start and path[-1] in parent:
                path.append(parent[path[-1]])
            path.reverse()
            if path[0] != start:
                path.insert(0, start)
            out.append(path + [start])
        return out

    def topo_order(self) -> list[str] | None:
        """Deterministic (lexicographic Kahn) topological order of the
        order edges; ``None`` when cyclic."""
        edges = self.order_edges()
        indeg: dict[str, int] = {n: 0 for n in self.nodes}
        adj: dict[str, list[str]] = {n: [] for n in self.nodes}
        for src, dst in edges:
            adj[src].append(dst)
            indeg[dst] += 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for dst in sorted(adj[node]):
                indeg[dst] -= 1
                if indeg[dst] == 0:
                    ready.append(dst)
            ready.sort()
        if len(order) != len(self.nodes):
            return None
        return order

    # -- serialisation -----------------------------------------------------

    def to_json_dict(self) -> dict[str, object]:
        """Stable export: nodes, order edges, topological order.
        Witness paths are deliberately *not* exported — they carry line
        numbers that would churn on every engine edit."""
        order = self.topo_order()
        return {
            "version": 1,
            "nodes": sorted(self.nodes),
            "edges": sorted([src, dst] for (src, dst)
                            in self.order_edges()),
            "exempt_incoming": sorted(ORDER_EXEMPT_INCOMING
                                      & self.nodes),
            "order": order if order is not None else [],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2,
                          sort_keys=True) + "\n"


@dataclasses.dataclass
class _Trans:
    """A transitively reachable fact with one witness hop."""

    line: int  # call/acquisition line in the owning function
    via: int | None  # index of the callee continuing the chain


class ProgramLockAnalysis:
    """Per-lint-run whole-program lock facts (memoised on the
    :class:`~repro.analysis.framework.LintContext`)."""

    def __init__(self, files: Sequence[SourceFile],
                 graph: CallGraph) -> None:
        self.graph = graph
        self.infos: list[FunctionInfo] = []
        self.defs: list[FuncDef] = []
        self.facts: list[FunctionLockFacts] = []
        self._info_index: dict[int, int] = {}
        self.classifier = self._solve_cm_summaries(files)
        self._analyze_all(files)
        self.trans_acq: list[dict[str, _Trans]] = []
        self.trans_block: list[_Trans | None] = []
        self._propagate()
        self.lock_graph = self._build_graph()

    # -- setup -------------------------------------------------------------

    def _solve_cm_summaries(
            self, files: Sequence[SourceFile]) -> LockClassifier:
        """Fixpoint over ``@contextmanager`` guards: the held-set at a
        guard's ``yield`` is what callers hold inside ``with guard():``.
        Nested guards converge in a couple of rounds."""
        cms: list[tuple[str | None, FuncDef]] = [
            (cls, func) for _, cls, func in _iter_defs(files)
            if _is_contextmanager(func)
            and func.name not in _BUILTIN_GUARDS
        ]
        summaries: dict[str, tuple[State, ...]] = {}
        for _ in range(4):
            classifier = LockClassifier(summaries)
            nxt: dict[str, tuple[State, ...]] = {}
            for cls, func in cms:
                facts = analyze_locks(func, cls, classifier)
                states = tuple(s for s in facts.yield_states if s)
                if states:
                    prev = nxt.get(func.name, ())
                    nxt[func.name] = tuple(sorted(
                        set(prev) | set(states), key=sorted))
            if nxt == summaries:
                break
            summaries = nxt
        return LockClassifier(summaries)

    def _analyze_all(self, files: Sequence[SourceFile]) -> None:
        by_identity = {
            (info.path, info.class_name, info.name, info.line): idx
            for idx, info in enumerate(self.graph.functions)
        }
        for source, class_name, func in _iter_defs(files):
            graph_idx = by_identity.get(
                (source.path, class_name, func.name, func.lineno))
            if graph_idx is None:
                continue
            info = self.graph.functions[graph_idx]
            self._info_index[id(info)] = len(self.infos)
            self.infos.append(info)
            self.defs.append(func)
            self.facts.append(analyze_locks(func, class_name,
                                            self.classifier))

    # -- interprocedural propagation ---------------------------------------

    def _callees(self, idx: int) -> list[tuple[int, int]]:
        """(callee index, call line) pairs for the function at idx."""
        info = self.infos[idx]
        out: list[tuple[int, int]] = []
        for call in info.calls:
            for callee in self.graph.resolve(call, info):
                callee_idx = self._info_index.get(id(callee))
                if callee_idx is not None:
                    out.append((callee_idx, call.line))
        return out

    def _propagate(self) -> None:
        n = len(self.infos)
        self.trans_acq = [{} for _ in range(n)]
        self.trans_block = [None] * n
        for idx, facts in enumerate(self.facts):
            for acq in facts.acquisitions:
                cls = acq.token[0]
                if cls not in self.trans_acq[idx]:
                    self.trans_acq[idx][cls] = _Trans(acq.line, None)
            if facts.blocking:
                self.trans_block[idx] = _Trans(
                    facts.blocking[0].line, None)
        callee_lists = [self._callees(idx) for idx in range(n)]
        changed = True
        while changed:
            changed = False
            for idx in range(n):
                acq = self.trans_acq[idx]
                for callee_idx, line in callee_lists[idx]:
                    if callee_idx == idx:
                        continue
                    for cls in self.trans_acq[callee_idx]:
                        if cls not in acq:
                            acq[cls] = _Trans(line, callee_idx)
                            changed = True
                    if (self.trans_block[idx] is None
                            and self.trans_block[callee_idx]
                            is not None):
                        self.trans_block[idx] = _Trans(line, callee_idx)
                        changed = True

    def acq_chain(self, idx: int, cls: str) -> list[str]:
        """Witness call path (``qualname (path:line)`` hops) from the
        function at idx down to the direct acquisition of cls."""
        hops: list[str] = []
        seen: set[int] = set()
        cur: int | None = idx
        while cur is not None and cur not in seen:
            seen.add(cur)
            info = self.infos[cur]
            trans = self.trans_acq[cur].get(cls)
            if trans is None:
                break
            hops.append(f"{info.qualname} "
                        f"({info.display_path}:{trans.line})")
            cur = trans.via
        return hops

    def block_chain(self, idx: int) -> list[str]:
        hops: list[str] = []
        seen: set[int] = set()
        cur: int | None = idx
        while cur is not None and cur not in seen:
            seen.add(cur)
            info = self.infos[cur]
            trans = self.trans_block[cur]
            if trans is None:
                break
            hops.append(f"{info.qualname} "
                        f"({info.display_path}:{trans.line})")
            cur = trans.via
        return hops

    # -- the graph ---------------------------------------------------------

    def _build_graph(self) -> LockGraph:
        graph = LockGraph()
        for idx, facts in enumerate(self.facts):
            info = self.infos[idx]
            for acq in facts.acquisitions:
                dst = acq.token[0]
                graph.add_node(dst)
                witness = (f"{info.qualname} "
                           f"({info.display_path}:{acq.line}) "
                           f"acquires {dst}")
                for state in acq.held:
                    held = {token[0] for token in state}
                    if dst in held:
                        # Re-acquisition of an already-held class is a
                        # re-entrancy question (RL002 / the sentinel's
                        # name-order check), not an ordering edge.
                        continue
                    for src in held:
                        graph.add_edge(
                            src, dst,
                            f"{witness} while holding {src}")
            held_by_site: dict[tuple[str, int], list[State]] = {}
            for ch in facts.calls:
                if any(ch.held):
                    states = held_by_site.setdefault(
                        (ch.name, ch.line), [])
                    for state in ch.held:
                        if state and state not in states:
                            states.append(state)
            for call in info.calls:
                held_states = held_by_site.get((call.name, call.line))
                if not held_states:
                    continue
                for callee in self.graph.resolve(call, info):
                    callee_idx = self._info_index.get(id(callee))
                    if callee_idx is None:
                        continue
                    for cls in self.trans_acq[callee_idx]:
                        chain = " -> ".join(
                            [f"{info.qualname} "
                             f"({info.display_path}:{call.line})"]
                            + self.acq_chain(callee_idx, cls))
                        for state in held_states:
                            held = {token[0] for token in state}
                            if cls in held:
                                continue
                            for src in held:
                                graph.add_edge(
                                    src, cls,
                                    f"{chain} acquires {cls} while "
                                    f"holding {src}")
        return graph

    # -- RL005 support -----------------------------------------------------

    def blocking_under_exclusive(
            self) -> list[tuple[FunctionInfo, str, int, int, str,
                                list[str]]]:
        """(function, blocked-call name, line, col, held class, chain)
        for every site where a blocking call is reachable while an
        exclusive latch is held."""
        out: list[tuple[FunctionInfo, str, int, int, str, list[str]]] = []

        def exclusive_cls(states: Sequence[State]) -> str | None:
            for state in states:
                for cls, excl in sorted(state):
                    if excl and cls in EXCLUSIVE_LATCH_CLASSES:
                        return cls
            return None

        for idx, facts in enumerate(self.facts):
            info = self.infos[idx]
            reported: set[int] = set()
            for blk in facts.blocking:
                cls = exclusive_cls(blk.held)
                if cls is not None and blk.line not in reported:
                    reported.add(blk.line)
                    out.append((info, blk.name, blk.line, blk.col,
                                cls, []))
            held_by_site: dict[tuple[str, int], tuple[str, int]] = {}
            for ch in facts.calls:
                cls = exclusive_cls(ch.held)
                if cls is not None:
                    held_by_site.setdefault((ch.name, ch.line),
                                            (cls, ch.col))
            for call in info.calls:
                site = held_by_site.get((call.name, call.line))
                if site is None or call.line in reported:
                    continue
                cls, col = site
                for callee in self.graph.resolve(call, info):
                    callee_idx = self._info_index.get(id(callee))
                    if callee_idx is None:
                        continue
                    if self.trans_block[callee_idx] is not None:
                        chain = self.block_chain(callee_idx)
                        reported.add(call.line)
                        out.append((info, call.name, call.line, col,
                                    cls, chain))
                        break
        return out


def load_lock_graph(path: str) -> Mapping[str, object] | None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    return data
