"""Intraprocedural control-flow graph for one function body.

The graph is statement-granular: every simple statement (and the
header of every compound statement) is one node; edges carry *actions*
that an abstract interpreter applies while traversing:

- ``("with_enter", item)`` / ``("with_exit", item)`` — a ``with``
  block's context manager is entered/exited along this edge.  Exits
  are emitted on *every* way out of the body: normal fall-through,
  ``return``/``break``/``continue``, and the exception edge of any
  may-raise statement inside (``__exit__`` runs before the exception
  escapes).
- ``("return", stmt)`` — the edge realises a ``return`` statement
  (``stmt`` is the :class:`ast.Return`, or ``None`` for the implicit
  fall-off return).  Resource analyses use it for ownership-transfer
  kills.
- ``("assume", name, truthy)`` — the edge is the ``truthy`` branch of
  an ``if``/``while`` whose test is a plain truthiness or ``is (not)
  None`` check on local ``name``.  Resource analyses use the falsy
  branch to drop resources bound to ``name`` (the ``if snap is not
  None: snap.unpin()`` idiom).

Exception flow is modelled pessimistically but cheaply: a statement
*may raise* iff it contains a call, attribute access, subscript or
binary operation in its own (non-nested-block) expressions.  Each
may-raise node gets an *exceptional* edge (``Edge.exceptional``) to
the innermost handler dispatch / ``finally`` entry, or to the
synthetic ``raise_exit`` node when the exception would escape the
function.  Abstract interpreters propagate the *pre*-statement state
along exceptional edges — if the statement raised, its own effects did
not happen.  ``finally`` bodies are cloned per continuation (normal
fall-through, escaping exception, return, break, continue) so that a
state can only leave the ``finally`` the same way it entered the
``try`` — a shared ``finally`` exit that fans out to every
continuation would fabricate paths (e.g. a fall-through state
"returning" early) and break leak analyses.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Sequence, Union

Action = tuple  # ("with_enter", item) | ("with_exit", item) | ("return", stmt|None) | ("assume", name, bool)

#: AST expression nodes whose evaluation can raise at runtime.
_RAISING = (ast.Call, ast.Attribute, ast.Subscript, ast.BinOp)


@dataclasses.dataclass
class Edge:
    dst: int
    actions: tuple[Action, ...] = ()
    #: The edge models an exception escaping the source statement;
    #: interpreters propagate the pre-statement state along it.
    exceptional: bool = False


class CFG:
    """Statement-level CFG with synthetic entry/exit/raise-exit nodes."""

    def __init__(self) -> None:
        self.stmts: list[ast.stmt | None] = []
        self.succ: list[list[Edge]] = []
        self.entry = self._new(None)
        self.exit = self._new(None)
        self.raise_exit = self._new(None)

    def _new(self, stmt: ast.stmt | None) -> int:
        self.stmts.append(stmt)
        self.succ.append([])
        return len(self.stmts) - 1

    def add_edge(self, src: int, dst: int,
                 actions: Iterable[Action] = (),
                 exceptional: bool = False) -> None:
        self.succ[src].append(Edge(dst, tuple(actions), exceptional))

    def __len__(self) -> int:
        return len(self.stmts)


@dataclasses.dataclass(frozen=True)
class _Targets:
    """Where control escapes to, from the current nesting level.

    Each target pairs a node with the stack of ``with`` items that must
    be exited on the way (innermost first).
    """

    exc: int
    exc_exits: tuple[ast.withitem, ...] = ()
    ret: int = -1
    ret_exits: tuple[ast.withitem, ...] = ()
    brk: int | None = None
    brk_exits: tuple[ast.withitem, ...] = ()
    cont: int | None = None
    cont_exits: tuple[ast.withitem, ...] = ()

    def push_with(self, items: Sequence[ast.withitem]) -> "_Targets":
        added = tuple(reversed(items))
        return dataclasses.replace(
            self,
            exc_exits=added + self.exc_exits,
            ret_exits=added + self.ret_exits,
            brk_exits=added + self.brk_exits,
            cont_exits=added + self.cont_exits,
        )

    def loop(self, brk: int, cont: int) -> "_Targets":
        return dataclasses.replace(
            self, brk=brk, brk_exits=(), cont=cont, cont_exits=())


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether the statement's own expressions can raise (nested block
    statements are separate nodes and judged on their own)."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Global,
                         ast.Nonlocal, ast.Import, ast.ImportFrom)):
        return False
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            for node in ast.walk(child):
                if isinstance(node, _RAISING):
                    return True
    return False


def _assume_actions(test: ast.expr) -> tuple[Action | None, Action | None]:
    """(truthy-edge action, falsy-edge action) for a recognisable
    name-nullness test, else ``(None, None)``."""
    name: str | None = None
    true_means_bound = True
    if isinstance(test, ast.Name):
        name = test.id
    elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not) \
            and isinstance(test.operand, ast.Name):
        name = test.operand.id
        true_means_bound = False
    elif isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.left, ast.Name) \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        name = test.left.id
        true_means_bound = isinstance(test.ops[0], ast.IsNot)
    if name is None:
        return (None, None)
    return (("assume", name, true_means_bound),
            ("assume", name, not true_means_bound))


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    def build(self, body: Sequence[ast.stmt], entry: int,
              targets: _Targets) -> int:
        """Wire ``body`` after ``entry``; returns the fall-through node
        (callers connect it onward), or -1 if the body cannot fall
        through (every path returns/raises/breaks)."""
        cur = entry
        for stmt in body:
            if cur < 0:
                break  # unreachable tail
            cur = self._stmt(stmt, cur, targets)
        return cur

    # -- helpers ------------------------------------------------------------

    def _node(self, stmt: ast.stmt, prev: int,
              actions: Iterable[Action] = ()) -> int:
        node = self.cfg._new(stmt)
        self.cfg.add_edge(prev, node, actions)
        return node

    def _exc_edge(self, node: int, targets: _Targets) -> None:
        self.cfg.add_edge(
            node, targets.exc,
            tuple(("with_exit", item) for item in targets.exc_exits),
            exceptional=True)

    # -- statement dispatch -------------------------------------------------

    def _stmt(self, stmt: ast.stmt, prev: int, targets: _Targets) -> int:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return self._node(stmt, prev)  # opaque: no flow effects
        if isinstance(stmt, ast.Return):
            node = self._node(stmt, prev)
            if _may_raise(stmt):
                self._exc_edge(node, targets)
            self.cfg.add_edge(
                node, targets.ret,
                tuple(("with_exit", item) for item in targets.ret_exits)
                + (("return", stmt),))
            return -1
        if isinstance(stmt, ast.Raise):
            node = self._node(stmt, prev)
            self._exc_edge(node, targets)
            return -1
        if isinstance(stmt, ast.Break) and targets.brk is not None:
            node = self._node(stmt, prev)
            self.cfg.add_edge(
                node, targets.brk,
                tuple(("with_exit", item) for item in targets.brk_exits))
            return -1
        if isinstance(stmt, ast.Continue) and targets.cont is not None:
            node = self._node(stmt, prev)
            self.cfg.add_edge(
                node, targets.cont,
                tuple(("with_exit", item) for item in targets.cont_exits))
            return -1
        if isinstance(stmt, ast.If):
            return self._if(stmt, prev, targets)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, prev, targets)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, prev, targets)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, prev, targets)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, prev, targets)
        node = self._node(stmt, prev)
        if _may_raise(stmt):
            self._exc_edge(node, targets)
        return node

    def _if(self, stmt: ast.If, prev: int, targets: _Targets) -> int:
        header = self._node(stmt, prev)
        if _may_raise(stmt):
            self._exc_edge(header, targets)
        then_act, else_act = _assume_actions(stmt.test)
        join = self.cfg._new(None)
        body_entry = self.cfg._new(None)
        self.cfg.add_edge(header, body_entry,
                          (then_act,) if then_act else ())
        tail = self.build(stmt.body, body_entry, targets)
        if tail >= 0:
            self.cfg.add_edge(tail, join)
        else_entry = self.cfg._new(None)
        self.cfg.add_edge(header, else_entry,
                          (else_act,) if else_act else ())
        tail = self.build(stmt.orelse, else_entry, targets)
        if tail >= 0:
            self.cfg.add_edge(tail, join)
        return join if self.cfg.succ[header] else -1

    def _loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
              prev: int, targets: _Targets) -> int:
        header = self._node(stmt, prev)
        if _may_raise(stmt):
            self._exc_edge(header, targets)
        after = self.cfg._new(None)
        then_act: Action | None = None
        else_act: Action | None = None
        if isinstance(stmt, ast.While):
            then_act, else_act = _assume_actions(stmt.test)
        body_entry = self.cfg._new(None)
        self.cfg.add_edge(header, body_entry,
                          (then_act,) if then_act else ())
        inner = targets.loop(brk=after, cont=header)
        tail = self.build(stmt.body, body_entry, inner)
        if tail >= 0:
            self.cfg.add_edge(tail, header)  # back edge
        exit_entry = self.cfg._new(None)
        self.cfg.add_edge(header, exit_entry,
                          (else_act,) if else_act else ())
        tail = self.build(stmt.orelse, exit_entry, targets)
        if tail >= 0:
            self.cfg.add_edge(tail, after)
        return after

    def _with(self, stmt: Union[ast.With, ast.AsyncWith], prev: int,
              targets: _Targets) -> int:
        header = self._node(stmt, prev)
        # Context expressions evaluate (and may raise) before anything
        # is acquired.
        self._exc_edge(header, targets)
        body_entry = self.cfg._new(None)
        self.cfg.add_edge(
            header, body_entry,
            tuple(("with_enter", item) for item in stmt.items))
        inner = targets.push_with(stmt.items)
        tail = self.build(stmt.body, body_entry, inner)
        after = self.cfg._new(None)
        if tail >= 0:
            self.cfg.add_edge(
                tail, after,
                tuple(("with_exit", item)
                      for item in reversed(stmt.items)))
        return after if self.cfg.succ[header] else -1

    def _try(self, stmt: ast.Try, prev: int, targets: _Targets) -> int:
        header = self._node(stmt, prev)
        after = self.cfg._new(None)
        outer = targets

        def fin_clone(exit_dst: int,
                      exit_actions: tuple[Action, ...]) -> int:
            """Build one copy of the finally body that continues to
            ``exit_dst``; returns its entry node.  Unused clones simply
            stay unreachable (no in-edges, empty abstract states)."""
            entry = self.cfg._new(None)
            tail = self.build(stmt.finalbody, entry, outer)
            if tail >= 0:
                self.cfg.add_edge(tail, exit_dst, exit_actions)
            return entry

        if stmt.finalbody:
            # One clone per way out of the protected region.  The
            # with-exits *inside* the try are applied on the edge into
            # the clone (by the escaping statement); the with-exits
            # *outside* it on the clone's exit edge.
            fin_norm = fin_clone(after, ())
            fin_exc_entry = self.cfg._new(None)
            fin_exc_tail = self.build(stmt.finalbody, fin_exc_entry, outer)
            if fin_exc_tail >= 0:
                # Not an exceptional edge: the finally body completed;
                # this just re-routes the pending exception outward.
                self.cfg.add_edge(fin_exc_tail, outer.exc, tuple(
                    ("with_exit", item) for item in outer.exc_exits))
            fin_ret = fin_clone(outer.ret, tuple(
                ("with_exit", item) for item in outer.ret_exits))
            fin_brk = (fin_clone(outer.brk, tuple(
                ("with_exit", item) for item in outer.brk_exits))
                if outer.brk is not None else None)
            fin_cont = (fin_clone(outer.cont, tuple(
                ("with_exit", item) for item in outer.cont_exits))
                if outer.cont is not None else None)
            routed = dataclasses.replace(
                outer, exc=fin_exc_entry, exc_exits=(),
                ret=fin_ret, ret_exits=(),
                brk=fin_brk, brk_exits=(),
                cont=fin_cont, cont_exits=())
            normal_exit = fin_norm
        else:
            routed = outer
            normal_exit = after

        # Exception dispatch for the protected body.
        if stmt.handlers:
            dispatch = self.cfg._new(None)
            self.cfg.add_edge(dispatch, routed.exc, tuple(
                ("with_exit", item) for item in routed.exc_exits))
            body_targets = dataclasses.replace(
                routed, exc=dispatch, exc_exits=())
        else:
            dispatch = -1
            body_targets = routed

        body_entry = self.cfg._new(None)
        self.cfg.add_edge(header, body_entry)
        tail = self.build(stmt.body, body_entry, body_targets)
        if tail >= 0 and stmt.orelse:
            tail = self.build(stmt.orelse, tail, body_targets)
        if tail >= 0:
            self.cfg.add_edge(tail, normal_exit)

        for handler in stmt.handlers:
            h_entry = self.cfg._new(None)
            self.cfg.add_edge(dispatch, h_entry)
            tail = self.build(handler.body, h_entry, routed)
            if tail >= 0:
                self.cfg.add_edge(tail, normal_exit)
        return after

    def _match(self, stmt: ast.Match, prev: int, targets: _Targets) -> int:
        header = self._node(stmt, prev)
        if _may_raise(stmt):
            self._exc_edge(header, targets)
        after = self.cfg._new(None)
        self.cfg.add_edge(header, after)  # no case matched
        for case in stmt.cases:
            c_entry = self.cfg._new(None)
            self.cfg.add_edge(header, c_entry)
            tail = self.build(case.body, c_entry, targets)
            if tail >= 0:
                self.cfg.add_edge(tail, after)
        return after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """CFG for one function body (nested defs are opaque nodes)."""
    cfg = CFG()
    targets = _Targets(exc=cfg.raise_exit, ret=cfg.exit)
    tail = _Builder(cfg).build(func.body, cfg.entry, targets)
    if tail >= 0:
        cfg.add_edge(tail, cfg.exit, (("return", None),))
    return cfg
