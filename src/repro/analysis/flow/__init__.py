"""Flow-sensitive analysis layer under replint.

Three modules, layered bottom-up:

- :mod:`repro.analysis.flow.cfg` — an intraprocedural control-flow
  graph per function body: statements become nodes, branches / loops /
  ``try``/``except``/``finally`` / ``with`` blocks / early returns
  become edges, and ``with`` enter/exit plus return-value transfer are
  explicit edge *actions* so an abstract interpreter can apply lock and
  resource effects exactly where the runtime would.
- :mod:`repro.analysis.flow.dataflow` — worklist fixpoint engines over
  the CFG: a **lock domain** tracking the abstract held-lock-set (lock
  classes such as ``catalog``, ``table``, ``pool``, ``pagefile``,
  ``intent``, ``workerpool``) through every path, and a **resource
  domain** tracking pinned MVCC snapshots, open ``begin_write`` clone
  sets and attached shared-memory mappings to their releases, with
  escape analysis for ownership transfer (returned or stored pins).
- :mod:`repro.analysis.flow.lockgraph` — the whole-program lock-order
  graph: per-function lock facts are propagated interprocedurally over
  the typed call graph, context-manager summaries are solved by
  fixpoint (``with pool.guard():`` knows it holds the workerpool
  mutex), and the resulting acquired-while-held edges feed RL004 cycle
  detection, ``lock_graph.json`` export, and the runtime sentinel's
  acquisition order (:mod:`repro.engine.lockcheck`).
"""

from .cfg import CFG, build_cfg
from .dataflow import (
    FunctionLockFacts,
    FunctionResources,
    LockClassifier,
    analyze_locks,
    analyze_resources,
)
from .lockgraph import LockGraph, ProgramLockAnalysis

__all__ = [
    "CFG",
    "build_cfg",
    "FunctionLockFacts",
    "FunctionResources",
    "LockClassifier",
    "analyze_locks",
    "analyze_resources",
    "LockGraph",
    "ProgramLockAnalysis",
]
