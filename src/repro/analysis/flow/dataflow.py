"""Worklist dataflow over the flow CFG: lock states and resource states.

Two independent abstract domains:

**Lock domain** — a state is a ``frozenset`` of ``(lock_class,
exclusive)`` tokens; the analysis keeps a *set of possible states* per
node (collecting semantics) so mode-exclusive branches stay separate
(the coarse ``db`` RWLock and the ``catalog``/``table`` latch set are
never merged into one impossible held-set).  Outputs per function:
every acquisition site with the held-sets observed before it, the
held-sets at every call site (for interprocedural propagation), direct
blocking-call sites, and the held-sets at ``yield`` points (the
context-manager summary of a ``@contextmanager`` helper).

**Resource domain** — a state is a ``frozenset`` of live resource
tokens: MVCC snapshot pins (``snap = table.pin_snapshot()``), open
clone sets (``tree.begin_write(...)``), and attached shared-memory
segments.  The join is set union (may-leak); kills are applied by
release calls (``unpin`` / ``end_write`` / ``close``), by ownership
transfer (the name is returned or stored into an attribute /
container), by ``with name:`` management, and by assume-edges (the
``if snap is not None: snap.unpin()`` idiom — on the ``None`` branch
the resource provably does not exist).  Tokens still live at the
function's normal or exceptional exit are leaks.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Callable, Mapping, Sequence, Union

from .cfg import CFG, Edge, build_cfg

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: One abstract held lock: (lock class, acquired exclusively).
Token = tuple[str, bool]
State = frozenset[Token]

#: Lock classes whose exclusive acquisition is a statement latch (the
#: RL005 "don't block under an exclusive latch" scope).
EXCLUSIVE_LATCH_CLASSES = frozenset({"catalog", "table", "db"})

#: The coarse legacy RWLock class vs the per-table latch hierarchy
#: classes.  A process runs in exactly one latch mode (the latch
#: manager's guards yield one alternative or the other, never a mix),
#: so abstract states combining the two describe no real execution.
LEGACY_CLASSES = frozenset({"db"})
MVCC_CLASSES = frozenset({"catalog", "table"})


def _mode_compatible(state: State, alt: tuple[Token, ...]) -> bool:
    """False when applying ``alt`` would mix the legacy ``db`` class
    with the MVCC ``catalog``/``table`` classes in one state."""
    held = {token[0] for token in state}
    added = {token[0] for token in alt}
    if held & LEGACY_CLASSES and added & MVCC_CLASSES:
        return False
    if held & MVCC_CLASSES and added & LEGACY_CLASSES:
        return False
    return True

#: Cap on distinct states tracked per CFG node before collapsing to
#: their union (keeps pathological branch fans linear).
_MAX_STATES = 24

#: ``with``-context latch methods and the token-set alternatives they
#: acquire: first alternative is the coarse (single ``db`` RWLock)
#: mode, second the per-table latch hierarchy (see
#: ``repro.engine.latches``).
_LATCH_WITH: Mapping[str, tuple[tuple[Token, ...], ...]] = {
    "read_latch": ((("db", False),),
                   (("catalog", False), ("table", False))),
    "write_latch": ((("db", True),),
                    (("catalog", False), ("table", True))),
    "ddl_latch": ((("db", True),), (("catalog", True),)),
    "catalog_latch": ((("catalog", False),),),
    # SELECT statement guard: catalog latch, an index-plan table latch,
    # or the coordinator's brief all-table latch — over-approximated
    # as the shared catalog+table set.
    "_mvcc_select_guard": ((("catalog", False), ("table", False)),),
}

#: Owner classes whose internal ``_lock`` / ``_mutex`` has a named lock
#: class in the order graph; other owners get ``mutex:<Class>``.
_MUTEX_OWNER_CLASS: Mapping[str, str] = {
    "BufferPool": "pool",
    "PageFile": "pagefile",
    "WorkerPool": "workerpool",
}

_BLOCKING_BARE = frozenset({"sleep", "input"})
_BLOCKING_ATTR = frozenset({
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("os", "system"),
    ("select", "select"),
})
_SOCKET_METHODS = frozenset({
    "accept", "connect", "recv", "recv_into", "recvfrom", "sendall",
})


def _receiver_name(func: ast.Attribute) -> str | None:
    """Best-effort receiver name for ``recv.meth(...)``: the last
    attribute segment (``self._catalog`` -> ``_catalog``) or the bare
    name."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _is_mutex_attr(attr: str) -> bool:
    return attr == "_lock" or attr.endswith("_lock") or attr.endswith("_mutex")


def rwlock_class(receiver: str | None) -> str:
    """Lock class of an RWLock named ``receiver`` (``_catalog`` is the
    catalog RWLock, per-table latches conventionally carry ``latch`` in
    the name, everything else is the coarse database lock)."""
    name = (receiver or "").lower()
    if "catalog" in name:
        return "catalog"
    if "latch" in name:
        return "table"
    return "db"


def mutex_class(owner_class: str | None) -> str:
    if owner_class is None:
        return "mutex"
    return _MUTEX_OWNER_CLASS.get(owner_class, f"mutex:{owner_class}")


def is_blocking_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _BLOCKING_BARE
    if isinstance(func, ast.Attribute):
        recv = _receiver_name(func)
        if recv is not None and (recv, func.attr) in _BLOCKING_ATTR:
            return True
        return func.attr in _SOCKET_METHODS
    return False


class LockClassifier:
    """Maps ``with`` items and explicit acquire/release calls to lock
    tokens.  ``cm_summaries`` adds held-set alternatives for
    user-defined ``@contextmanager`` guards (keyed by bare method
    name), solved by fixpoint in :mod:`.lockgraph`."""

    def __init__(
        self,
        cm_summaries: Mapping[str, tuple[State, ...]] | None = None,
    ) -> None:
        self.cm_summaries: dict[str, tuple[State, ...]] = dict(cm_summaries or {})

    def with_alternatives(
        self, expr: ast.expr, owner_class: str | None
    ) -> tuple[tuple[Token, ...], ...] | None:
        """Possible token-sets acquired by ``with expr:``; ``None`` when
        the context expression is not a lock guard."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            attr = expr.func.attr
            if attr in _LATCH_WITH:
                return _LATCH_WITH[attr]
            if attr in ("read_lock", "write_lock"):
                cls = rwlock_class(_receiver_name(expr.func))
                return ((( cls, attr == "write_lock"),),)
            summary = self.cm_summaries.get(attr)
            if summary is not None:
                return tuple(tuple(sorted(state)) for state in summary)
            return None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            summary = self.cm_summaries.get(expr.func.id)
            if summary is not None:
                return tuple(tuple(sorted(state)) for state in summary)
            return None
        if isinstance(expr, ast.Attribute) and _is_mutex_attr(expr.attr):
            if expr.attr.endswith("_cond"):
                return None
            return (((mutex_class(owner_class), True),),)
        return None


@dataclasses.dataclass(frozen=True)
class _Acq:
    token: Token
    line: int
    col: int
    detail: str


@dataclasses.dataclass(frozen=True)
class _Rel:
    token: Token


@dataclasses.dataclass(frozen=True)
class _CallEff:
    name: str
    line: int
    col: int
    blocking: bool


_Effect = Union[_Acq, _Rel, _CallEff]


def _iter_calls(expr: ast.expr) -> list[ast.Call]:
    """Call expressions in source order (outer before inner args)."""
    out: list[ast.Call] = []

    def visit(node: ast.expr) -> None:
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Call):
            out.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                visit(child)

    visit(expr)
    return out


def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The statement's own expressions (nested block statements are
    their own CFG nodes)."""
    return [child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.expr)]


def _lock_effects(stmt: ast.stmt) -> list[_Effect]:
    """Explicit lock and call effects of one statement, in AST order."""
    effects: list[_Effect] = []
    exprs = _own_exprs(stmt)
    # A with-statement's context expressions are handled as edge
    # actions, not statement effects; its header node has none.
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs = []
    for expr in exprs:
        for call in _iter_calls(expr):
            line = call.lineno
            col = call.col_offset + 1
            func = call.func
            if isinstance(func, ast.Attribute):
                attr = func.attr
                recv = _receiver_name(func)
                if attr in ("acquire_read", "acquire_write"):
                    cls = rwlock_class(recv)
                    effects.append(_Acq((cls, attr == "acquire_write"),
                                        line, col, attr))
                    continue
                if attr in ("release_read", "release_write"):
                    cls = rwlock_class(recv)
                    effects.append(_Rel((cls, attr == "release_write")))
                    continue
                if attr == "acquire_intent":
                    effects.append(_Acq(("intent", True), line, col, attr))
                    continue
                if attr == "release_intent":
                    effects.append(_Rel(("intent", True)))
                    continue
                effects.append(_CallEff(attr, line, col,
                                        is_blocking_call(call)))
            elif isinstance(func, ast.Name):
                effects.append(_CallEff(func.id, line, col,
                                        is_blocking_call(call)))
    return effects


def _has_yield(stmt: ast.stmt) -> bool:
    for expr in _own_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
    return False


@dataclasses.dataclass
class Acquisition:
    """One lock acquisition site with every held-set seen before it."""

    token: Token
    line: int
    col: int
    detail: str
    held: tuple[State, ...]


@dataclasses.dataclass
class CallHeld:
    """A call site with every held-set seen at it."""

    name: str
    line: int
    col: int
    held: tuple[State, ...]


@dataclasses.dataclass
class FunctionLockFacts:
    acquisitions: list[Acquisition]
    calls: list[CallHeld]
    blocking: list[CallHeld]
    yield_states: tuple[State, ...]


def _fold_lock(state: State, effects: Sequence[_Effect],
               record: Callable[[_Effect, State], None] | None = None) -> State:
    held = set(state)
    for eff in effects:
        if record is not None:
            record(eff, frozenset(held))
        if isinstance(eff, _Acq):
            held.add(eff.token)
        elif isinstance(eff, _Rel):
            held.discard(eff.token)
    return frozenset(held)


def _apply_lock_edge(
    state: State,
    edge: Edge,
    classifier: LockClassifier,
    owner_class: str | None,
    record: Callable[[Token, State, ast.withitem], None] | None = None,
) -> list[State]:
    states = [state]
    for action in edge.actions:
        kind = action[0]
        if kind == "with_enter":
            item: ast.withitem = action[1]
            alts = classifier.with_alternatives(item.context_expr, owner_class)
            if not alts:
                continue
            nxt: list[State] = []
            for st in states:
                usable = [a for a in alts if _mode_compatible(st, a)]
                for alt in usable or alts:
                    if record is not None:
                        for token in alt:
                            record(token, st, item)
                    nxt.append(st | frozenset(alt))
            states = nxt
        elif kind == "with_exit":
            item = action[1]
            alts = classifier.with_alternatives(item.context_expr, owner_class)
            if not alts:
                continue
            released = frozenset(tok for alt in alts for tok in alt)
            states = [st - released for st in states]
    return states


def _solve(
    cfg: CFG,
    out_fn: Callable[[int, State], State],
    edge_fn: Callable[[State, Edge], list[State]],
) -> list[set[State]]:
    """Generic collecting-semantics forward fixpoint: in-state sets per
    node.  Exceptional edges propagate the pre-statement state."""
    states: list[set[State]] = [set() for _ in range(len(cfg))]
    states[cfg.entry] = {frozenset()}
    work = [cfg.entry]
    while work:
        node = work.pop()
        in_states = list(states[node])
        outs = [out_fn(node, st) for st in in_states]
        for edge in cfg.succ[node]:
            base = in_states if edge.exceptional else outs
            moved: set[State] = set()
            for st in base:
                moved.update(edge_fn(st, edge))
            dst = states[edge.dst]
            added = moved - dst
            if added:
                dst.update(added)
                if len(dst) > _MAX_STATES:
                    merged = frozenset(
                        tok for st in dst for tok in st)
                    dst.clear()
                    dst.add(merged)
                work.append(edge.dst)
    return states


def analyze_locks(
    func: FuncDef,
    owner_class: str | None,
    classifier: LockClassifier,
) -> FunctionLockFacts:
    cfg = build_cfg(func)
    effects = [
        _lock_effects(stmt) if stmt is not None else []
        for stmt in cfg.stmts
    ]

    def out_fn(node: int, st: State) -> State:
        return _fold_lock(st, effects[node])

    def edge_fn(st: State, edge: Edge) -> list[State]:
        return _apply_lock_edge(st, edge, classifier, owner_class)

    states = _solve(cfg, out_fn, edge_fn)

    acq: dict[tuple[Token, int, int, str], set[State]] = {}
    calls: dict[tuple[str, int, int], set[State]] = {}
    blocking: dict[tuple[str, int, int], set[State]] = {}
    yields: set[State] = set()

    for node in range(len(cfg)):
        if not states[node]:
            continue
        in_states = list(states[node])
        stmt = cfg.stmts[node]
        if stmt is not None and _has_yield(stmt):
            yields.update(in_states)
        if effects[node]:
            def record_eff(eff: _Effect, st: State) -> None:
                if isinstance(eff, _Acq):
                    acq.setdefault(
                        (eff.token, eff.line, eff.col, eff.detail),
                        set()).add(st)
                elif isinstance(eff, _CallEff):
                    calls.setdefault(
                        (eff.name, eff.line, eff.col), set()).add(st)
                    if eff.blocking:
                        blocking.setdefault(
                            (eff.name, eff.line, eff.col), set()).add(st)

            for st in in_states:
                _fold_lock(st, effects[node], record_eff)
        outs = [out_fn(node, st) for st in in_states]
        for edge in cfg.succ[node]:
            base = in_states if edge.exceptional else outs

            def record_with(token: Token, st: State,
                            item: ast.withitem) -> None:
                expr = item.context_expr
                detail = (expr.func.attr
                          if isinstance(expr, ast.Call)
                          and isinstance(expr.func, ast.Attribute)
                          else expr.attr
                          if isinstance(expr, ast.Attribute)
                          else "with")
                acq.setdefault(
                    (token, expr.lineno, expr.col_offset + 1, detail),
                    set()).add(st)

            for st in base:
                _apply_lock_edge(st, edge, classifier, owner_class,
                                 record_with)

    return FunctionLockFacts(
        acquisitions=[
            Acquisition(token=k[0], line=k[1], col=k[2], detail=k[3],
                        held=tuple(sorted(v, key=sorted)))
            for k, v in sorted(acq.items(),
                               key=lambda kv: (kv[0][1], kv[0][2]))
        ],
        calls=[
            CallHeld(name=k[0], line=k[1], col=k[2],
                     held=tuple(sorted(v, key=sorted)))
            for k, v in sorted(calls.items(),
                               key=lambda kv: (kv[0][1], kv[0][2]))
        ],
        blocking=[
            CallHeld(name=k[0], line=k[1], col=k[2],
                     held=tuple(sorted(v, key=sorted)))
            for k, v in sorted(blocking.items(),
                               key=lambda kv: (kv[0][1], kv[0][2]))
        ],
        yield_states=tuple(sorted(yields, key=sorted)),
    )


# ---------------------------------------------------------------------------
# Resource domain
# ---------------------------------------------------------------------------

#: (kind, bound name, gen line); kinds: "pin", "write", "shm".
ResourceToken = tuple[str, str, int]
ResState = frozenset[ResourceToken]


@dataclasses.dataclass
class ResourceLeak:
    kind: str
    name: str
    line: int
    col: int
    #: Path kinds the token leaks on: "exception" and/or "normal".
    paths: tuple[str, ...]


@dataclasses.dataclass
class FunctionResources:
    leaks: list[ResourceLeak]


def _call_attr(call: ast.Call) -> tuple[str, str | None] | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr, _receiver_name(call.func)
    return None


def _contains_call_attr(expr: ast.expr, attr: str) -> bool:
    for call in _iter_calls(expr):
        info = _call_attr(call)
        if info is not None and info[0] == attr:
            return True
    return False


def _is_shm_attach(expr: ast.expr) -> bool:
    """A SharedMemory *attach* (no ``create=True``) or an ``_attach``
    helper call anywhere in the expression."""
    for call in _iter_calls(expr):
        func = call.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        if name == "SharedMemory":
            creates = any(
                kw.arg == "create"
                and not (isinstance(kw.value, ast.Constant)
                         and kw.value.value is False)
                for kw in call.keywords)
            if not creates:
                return True
        elif name is not None and ("attach" in name.lower()
                                   and "detach" not in name.lower()):
            return True
    return False


def _transfer_names(expr: ast.expr) -> set[str]:
    """Names whose resource ownership is *transferred* by handing this
    expression to someone else (returning or storing it): the bare
    name, tuple/list elements, and direct call arguments (``return
    Cursor(snap)`` builds an owner).  A name that is merely *used*
    (``return list(snap.scan())`` — ``snap`` is a receiver, not an
    argument) is not transferred and still leaks."""
    out: set[str] = set()
    if isinstance(expr, ast.Name):
        out.add(expr.id)
    elif isinstance(expr, (ast.Tuple, ast.List)):
        for elt in expr.elts:
            out.update(_transfer_names(elt))
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            if isinstance(arg, ast.Name):
                out.add(arg.id)
        for kw in expr.keywords:
            if isinstance(kw.value, ast.Name):
                out.add(kw.value.id)
    elif isinstance(expr, ast.IfExp):
        out.update(_transfer_names(expr.body))
        out.update(_transfer_names(expr.orelse))
    return out


@dataclasses.dataclass
class _ResEffects:
    gens: list[tuple[ResourceToken, int]]  # (token, col)
    kill_names: set[str]
    kill_tokens: set[tuple[str, str]]  # (kind, name)


def _res_effects(stmt: ast.stmt) -> _ResEffects:
    eff = _ResEffects(gens=[], kill_names=set(), kill_tokens=set())
    exprs = _own_exprs(stmt)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        # ``with snap:`` — the context manager owns the resource now;
        # a pin used as its own guard is managed on every path.
        for item in stmt.items:
            if isinstance(item.context_expr, ast.Name):
                eff.kill_names.add(item.context_expr.id)
        exprs = []
    # Release / handoff calls anywhere in the statement.
    for expr in exprs:
        for call in _iter_calls(expr):
            info = _call_attr(call)
            if info is None:
                continue
            attr, recv = info
            if recv is None:
                continue
            if attr == "unpin":
                eff.kill_tokens.add(("pin", recv))
            elif attr == "end_write":
                eff.kill_tokens.add(("write", recv))
            elif attr in ("close", "unlink"):
                eff.kill_tokens.add(("shm", recv))
            elif attr == "begin_write":
                eff.gens.append((("write", recv, call.lineno),
                                 call.col_offset + 1))
    if isinstance(stmt, ast.Assign) and stmt.value is not None:
        targets = stmt.targets
        value = stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets = [stmt.target]
        value = stmt.value
    else:
        return eff
    name_targets = [t.id for t in targets if isinstance(t, ast.Name)]
    stored = any(isinstance(t, (ast.Attribute, ast.Subscript))
                 for t in targets)
    if name_targets:
        if _contains_call_attr(value, "pin_snapshot"):
            for name in name_targets:
                eff.gens.append((("pin", name, stmt.lineno),
                                 stmt.col_offset + 1))
        elif _is_shm_attach(value):
            for name in name_targets:
                eff.gens.append((("shm", name, stmt.lineno),
                                 stmt.col_offset + 1))
    if stored:
        # Ownership transfer: the resource now lives in an object /
        # container whose lifetime someone else manages.
        eff.kill_names.update(_transfer_names(value))
    return eff


def _apply_res_edge(state: ResState, edge: Edge) -> ResState:
    live = set(state)
    for action in edge.actions:
        kind = action[0]
        if kind == "return":
            stmt: ast.Return | None = action[1]
            if stmt is not None and stmt.value is not None:
                returned = _transfer_names(stmt.value)
                live = {t for t in live if t[1] not in returned}
        elif kind == "assume":
            name, bound = action[1], action[2]
            if not bound:
                # The name is falsy/None on this branch: no resource
                # can be bound to it.
                live = {t for t in live if t[1] != name}
    return frozenset(live)


def analyze_resources(func: FuncDef) -> FunctionResources:
    cfg = build_cfg(func)
    effects = [
        _res_effects(stmt) if stmt is not None else None
        for stmt in cfg.stmts
    ]
    cols: dict[ResourceToken, int] = {}
    for eff in effects:
        if eff is not None:
            for token, col in eff.gens:
                cols.setdefault(token, col)

    states: list[ResState] = [frozenset() for _ in range(len(cfg))]
    reached = [False] * len(cfg)
    reached[cfg.entry] = True
    work = [cfg.entry]
    while work:
        node = work.pop()
        in_state = states[node]
        eff = effects[node]
        if eff is None:
            out_state = exc_state = in_state
        else:
            live = {
                t for t in in_state
                if t[1] not in eff.kill_names
                and (t[0], t[1]) not in eff.kill_tokens
            }
            # On the exception edge the statement's acquisitions did
            # not happen, but its releases are assumed atomic (a
            # raising ``unpin``/``close`` is the release's bug, not a
            # leak at this site).
            exc_state = frozenset(live)
            live.update(token for token, _ in eff.gens)
            out_state = frozenset(live)
        for edge in cfg.succ[node]:
            base = exc_state if edge.exceptional else out_state
            moved = _apply_res_edge(base, edge)
            merged = states[edge.dst] | moved
            if merged != states[edge.dst] or not reached[edge.dst]:
                states[edge.dst] = merged
                reached[edge.dst] = True
                work.append(edge.dst)

    leaks: dict[ResourceToken, set[str]] = {}
    for token in states[cfg.exit]:
        leaks.setdefault(token, set()).add("normal")
    for token in states[cfg.raise_exit]:
        leaks.setdefault(token, set()).add("exception")
    return FunctionResources(leaks=[
        ResourceLeak(kind=token[0], name=token[1], line=token[2],
                     col=cols.get(token, 1),
                     paths=tuple(sorted(paths)))
        for token, paths in sorted(leaks.items(),
                                   key=lambda kv: (kv[0][2], kv[0][0]))
    ])
