"""RL003 latch-yield hygiene and RC601 version lifetime (MVCC rules).

RL003 (warn) — a generator must not ``yield`` while lexically inside a
latch or RWLock guard: the consumer decides when the next batch is
pulled, so the latch is held across an unbounded suspension (the exact
anti-pattern MVCC snapshots exist to remove — a scan parked on a held
table latch starves every writer of that table).  Functions decorated
with ``@contextmanager`` are exempt: their single ``yield`` under the
guard *is* the guard protocol.  This rule is a warning tier — the
legacy ``REPRO_MVCC=off`` paths intentionally scan under the table
latch and must stay representable.

RC601 (error) — copy-on-write version objects have bracketed
lifetimes, enforced per function body:

- every ``<x>.pin_snapshot()`` result that is bound to a name must be
  released on all exit paths: the same name must be unpinned inside a
  ``finally`` block (``snap.unpin(...)``), used as a context manager
  (``with snap:`` / ``with t.pin_snapshot() as snap:``), or returned
  to the caller (ownership transfer, e.g. a pin helper);
- every ``<x>.begin_write(...)`` must have a matching ``end_write()``
  inside a ``finally`` block, so the clone set a writer opened is
  always closed out (published or reconciled) even when the statement
  fails mid-flight — otherwise the next writer would re-clone pages
  that were never accounted for and the pool would leak dead versions.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .framework import Finding, LintContext, Rule, SourceFile


def _iter_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_contextmanager(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in func.decorator_list:
        name = dec.attr if isinstance(dec, ast.Attribute) else (
            dec.id if isinstance(dec, ast.Name) else None)
        if name in ("contextmanager", "asynccontextmanager"):
            return True
    return False


#: ``with``-context method names whose guard must not span a ``yield``.
#: Kept in sync with ``callgraph.LATCH_METHODS`` plus the legacy RWLock.
_GUARD_METHODS = frozenset({
    "read_latch", "write_latch", "ddl_latch", "catalog_latch",
    "_mvcc_select_guard", "read_lock", "write_lock",
})


def _guard_line(item: ast.withitem) -> int | None:
    expr = item.context_expr
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
            and expr.func.attr in _GUARD_METHODS:
        return expr.lineno
    return None


class _YieldScan(ast.NodeVisitor):
    """Collect yields lexically under a guard, not crossing into nested
    function definitions."""

    def __init__(self) -> None:
        self.guard_stack: list[int] = []
        self.hits: list[tuple[int, int]] = []  # (yield line, guard line)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are scanned on their own terms

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            line = _guard_line(item)
            if line is not None:
                self.guard_stack.append(line)
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.guard_stack.pop()

    visit_With = _visit_with  # type: ignore[assignment]
    visit_AsyncWith = _visit_with  # type: ignore[assignment]

    def visit_Yield(self, node: ast.Yield) -> None:
        if self.guard_stack:
            self.hits.append((node.lineno, self.guard_stack[-1]))

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        if self.guard_stack:
            self.hits.append((node.lineno, self.guard_stack[-1]))


class LatchYieldRule(Rule):
    code = "RL003"
    name = "latch-yield"
    description = (
        "generators must not yield while a latch or RWLock guard is "
        "held (the consumer controls how long the suspension lasts); "
        "@contextmanager functions are exempt"
    )
    severity = "warn"

    def check(self, files: Sequence[SourceFile],
              ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for source in files:
            assert source.tree is not None
            for func in _iter_functions(source.tree):
                if _is_contextmanager(func):
                    continue
                scan = _YieldScan()
                for stmt in func.body:
                    scan.visit(stmt)
                for yline, gline in scan.hits:
                    findings.append(Finding(
                        rule=self.code,
                        path=source.path,
                        line=yline,
                        message=(
                            f"{func.name} yields while holding the "
                            f"latch acquired at line {gline}; the "
                            "guard spans an unbounded consumer-driven "
                            "suspension (scan a pinned snapshot "
                            "instead, or materialize before yielding)"
                        ),
                    ))
        return findings


class _LifetimeScan:
    """Per-function bookkeeping for RC601."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.pins: list[tuple[str, int]] = []  # (name, line) of pin assigns
        self.with_pins: set[str] = set()  # `with x.pin_snapshot() as s`
        self.ctx_used: set[str] = set()  # `with snap:` style
        self.finally_unpinned: set[str] = set()
        self.returned: set[str] = set()
        self.begin_writes: list[int] = []
        self.finally_end_writes = 0
        self._walk(func.body, in_finally=False)

    @staticmethod
    def _calls_method(expr: ast.expr, method: str) -> bool:
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == method)

    def _contains_pin_call(self, expr: ast.expr) -> bool:
        return any(
            self._calls_method(node, "pin_snapshot")
            for node in ast.walk(expr) if isinstance(node, ast.expr))

    def _scan_expr(self, expr: ast.expr, in_finally: bool) -> None:
        """Record interesting calls in one expression tree (expressions
        cannot contain statements, so this never double-counts)."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                if node.func.attr == "begin_write":
                    self.begin_writes.append(node.lineno)
                elif node.func.attr == "end_write" and in_finally:
                    self.finally_end_writes += 1
                elif node.func.attr == "unpin" and in_finally \
                        and isinstance(node.func.value, ast.Name):
                    self.finally_unpinned.add(node.func.value.id)

    def _walk(self, body: Sequence[ast.stmt], in_finally: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested definitions are scanned on their own
            if isinstance(stmt, ast.Try):
                self._walk(stmt.body, in_finally)
                for handler in stmt.handlers:
                    self._walk(handler.body, in_finally)
                self._walk(stmt.orelse, in_finally)
                self._walk(stmt.finalbody, True)
                continue
            if isinstance(stmt, ast.Assign) and stmt.value is not None \
                    and self._contains_pin_call(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.pins.append((target.id, stmt.lineno))
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                # Ownership transfer is only `return snap` (or a tuple
                # of names) — returning a *derived* value keeps the
                # pin's lifetime in this function.
                value = stmt.value
                elts = value.elts if isinstance(
                    value, (ast.Tuple, ast.List)) else [value]
                for elt in elts:
                    if isinstance(elt, ast.Name):
                        self.returned.add(elt.id)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    expr = item.context_expr
                    if self._calls_method(expr, "pin_snapshot"):
                        if isinstance(item.optional_vars, ast.Name):
                            self.with_pins.add(item.optional_vars.id)
                    elif isinstance(expr, ast.Name):
                        self.ctx_used.add(expr.id)
            # Direct expressions of this statement, then nested bodies.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, in_finally)
                elif isinstance(child, ast.stmt):
                    self._walk([child], in_finally)
                elif isinstance(child, (ast.excepthandler, ast.match_case,
                                        ast.withitem)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            self._walk([sub], in_finally)
                        elif isinstance(sub, ast.expr):
                            self._scan_expr(sub, in_finally)


class VersionLifetimeRule(Rule):
    code = "RC601"
    name = "version-lifetime"
    description = (
        "pinned snapshots must be unpinned on all exit paths (finally "
        "or context manager) and begin_write must pair with end_write "
        "in a finally"
    )
    severity = "error"

    def check(self, files: Sequence[SourceFile],
              ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for source in files:
            assert source.tree is not None
            for func in _iter_functions(source.tree):
                scan = _LifetimeScan(func)
                for name, line in scan.pins:
                    if name in scan.finally_unpinned \
                            or name in scan.ctx_used \
                            or name in scan.with_pins \
                            or name in scan.returned:
                        continue
                    findings.append(Finding(
                        rule=self.code,
                        path=source.path,
                        line=line,
                        message=(
                            f"{func.name} pins a snapshot into "
                            f"{name!r} but never unpins it on all "
                            "exit paths (call unpin in a finally, use "
                            "it as a context manager, or return it)"
                        ),
                    ))
                if scan.begin_writes and not scan.finally_end_writes:
                    findings.append(Finding(
                        rule=self.code,
                        path=source.path,
                        line=scan.begin_writes[0],
                        message=(
                            f"{func.name} calls begin_write without "
                            "an end_write in a finally block; the "
                            "writer's clone set must be closed out "
                            "even when the statement fails"
                        ),
                    ))
        return findings
