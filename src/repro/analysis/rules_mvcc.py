"""RL003 latch-yield hygiene and RC601 version lifetime (MVCC rules).

RL003 (warn) — a generator must not ``yield`` while lexically inside a
latch or RWLock guard: the consumer decides when the next batch is
pulled, so the latch is held across an unbounded suspension (the exact
anti-pattern MVCC snapshots exist to remove — a scan parked on a held
table latch starves every writer of that table).  Functions decorated
with ``@contextmanager`` are exempt: their single ``yield`` under the
guard *is* the guard protocol.  This rule is a warning tier — the
legacy ``REPRO_MVCC=off`` paths intentionally scan under the table
latch and must stay representable.

RC601 (error) — copy-on-write version objects have bracketed
lifetimes, enforced *path-sensitively* by the resource dataflow
(:func:`repro.analysis.flow.dataflow.analyze_resources`) over the
function's CFG:

- every ``<x>.pin_snapshot()`` result that is bound to a name must be
  released on **all** exit paths — normal fall-through, every early
  ``return``, and every exception unwind.  A pin released by a
  ``finally`` block, managed by a ``with`` statement, returned to the
  caller, or stored into a container/attribute (ownership transfer)
  is clean; a pin whose unpin can be skipped by an early return or a
  raise between pin and unpin is a leak on exactly those paths, and
  the finding says which;
- every ``<x>.begin_write(...)`` must reach a matching ``end_write()``
  on all exit paths, so the clone set a writer opened is always closed
  out (published or reconciled) even when the statement fails
  mid-flight — otherwise the next writer would re-clone pages that
  were never accounted for and the pool would leak dead versions.

Ownership transfer is deliberately shallow: ``return snap`` (or a
tuple/list of names, or passing the pin directly to a call) hands the
pin to the caller, but ``return list(snap.scan())`` returns *derived*
data — the pin's lifetime stays in this function and an unbracketed
exit path is still a leak.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .flow.dataflow import ResourceLeak, analyze_resources
from .framework import Finding, LintContext, Rule, SourceFile


def _iter_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_contextmanager(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in func.decorator_list:
        name = dec.attr if isinstance(dec, ast.Attribute) else (
            dec.id if isinstance(dec, ast.Name) else None)
        if name in ("contextmanager", "asynccontextmanager"):
            return True
    return False


#: ``with``-context method names whose guard must not span a ``yield``.
#: Kept in sync with ``callgraph.LATCH_METHODS`` plus the legacy RWLock.
_GUARD_METHODS = frozenset({
    "read_latch", "write_latch", "ddl_latch", "catalog_latch",
    "_mvcc_select_guard", "read_lock", "write_lock",
})


def _guard_line(item: ast.withitem) -> int | None:
    expr = item.context_expr
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
            and expr.func.attr in _GUARD_METHODS:
        return expr.lineno
    return None


class _YieldScan(ast.NodeVisitor):
    """Collect yields lexically under a guard, not crossing into nested
    function definitions."""

    def __init__(self) -> None:
        self.guard_stack: list[int] = []
        #: (yield line, yield col, guard line)
        self.hits: list[tuple[int, int, int]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are scanned on their own terms

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            line = _guard_line(item)
            if line is not None:
                self.guard_stack.append(line)
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.guard_stack.pop()

    visit_With = _visit_with  # type: ignore[assignment]
    visit_AsyncWith = _visit_with  # type: ignore[assignment]

    def visit_Yield(self, node: ast.Yield) -> None:
        if self.guard_stack:
            self.hits.append((node.lineno, node.col_offset + 1,
                              self.guard_stack[-1]))

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        if self.guard_stack:
            self.hits.append((node.lineno, node.col_offset + 1,
                              self.guard_stack[-1]))


class LatchYieldRule(Rule):
    code = "RL003"
    name = "latch-yield"
    description = (
        "generators must not yield while a latch or RWLock guard is "
        "held (the consumer controls how long the suspension lasts); "
        "@contextmanager functions are exempt"
    )
    severity = "warn"

    def check(self, files: Sequence[SourceFile],
              ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for source in files:
            assert source.tree is not None
            for func in _iter_functions(source.tree):
                if _is_contextmanager(func):
                    continue
                scan = _YieldScan()
                for stmt in func.body:
                    scan.visit(stmt)
                for yline, ycol, gline in scan.hits:
                    findings.append(Finding(
                        rule=self.code,
                        path=source.path,
                        line=yline,
                        col=ycol,
                        message=(
                            f"{func.name} yields while holding the "
                            f"latch acquired at line {gline}; the "
                            "guard spans an unbounded consumer-driven "
                            "suspension (scan a pinned snapshot "
                            "instead, or materialize before yielding)"
                        ),
                    ))
        return findings


def _path_detail(leak: ResourceLeak) -> str:
    """Which exit paths the resource escapes on, for the message."""
    if leak.paths == ("exception",):
        return "when an exception unwinds past it"
    if leak.paths == ("normal",):
        return "on an exit path"
    return "on all exit paths"


class VersionLifetimeRule(Rule):
    code = "RC601"
    name = "version-lifetime"
    description = (
        "pinned snapshots must be unpinned on every exit path — "
        "normal, early-return and exception — and begin_write must "
        "reach end_write on every exit path (use a finally)"
    )
    severity = "error"

    def check(self, files: Sequence[SourceFile],
              ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for source in files:
            assert source.tree is not None
            for func in _iter_functions(source.tree):
                for leak in analyze_resources(func).leaks:
                    if leak.kind == "pin":
                        findings.append(Finding(
                            rule=self.code,
                            path=source.path,
                            line=leak.line,
                            col=leak.col,
                            message=(
                                f"{func.name} pins a snapshot into "
                                f"{leak.name!r} but never unpins it "
                                f"{_path_detail(leak)} (call unpin in "
                                "a finally, use it as a context "
                                "manager, or return it)"
                            ),
                        ))
                    elif leak.kind == "write":
                        findings.append(Finding(
                            rule=self.code,
                            path=source.path,
                            line=leak.line,
                            col=leak.col,
                            message=(
                                f"{func.name} calls begin_write "
                                "without reaching end_write "
                                f"{_path_detail(leak)}; the writer's "
                                "clone set must be closed out even "
                                "when the statement fails (put "
                                "end_write in a finally)"
                            ),
                        ))
        return findings
