"""RS401 — shard hygiene: pure merges, storage-free coordinator.

The distributed-aggregation design rests on two structural facts:

* **Merge purity.**  The coordinator folds shard partial states with
  ``merge_*`` functions; determinism (and bit-identical float SUM/AVG
  under range partitioning) holds only if a merge is a pure function
  of its arguments.  A merge that mutates an argument, reaches for
  module state via ``global``/``nonlocal``, or performs I/O could give
  different results depending on reply arrival order or be impossible
  to re-run — so inside any function whose name starts with ``merge``
  in a shard module, RS401 flags argument mutation (attribute or
  subscript assignment rooted at a parameter, mutator method calls on
  a parameter), ``global``/``nonlocal``, and ``open``/``print`` calls.

* **Storage-free coordinator.**  The coordinator routes and merges; it
  must never read pages itself, or a shard-side write could race a
  coordinator-side read with no latch protecting the pair.  In shard
  modules (every file with a ``shard`` path component except
  ``process.py``, which legitimately builds per-shard databases),
  RS401 flags ``.pool`` attribute access and any ``BufferPool``
  reference.

* **Plan-free failover.**  A failover replays the *already-planned*
  request on a sibling replica; it must not re-plan, or the replay
  could route differently from the original (DDL may have moved the
  catalog mirror under it mid-statement) and the two replicas would
  serve different statements.  Inside any function whose name contains
  ``failover`` or ``reprobe`` in a shard module, RS401 flags access to
  ``.session`` / ``.catalog`` and calls to ``plan_select`` /
  ``prepare`` — the failover and reprobe paths speak only to replica
  links and health state, never to the planner.
"""

from __future__ import annotations

import ast
import re
from typing import Sequence

from .framework import Finding, LintContext, Rule, SourceFile

_MUTATORS = frozenset({
    "append", "extend", "add", "update", "insert", "pop", "remove",
    "clear", "setdefault", "discard", "write", "send",
})

_IO_CALLS = frozenset({"open", "print"})


def _is_shard_file(source: SourceFile) -> bool:
    return "shard" in re.split(r"[\\/]", source.display_path)


def _root_name(node: ast.expr) -> str | None:
    """The leftmost ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class ShardHygieneRule(Rule):
    code = "RS401"
    name = "shard-hygiene"
    description = (
        "merge_* functions in shard modules must be pure; shard "
        "coordinator code must not touch BufferPool storage; "
        "failover/reprobe paths must not re-plan"
    )

    def check(self, files: Sequence[SourceFile],
              ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for source in files:
            if source.tree is None or not _is_shard_file(source):
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if node.name.startswith("merge"):
                    findings.extend(self._check_merge(source, node))
                if "failover" in node.name or "reprobe" in node.name:
                    findings.extend(self._check_failover(source, node))
            if source.basename != "process.py":
                findings.extend(self._check_storage(source))
        return findings

    # -- merge purity --------------------------------------------------------

    def _check_merge(self, source: SourceFile,
                     func: ast.FunctionDef) -> list[Finding]:
        params = {arg.arg for arg in (
            func.args.posonlyargs + func.args.args
            + func.args.kwonlyargs)}
        if func.args.vararg is not None:
            params.add(func.args.vararg.arg)
        if func.args.kwarg is not None:
            params.add(func.args.kwarg.arg)
        params.discard("self")
        params.discard("cls")
        findings: list[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(Finding(
                rule=self.code, path=source.display_path,
                line=getattr(node, "lineno", func.lineno),
                col=getattr(node, "col_offset", -1) + 1,
                message=(f"merge function '{func.name}' must stay "
                         f"pure: {what}")))

        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                flag(node, "uses global state")
            elif isinstance(node, ast.Nonlocal):
                flag(node, "uses nonlocal state")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute,
                                           ast.Subscript)) and \
                            _root_name(target) in params:
                        flag(node, f"assigns into argument "
                                   f"'{_root_name(target)}'")
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and \
                        node.func.id in _IO_CALLS:
                    flag(node, f"performs I/O via {node.func.id}()")
                elif isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _MUTATORS and \
                        _root_name(node.func.value) in params:
                    flag(node, f"mutates argument "
                               f"'{_root_name(node.func.value)}' via "
                               f".{node.func.attr}()")
        return findings

    # -- failover replay isolation -------------------------------------------

    _PLANNER_ATTRS = frozenset({"session", "catalog"})
    _PLANNER_CALLS = frozenset({"plan_select", "prepare"})

    def _check_failover(self, source: SourceFile,
                        func: ast.FunctionDef) -> list[Finding]:
        """Failover/reprobe bodies replay or probe; they never plan.
        Flags ``.session``/``.catalog`` access and planner calls so a
        replay can never silently re-route mid-statement."""
        findings: list[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(Finding(
                rule=self.code, path=source.display_path,
                line=getattr(node, "lineno", func.lineno),
                col=getattr(node, "col_offset", -1) + 1,
                message=(f"failover path '{func.name}' must not "
                         f"re-plan: {what}")))

        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and \
                    node.attr in self._PLANNER_ATTRS:
                flag(node, f"touches .{node.attr} (the catalog "
                           f"mirror/planner)")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self._PLANNER_CALLS:
                flag(node, f"calls .{node.func.attr}()")
        return findings

    # -- coordinator storage isolation ---------------------------------------

    def _check_storage(self, source: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute) and node.attr == "pool":
                findings.append(Finding(
                    rule=self.code, path=source.display_path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=("shard coordinator code must not touch "
                             "the buffer pool; storage belongs to the "
                             "shard processes")))
            elif isinstance(node, ast.Name) and \
                    node.id == "BufferPool":
                findings.append(Finding(
                    rule=self.code, path=source.display_path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=("shard coordinator code must not use "
                             "BufferPool directly; storage belongs to "
                             "the shard processes")))
        return findings
