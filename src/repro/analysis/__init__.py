"""replint — AST-based invariant checks for the repro engine and server.

Run as ``repro lint`` or ``python -m repro.analysis``.  The rules encode the
concurrency and serialization invariants introduced by the server,
vectorized, and parallel engine work:

==========  ===========================================================
RL001       lock discipline: SqlSession entry points hold db.lock
            before touching BufferPool/Table/BTree/Executor sinks
RL002       lock order: RWLock before pool ``_lock``, never inverse or
            re-entrant
RL003       latch yield (warn): generators never yield while a latch
            or RWLock guard is held (``@contextmanager`` exempt)
RL004       lock-order cycles: the whole-program acquired-while-held
            graph over lock classes is acyclic and matches the
            checked-in ``lock_graph.json``
RL005       blocking under latch (warn): no sleep/subprocess/socket/
            select call is reachable while an exclusive latch is held
RP101       parallel safety: registered/attached UDFs are module-level,
            name-picklable functions (or ``parallel_safe=False``)
RV201       kernel purity: batch kernels never mutate input arrays and
            return fresh ``(values, mask)`` pairs
RW301       wire-schema freeze: ``protocol.py`` matches
            ``protocol_schema.json`` and ``docs/SERVER.md``
RS401       shard hygiene: ``merge_*`` functions in shard modules are
            pure; coordinator code never touches BufferPool storage
RM501       shm lifetime: classes creating SharedMemory segments
            close() and unlink() them; attachers never unlink()
RC601       version lifetime: pinned MVCC snapshots are unpinned on
            all exit paths; begin_write pairs with end_write/finally
==========  ===========================================================

Each rule carries a severity: ``error`` findings gate CI (exit 1),
``warn`` findings are reported but warnings alone exit 0.

See ``docs/ANALYSIS.md`` for the full catalogue and suppression syntax.
"""

from __future__ import annotations

import os
from typing import Sequence

from .framework import (
    Finding,
    LintContext,
    Rule,
    SourceFile,
    collect_files,
    error_count,
    render_human,
    render_json,
    run_rules,
)
from .rules_flow import BlockingUnderLatchRule, LockCycleRule
from .rules_kernels import KernelPurityRule
from .rules_locks import LockDisciplineRule, LockOrderRule
from .rules_mem import ShmLifetimeRule
from .rules_mvcc import LatchYieldRule, VersionLifetimeRule
from .rules_parallel import ParallelSafetyRule
from .rules_shard import ShardHygieneRule
from .rules_wire import WireSchemaRule

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Rule",
    "SourceFile",
    "collect_files",
    "error_count",
    "lint_paths",
    "render_human",
    "render_json",
    "run_rules",
]

ALL_RULES: tuple[Rule, ...] = (
    LockDisciplineRule(),
    LockOrderRule(),
    LatchYieldRule(),
    LockCycleRule(),
    BlockingUnderLatchRule(),
    ParallelSafetyRule(),
    KernelPurityRule(),
    WireSchemaRule(),
    ShardHygieneRule(),
    ShmLifetimeRule(),
    VersionLifetimeRule(),
)


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule] | None = None,
    root: str | None = None,
) -> list[Finding]:
    """Lint files/directories and return the (suppression-filtered) findings."""

    base = root or os.getcwd()
    files = collect_files(paths, root=base)
    ctx = LintContext(base)
    return run_rules(files, tuple(rules) if rules is not None else ALL_RULES, ctx)
