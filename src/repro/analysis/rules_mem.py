"""RM501 — shared-memory lifetime: owners retire, attachers never unlink.

The shared-memory snapshot transport (:mod:`repro.engine.shm`) splits
segment lifetime between two parties, and the split is load-bearing:

* **Owners** create segments (``SharedMemory(create=True)``) and are
  the only party allowed to destroy them.  A class that creates
  segments must also call both ``.close()`` and ``.unlink()``
  somewhere in its body — create without a retire path leaks the
  segment past process exit (POSIX shm names are kernel-persistent).
* **Attachers** map an existing segment (``SharedMemory(name=...)``
  without ``create=True``) and may only ever ``.close()`` their local
  mapping.  An attacher that calls ``.unlink()`` destroys a segment it
  does not own: sibling workers still mapped to it get SIGBUS on next
  touch, and the owner's own unlink then raises.

RM501 flags (a) any class that calls ``SharedMemory(create=True)``
without both a ``.close()`` and an ``.unlink()`` call in its body,
(b) any function that attaches (a ``SharedMemory(...)`` call without
``create=True``) and also calls ``.unlink()``, and (c) — via the
path-sensitive resource dataflow
(:func:`repro.analysis.flow.dataflow.analyze_resources`) — any
attach-side mapping that is not ``close()``d on every exit path: a
mapping leaked on an exception unwind holds the segment's pages mapped
for the worker's whole lifetime, long after the owner unlinked it.
"""

from __future__ import annotations

import ast
from typing import Sequence

from .flow.dataflow import analyze_resources
from .framework import Finding, LintContext, Rule, SourceFile


def _is_shared_memory_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "SharedMemory"
    if isinstance(func, ast.Attribute):
        return func.attr == "SharedMemory"
    return False


def _creates(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant) \
                and kw.value.value is True:
            return True
    return False


class ShmLifetimeRule(Rule):
    code = "RM501"
    name = "shm-lifetime"
    description = (
        "classes that create SharedMemory segments must close() and "
        "unlink() them; attach-side code must never unlink() and must "
        "close() its mapping on every exit path"
    )

    def check(self, files: Sequence[SourceFile],
              ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for source in files:
            if source.tree is None:
                continue
            if "SharedMemory" not in source.text:
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    findings.extend(self._check_owner(source, node))
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    findings.extend(self._check_attacher(source, node))
                    findings.extend(self._check_mapping_paths(source, node))
        return findings

    # -- attachers close on every path (flow-sensitive) ----------------------

    def _check_mapping_paths(self, source: SourceFile,
                             func: ast.FunctionDef) -> list[Finding]:
        findings: list[Finding] = []
        for leak in analyze_resources(func).leaks:
            if leak.kind != "shm":
                continue
            detail = ("when an exception unwinds past it"
                      if leak.paths == ("exception",)
                      else "on an exit path")
            findings.append(Finding(
                rule=self.code, path=source.display_path,
                line=leak.line, col=leak.col,
                message=(f"'{func.name}' attaches a SharedMemory "
                         f"mapping into {leak.name!r} but does not "
                         f"close() it {detail}; a leaked mapping "
                         f"keeps the segment's pages resident for "
                         f"the process lifetime")))
        return findings

    # -- owner classes retire what they create -------------------------------

    def _check_owner(self, source: SourceFile,
                     cls: ast.ClassDef) -> list[Finding]:
        creates_at: int | None = None
        creates_col = 0
        closes = unlinks = False
        for node in ast.walk(cls):
            if isinstance(node, ast.Call):
                if _is_shared_memory_call(node) and _creates(node):
                    if creates_at is None:
                        creates_at = node.lineno
                        creates_col = node.col_offset + 1
                elif isinstance(node.func, ast.Attribute):
                    if node.func.attr == "close":
                        closes = True
                    elif node.func.attr == "unlink":
                        unlinks = True
        if creates_at is None or (closes and unlinks):
            return []
        missing = " and ".join(
            name for name, have in (("close()", closes),
                                    ("unlink()", unlinks)) if not have)
        return [Finding(
            rule=self.code, path=source.display_path, line=creates_at,
            col=creates_col,
            message=(f"class '{cls.name}' creates SharedMemory "
                     f"segments but never calls {missing}; owners "
                     f"must retire every segment they create"))]

    # -- attachers never unlink ----------------------------------------------

    def _check_attacher(self, source: SourceFile,
                        func: ast.FunctionDef) -> list[Finding]:
        attaches = False
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and \
                    _is_shared_memory_call(node) and not _creates(node):
                attaches = True
                break
        if not attaches:
            return []
        findings: list[Finding] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "unlink":
                findings.append(Finding(
                    rule=self.code, path=source.display_path,
                    line=node.lineno, col=node.col_offset + 1,
                    message=(f"attach-side function '{func.name}' "
                             f"calls unlink(); only the segment owner "
                             f"may unlink, attachers close() their "
                             f"mapping and stop")))
        return findings
