"""RV201 — vectorized batch kernels must not mutate their inputs.

The batch contract (see ``docs/EXECUTOR.md``) is that every kernel —
``eval_batch`` / ``step_batch`` methods and ``*_kernel`` / ``*_batch``
functions — receives column arrays it does not own and returns a *fresh*
``(values, mask)`` pair.  The row engine, the parity suite, and the parallel
engine's replays all assume a batch can be re-evaluated; a kernel that
writes into an input array (directly, through an alias, or via an ``out=``
argument) silently corrupts the shared buffer pool pages backing it.

The rule tracks simple aliases (``x = args[0]`` taints ``x``; rebinding to a
call result clears the taint) and flags:

- subscript stores into a parameter or alias (``args[0][:] = ...``),
- augmented assignment to a parameter name (``values += 1``),
- ``out=`` keyword arguments referencing a parameter or alias,
- for ``kernel``-named functions, returning a parameter (or a tuple/
  subscript of one) instead of a fresh array.

Attribute writes (``ctx.udf_calls += n``) are deliberately not flagged: the
evaluation context is mutable state, only the column arrays are frozen.
"""

from __future__ import annotations

import ast
from typing import Sequence

from .framework import Finding, LintContext, Rule, SourceFile

KERNEL_EXACT_NAMES = frozenset({"eval_batch", "step_batch", "kernel"})
KERNEL_SUFFIXES = ("_batch", "_kernel")


def _is_kernel_name(name: str) -> bool:
    return name in KERNEL_EXACT_NAMES or name.endswith(KERNEL_SUFFIXES)


def _returns_fresh_required(name: str) -> bool:
    # Only plain kernels have the "return a fresh array" obligation;
    # eval_batch/step_batch return (values, mask) tuples built internally.
    return name == "kernel" or name.endswith("_kernel")


class _KernelChecker:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef, path: str) -> None:
        self.func = func
        self.path = path
        args = func.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        self.params = frozenset(n for n in names if n not in ("self", "cls"))
        self.tainted: set[str] = set()
        self.findings: list[Finding] = []

    # -- taint helpers ----------------------------------------------------

    def _subscript_base(self, node: ast.expr) -> str | None:
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _is_input(self, name: str | None) -> bool:
        return name is not None and (name in self.params or name in self.tainted)

    def _value_taints(self, value: ast.expr) -> bool:
        """Does assigning this expression create an alias of an input?"""

        if isinstance(value, ast.Name):
            return self._is_input(value.id)
        if isinstance(value, ast.Subscript):
            return self._is_input(self._subscript_base(value))
        if isinstance(value, ast.Starred):
            return self._value_taints(value.value)
        return False

    # -- statement walk (in order, so rebinding clears taint) -------------

    def run(self) -> list[Finding]:
        self._walk(self.func.body)
        return self.findings

    def _walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are checked as their own kernels if named so
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._assign(stmt)
            return
        if isinstance(stmt, ast.Return):
            self._return(stmt)
            if stmt.value is not None:
                self._expr(stmt.value)
            return
        if isinstance(stmt, ast.For):
            self._expr(stmt.iter)
            if isinstance(stmt.target, ast.Name) and self._value_taints(stmt.iter):
                self.tainted.add(stmt.target.id)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, (ast.excepthandler, ast.match_case, ast.withitem)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self._expr(sub)

    def _assign(self, stmt: ast.Assign | ast.AugAssign | ast.AnnAssign) -> None:
        value = stmt.value
        if value is not None:
            self._expr(value)
        if isinstance(stmt, ast.AugAssign):
            target: ast.expr = stmt.target
            if isinstance(target, ast.Name) and self._is_input(target.id):
                self._report(
                    stmt.lineno, stmt.col_offset + 1,
                    f"augmented assignment mutates input '{target.id}' in place",
                )
            elif isinstance(target, ast.Subscript):
                base = self._subscript_base(target)
                if self._is_input(base):
                    self._report(
                        stmt.lineno, stmt.col_offset + 1,
                        f"subscript store writes into input array '{base}'",
                    )
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                base = self._subscript_base(target)
                if self._is_input(base):
                    self._report(
                        stmt.lineno, stmt.col_offset + 1,
                        f"subscript store writes into input array '{base}'",
                    )
            elif isinstance(target, ast.Name):
                if value is not None and self._value_taints(value):
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.tainted.discard(element.id)

    def _return(self, stmt: ast.Return) -> None:
        if not _returns_fresh_required(self.func.name) or stmt.value is None:
            return
        value = stmt.value
        offenders: list[str] = []
        candidates: list[ast.expr]
        if isinstance(value, ast.Tuple):
            candidates = list(value.elts)
        else:
            candidates = [value]
        for expr in candidates:
            if isinstance(expr, ast.Name) and self._is_input(expr.id):
                offenders.append(expr.id)
            elif isinstance(expr, ast.Subscript):
                base = self._subscript_base(expr)
                if self._is_input(base) and base is not None:
                    offenders.append(base)
        for name in offenders:
            self._report(
                stmt.lineno, stmt.col_offset + 1,
                f"kernel returns input array '{name}' instead of a fresh "
                "(values, mask) result",
            )

    def _expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "out":
                    continue
                for name_node in ast.walk(kw.value):
                    if isinstance(name_node, ast.Name) and self._is_input(
                        name_node.id
                    ):
                        self._report(
                            node.lineno, node.col_offset + 1,
                            f"out= argument aliases input array "
                            f"'{name_node.id}'",
                        )

    def _report(self, line: int, col: int, message: str) -> None:
        self.findings.append(
            Finding(rule="RV201", path=self.path, line=line, col=col,
                    message=message)
        )


class KernelPurityRule(Rule):
    code = "RV201"
    name = "kernel-purity"
    description = (
        "batch kernels must not mutate or return their input arrays; "
        "results are fresh (values, mask) pairs"
    )

    def check(self, files: Sequence[SourceFile], ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for source in files:
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _is_kernel_name(node.name):
                    checker = _KernelChecker(node, source.display_path)
                    findings.extend(checker.run())
        return findings
