"""RP101 — UDFs must be shippable to worker processes.

The parallel engine pickles plans by *name* (``_PlanPickler`` resolves
``_sql_schema``/``_sql_name`` markers or the function's module-qualified
name), so any callable that reaches ``SqlSession.register_function`` or is
attached to a ``repro.tsql`` namespace must be a module-level, importable
function.  Lambdas, functions defined inside another function (closures),
and locally bound callables all fail to resolve in a spawned worker; they
are only acceptable when registered with ``parallel_safe=False``, which the
engine honours by falling back to single-process execution.
"""

from __future__ import annotations

import ast
from typing import Sequence

from .framework import Finding, LintContext, Rule, SourceFile


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function (closures)."""

    nested: set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            elif isinstance(child, ast.Lambda):
                visit(child, True)
            elif isinstance(child, ast.ClassDef):
                visit(child, inside_function)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return nested


def _has_parallel_safe_false(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "parallel_safe":
            value = kw.value
            if isinstance(value, ast.Constant) and value.value is False:
                return True
            # a non-literal value: assume the author knows what they pass
            return not isinstance(value, ast.Constant)
    return False


def _stamped_names(scope: ast.AST) -> set[str]:
    """Names that get ``x._sql_schema = ...`` stamped somewhere in scope."""

    stamped: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in ("_sql_schema", "_sql_name")
                    and isinstance(target.value, ast.Name)
                ):
                    stamped.add(target.value.id)
        elif isinstance(node, ast.Call):
            # setattr(fn, "_sql_schema", ...) style stamping
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "setattr"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and isinstance(node.args[1], ast.Constant)
                and node.args[1].value in ("_sql_schema", "_sql_name")
            ):
                stamped.add(node.args[0].id)
    return stamped


class ParallelSafetyRule(Rule):
    code = "RP101"
    name = "parallel-safety"
    description = (
        "callables passed to register_function or attached to tsql "
        "namespaces must be module-level and name-picklable"
    )

    def check(self, files: Sequence[SourceFile], ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for source in files:
            if source.tree is None:
                continue
            nested = _nested_function_names(source.tree)
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name == "register_function":
                    findings.extend(
                        self._check_register(source, node, nested)
                    )
                elif name == "setattr":
                    findings.extend(self._check_setattr(source, node, nested))
        return findings

    def _check_register(
        self, source: SourceFile, call: ast.Call, nested: set[str]
    ) -> list[Finding]:
        if _has_parallel_safe_false(call):
            return []
        func_arg: ast.expr | None = None
        for kw in call.keywords:
            if kw.arg == "func":
                func_arg = kw.value
        if func_arg is None and len(call.args) >= 2:
            func_arg = call.args[1]
        if func_arg is None:
            return []
        if isinstance(func_arg, ast.Lambda):
            return [
                Finding(
                    rule=self.code,
                    path=source.display_path,
                    line=call.lineno,
                col=call.col_offset + 1,
                    message=(
                        "lambda passed to register_function is not "
                        "name-picklable; define a module-level function or "
                        "register with parallel_safe=False"
                    ),
                )
            ]
        if isinstance(func_arg, ast.Name) and func_arg.id in nested:
            return [
                Finding(
                    rule=self.code,
                    path=source.display_path,
                    line=call.lineno,
                col=call.col_offset + 1,
                    message=(
                        f"nested function '{func_arg.id}' passed to "
                        "register_function cannot be pickled by name; move "
                        "it to module level or register with "
                        "parallel_safe=False"
                    ),
                )
            ]
        return []

    def _check_setattr(
        self, source: SourceFile, call: ast.Call, nested: set[str]
    ) -> list[Finding]:
        # setattr(ns, name, fn) attaching a namespace UDF: the callable must
        # either be module-level or carry _sql_schema/_sql_name markers so
        # the plan pickler can resolve it by name in a worker.
        if len(call.args) != 3:
            return []
        value = call.args[2]
        if isinstance(value, ast.Lambda):
            return [
                Finding(
                    rule=self.code,
                    path=source.display_path,
                    line=call.lineno,
                col=call.col_offset + 1,
                    message=(
                        "lambda attached via setattr is not name-picklable; "
                        "attach a module-level or _sql_name-stamped function"
                    ),
                )
            ]
        if not (isinstance(value, ast.Name) and value.id in nested):
            return []
        stamped = _stamped_names(source.tree) if source.tree is not None else set()
        if value.id in stamped:
            return []
        return [
            Finding(
                rule=self.code,
                path=source.display_path,
                line=call.lineno,
                col=call.col_offset + 1,
                message=(
                    f"nested function '{value.id}' attached via setattr "
                    "without _sql_schema/_sql_name markers; workers cannot "
                    "resolve it by name"
                ),
            )
        ]
