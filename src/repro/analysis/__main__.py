"""Command-line entry point for replint (``python -m repro.analysis``)."""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from . import ALL_RULES, error_count, lint_paths, render_human, render_json
from .rules_wire import write_schema


def _default_paths() -> list[str]:
    # Prefer the engine/server tree when run from a repo checkout; fixture
    # and test files exercise deliberate violations and are linted only by
    # their own test suite.
    for candidate in ("src/repro", "src"):
        if os.path.isdir(candidate):
            return [candidate]
    return ["."]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="replint: AST-based invariant checks for the repro tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--write-schema",
        metavar="PROTOCOL_PY",
        default=None,
        help="regenerate protocol_schema.json next to the given protocol module",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  [{rule.severity}] "
                  f"{rule.name}: {rule.description}")
        return 0

    if args.write_schema is not None:
        try:
            schema_path = write_schema(args.write_schema)
        except (OSError, SyntaxError) as exc:
            print(f"replint: cannot write schema: {exc}", file=sys.stderr)
            return 2
        print(f"replint: wrote {schema_path}")
        return 0

    rules = ALL_RULES
    if args.rules:
        wanted = {code.strip().upper() for code in args.rules.split(",") if code.strip()}
        rules = tuple(rule for rule in ALL_RULES if rule.code in wanted)
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print(
                f"replint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    paths = list(args.paths) if args.paths else _default_paths()
    findings = lint_paths(paths, rules=rules)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_human(findings))
    # Warnings alone do not gate the build; only error-tier findings
    # (including PARSE failures) flip the exit code.
    return 1 if error_count(findings) else 0


if __name__ == "__main__":
    sys.exit(main())
